"""Optimizers and learning-rate schedules.

The paper trains with SGD (learning rate 0.001, momentum 0.9); Adam and a
step scheduler are provided for the examples and ablations.

The ``step`` hot paths are allocation-free after warm-up: every
per-parameter temporary (weight-decay-adjusted gradient, scaled update,
Adam's bias-corrected numerator/denominator) is computed into reusable
scratch buffers via ``out=`` ufuncs instead of fresh arrays.  The
operation *order* is preserved exactly — only commutative operand swaps,
never re-associations — so the update is **bitwise identical** to the
naive expression-per-line form (verified by the parity tests against
reference implementations).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from .module import Parameter


class Optimizer:
    """Base class holding the parameter list and zero-grad plumbing."""

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = float(lr)
        # Per-parameter scratch buffers for the in-place step hot paths
        # ((param index, slot) -> array).  Pure workspace — never part of
        # the optimizer's semantic state, so snapshot/restore of momentum
        # or FIM state is unaffected.
        self._scratch: Dict[tuple, np.ndarray] = {}

    def _buffer(self, index: int, slot: int, like: np.ndarray) -> np.ndarray:
        """A reusable scratch array shaped/typed like ``like``."""
        buffer = self._scratch.get((index, slot))
        if buffer is None or buffer.shape != like.shape or buffer.dtype != like.dtype:
            buffer = np.empty_like(like)
            self._scratch[(index, slot)] = buffer
        return buffer

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with classical momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0:
            raise ValueError(f"weight decay must be non-negative, got {weight_decay}")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: List[Optional[np.ndarray]] = [None] * len(self.parameters)

    def step(self) -> None:
        for index, param in enumerate(self.parameters):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                # grad + wd·data, computed as (wd·data) + grad into a
                # scratch buffer — addition commutes bitwise, so the
                # value is unchanged while the two temporaries are not.
                decayed = self._buffer(index, 0, param.data)
                np.multiply(param.data, self.weight_decay, out=decayed)
                decayed += grad
                grad = decayed
            if self.momentum:
                if self._velocity[index] is None:
                    self._velocity[index] = np.zeros_like(param.data)
                velocity = self._velocity[index]
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            update = self._buffer(index, 1, param.data)
            np.multiply(grad, self.lr, out=update)
            param.data -= update


class StackedSGD(SGD):
    """SGD over stacked ``(K, ...)`` cohort parameters.

    :class:`SGD`'s update is purely elementwise (weight-decay add,
    momentum EMA, scaled subtraction), so driving it over parameters that
    carry a leading stack axis performs *exactly* the per-slice update:
    slice ``k`` of every velocity buffer and every parameter evolves
    bitwise identically to a standalone :class:`SGD` on client ``k``'s
    unstacked parameters.  The subclass exists to make the vectorized
    training path self-documenting and to anchor the parity tests — it
    adds no behaviour.
    """


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015)."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.beta1, self.beta2 = beta1, beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m: List[Optional[np.ndarray]] = [None] * len(self.parameters)
        self._v: List[Optional[np.ndarray]] = [None] * len(self.parameters)

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1 ** self._step_count
        bias2 = 1.0 - self.beta2 ** self._step_count
        for index, param in enumerate(self.parameters):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                decayed = self._buffer(index, 0, param.data)
                np.multiply(param.data, self.weight_decay, out=decayed)
                decayed += grad
                grad = decayed
            if self._m[index] is None:
                self._m[index] = np.zeros_like(param.data)
                self._v[index] = np.zeros_like(param.data)
            m, v = self._m[index], self._v[index]
            scratch = self._buffer(index, 1, param.data)
            m *= self.beta1
            np.multiply(grad, 1 - self.beta1, out=scratch)  # (1−β1)·grad
            m += scratch
            v *= self.beta2
            np.multiply(grad, 1 - self.beta2, out=scratch)  # ((1−β2)·grad)·grad
            scratch *= grad
            v += scratch
            # lr·(m/bias1) / (sqrt(v/bias2) + eps), same evaluation order.
            numerator = self._buffer(index, 2, param.data)
            np.divide(m, bias1, out=numerator)
            numerator *= self.lr
            np.divide(v, bias2, out=scratch)
            np.sqrt(scratch, out=scratch)
            scratch += self.eps
            numerator /= scratch
            param.data -= numerator


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter, 2019).

    Unlike :class:`Adam`'s L2-in-the-gradient coupling, the decay is
    applied directly to the weights, independent of the adaptive scaling —
    the variant modern vision/transformer recipes default to.
    """

    def step(self) -> None:
        if self.weight_decay:
            for index, param in enumerate(self.parameters):
                if param.grad is not None:
                    decay = self._buffer(index, 3, param.data)
                    np.multiply(param.data, self.lr * self.weight_decay, out=decay)
                    param.data -= decay
        decay, self.weight_decay = self.weight_decay, 0.0
        try:
            super().step()
        finally:
            self.weight_decay = decay


class RMSprop(Optimizer):
    """RMSprop (Tieleman & Hinton, 2012): divide by a running RMS of grads."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-2,
        alpha: float = 0.99,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        if not 0.0 <= alpha < 1.0:
            raise ValueError(f"alpha must be in [0, 1), got {alpha}")
        if weight_decay < 0:
            raise ValueError(f"weight decay must be non-negative, got {weight_decay}")
        self.alpha = alpha
        self.eps = eps
        self.weight_decay = weight_decay
        self._square_avg: List[Optional[np.ndarray]] = [None] * len(self.parameters)

    def step(self) -> None:
        for index, param in enumerate(self.parameters):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                decayed = self._buffer(index, 0, param.data)
                np.multiply(param.data, self.weight_decay, out=decayed)
                decayed += grad
                grad = decayed
            if self._square_avg[index] is None:
                self._square_avg[index] = np.zeros_like(param.data)
            avg = self._square_avg[index]
            scratch = self._buffer(index, 1, param.data)
            avg *= self.alpha
            np.multiply(grad, 1 - self.alpha, out=scratch)  # ((1−α)·grad)·grad
            scratch *= grad
            avg += scratch
            # (lr·grad) / (sqrt(avg) + eps), same evaluation order.
            update = self._buffer(index, 2, param.data)
            np.multiply(grad, self.lr, out=update)
            np.sqrt(avg, out=scratch)
            scratch += self.eps
            update /= scratch
            param.data -= update


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Clip gradients in place so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm.
    """
    if max_norm <= 0:
        raise ValueError(f"max_norm must be positive, got {max_norm}")
    params = [p for p in parameters if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad ** 2).sum()) for p in params)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for param in params:
            param.grad *= scale
    return total


def stacked_clip_grad_norm(
    parameters: Iterable[Parameter], max_norm: float
) -> List[float]:
    """Per-slice :func:`clip_grad_norm` over stacked ``(K, ...)`` gradients.

    Mirrors the per-client clip bit for bit: slice ``k``'s squared sum
    per parameter is one contiguous row reduction (the same pairwise
    summation tree as the per-client full-array sum), the totals
    accumulate as python floats in parameter order, and only slices whose
    norm exceeds ``max_norm`` are scaled in place by the same
    ``max_norm / total``.  Returns the per-slice pre-clip norms.
    """
    if max_norm <= 0:
        raise ValueError(f"max_norm must be positive, got {max_norm}")
    params = [p for p in parameters if p.grad is not None]
    if not params:
        return []
    k = params[0].grad.shape[0]
    slice_sums = [
        (param.grad ** 2).reshape(k, -1).sum(axis=1) for param in params
    ]
    totals: List[float] = []
    for index in range(k):
        total = float(np.sqrt(sum(float(sums[index]) for sums in slice_sums)))
        totals.append(total)
        if total > max_norm and total > 0:
            scale = max_norm / total
            for param in params:
                param.grad[index] *= scale
    return totals


class StepLR:
    """Multiply the optimizer's learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1) -> None:
        if step_size <= 0:
            raise ValueError(f"step_size must be positive, got {step_size}")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._epoch = 0

    def step(self) -> None:
        self._epoch += 1
        if self._epoch % self.step_size == 0:
            self.optimizer.lr *= self.gamma


class CosineAnnealingLR:
    """Cosine decay from the initial rate to ``eta_min`` over ``t_max`` epochs.

    ``lr(t) = eta_min + (lr_0 − eta_min)·(1 + cos(π·t/t_max))/2``; epochs
    beyond ``t_max`` stay at ``eta_min``.
    """

    def __init__(
        self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0
    ) -> None:
        if t_max <= 0:
            raise ValueError(f"t_max must be positive, got {t_max}")
        if eta_min < 0:
            raise ValueError(f"eta_min must be non-negative, got {eta_min}")
        self.optimizer = optimizer
        self.t_max = t_max
        self.eta_min = eta_min
        self.base_lr = optimizer.lr
        self._epoch = 0

    def step(self) -> None:
        self._epoch += 1
        progress = min(self._epoch, self.t_max) / self.t_max
        self.optimizer.lr = self.eta_min + (
            self.base_lr - self.eta_min
        ) * (1.0 + np.cos(np.pi * progress)) / 2.0

"""Standard neural-network layers used by the paper's model zoo."""

from __future__ import annotations

from typing import Optional

import numpy as np

from . import functional as F
from . import init
from .module import Module, Parameter
from .tensor import Tensor


class Identity(Module):
    """No-op layer, handy as a placeholder in residual blocks."""

    def forward(self, x: Tensor) -> Tensor:
        return x


class ReLU(Module):
    """Rectified linear unit."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Flatten(Module):
    """Flatten all dimensions after the batch dimension."""

    def forward(self, x: Tensor) -> Tensor:
        return x.flatten(start_dim=1)


class Linear(Module):
    """Fully connected layer ``y = x @ W.T + b``."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator,
                 bias: bool = True) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.kaiming_uniform((out_features, in_features), rng))
        if bias:
            self.bias: Optional[Parameter] = Parameter(
                init.bias_uniform((out_features,), in_features, rng)
            )
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)

    def __repr__(self) -> str:
        return f"Linear(in={self.in_features}, out={self.out_features})"


class Conv2d(Module):
    """2-D convolution layer (cross-correlation, as in PyTorch)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        rng: np.random.Generator,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
    ) -> None:
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = Parameter(init.kaiming_uniform(shape, rng))
        if bias:
            fan_in = in_channels * kernel_size * kernel_size
            self.bias: Optional[Parameter] = Parameter(
                init.bias_uniform((out_channels,), fan_in, rng)
            )
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)

    def __repr__(self) -> str:
        return (
            f"Conv2d(in={self.in_channels}, out={self.out_channels}, "
            f"k={self.kernel_size}, s={self.stride}, p={self.padding})"
        )


class MaxPool2d(Module):
    """Non-overlapping max pooling."""

    def __init__(self, kernel_size: int) -> None:
        super().__init__()
        self.kernel_size = kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size)

    def __repr__(self) -> str:
        return f"MaxPool2d(k={self.kernel_size})"


class AvgPool2d(Module):
    """Non-overlapping average pooling."""

    def __init__(self, kernel_size: int) -> None:
        super().__init__()
        self.kernel_size = kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size)


class Dropout(Module):
    """Inverted dropout; inactive in eval mode."""

    def __init__(self, p: float, rng: np.random.Generator) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = rng

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self._rng, training=self.training)

    def __repr__(self) -> str:
        return f"Dropout(p={self.p})"


class BatchNorm2d(Module):
    """Batch normalisation over ``(N, H, W)`` per channel.

    Uses batch statistics during training (tracked into running buffers with
    exponential moving average) and the running statistics in eval mode.
    """

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1) -> None:
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.gamma = Parameter(init.ones((num_features,)))
        self.beta = Parameter(init.zeros((num_features,)))
        self.register_buffer("running_mean", init.zeros((num_features,)))
        self.register_buffer("running_var", init.ones((num_features,)))

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4:
            raise ValueError(f"BatchNorm2d expects 4-D input, got shape {x.shape}")
        axes = (0, 2, 3)
        if self.training:
            mean = x.mean(axis=axes, keepdims=True)
            var = x.var(axis=axes, keepdims=True)
            m = self.momentum
            self._set_buffer(
                "running_mean", (1 - m) * self.running_mean + m * mean.data.reshape(-1)
            )
            self._set_buffer(
                "running_var", (1 - m) * self.running_var + m * var.data.reshape(-1)
            )
        else:
            mean = Tensor(self.running_mean.reshape(1, -1, 1, 1))
            var = Tensor(self.running_var.reshape(1, -1, 1, 1))
        x_hat = (x - mean) / ((var + self.eps) ** 0.5)
        gamma = self.gamma.reshape(1, -1, 1, 1)
        beta = self.beta.reshape(1, -1, 1, 1)
        return x_hat * gamma + beta

    def __repr__(self) -> str:
        return f"BatchNorm2d({self.num_features})"


class GroupNorm(Module):
    """Group normalisation (Wu & He, 2018) over ``(C/G, H, W)`` groups.

    Unlike :class:`BatchNorm2d` it carries no running statistics and is
    independent of the batch composition, which makes it the standard
    substitute for batch norm in federated learning: FedAvg-averaging BN
    statistics across clients with heterogeneous data is a known source of
    divergence, while group-normalised models average cleanly.
    """

    def __init__(self, num_groups: int, num_channels: int, eps: float = 1e-5) -> None:
        super().__init__()
        if num_groups <= 0 or num_channels % num_groups:
            raise ValueError(
                f"num_channels {num_channels} must be divisible by "
                f"num_groups {num_groups}"
            )
        self.num_groups = num_groups
        self.num_channels = num_channels
        self.eps = eps
        self.gamma = Parameter(init.ones((num_channels,)))
        self.beta = Parameter(init.zeros((num_channels,)))

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4:
            raise ValueError(f"GroupNorm expects 4-D input, got shape {x.shape}")
        n, c, h, w = x.shape
        if c != self.num_channels:
            raise ValueError(f"expected {self.num_channels} channels, got {c}")
        grouped = x.reshape(n, self.num_groups, c // self.num_groups, h, w)
        mean = grouped.mean(axis=(2, 3, 4), keepdims=True)
        var = grouped.var(axis=(2, 3, 4), keepdims=True)
        normalised = (grouped - mean) / ((var + self.eps) ** 0.5)
        out = normalised.reshape(n, c, h, w)
        gamma = self.gamma.reshape(1, -1, 1, 1)
        beta = self.beta.reshape(1, -1, 1, 1)
        return out * gamma + beta

    def __repr__(self) -> str:
        return f"GroupNorm(groups={self.num_groups}, channels={self.num_channels})"


class LayerNorm(Module):
    """Layer normalisation (Ba et al., 2016) over the trailing feature axis.

    Normalises each sample independently — like :class:`GroupNorm`, it is
    batch-composition-free and therefore FedAvg-friendly. Operates on the
    last dimension of 2-D ``(N, F)`` inputs (the MLP / classifier-head
    case).
    """

    def __init__(self, num_features: int, eps: float = 1e-5) -> None:
        super().__init__()
        if num_features <= 0:
            raise ValueError(f"num_features must be positive, got {num_features}")
        self.num_features = num_features
        self.eps = eps
        self.gamma = Parameter(init.ones((num_features,)))
        self.beta = Parameter(init.zeros((num_features,)))

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 2:
            raise ValueError(f"LayerNorm expects 2-D input, got shape {x.shape}")
        if x.shape[1] != self.num_features:
            raise ValueError(
                f"expected {self.num_features} features, got {x.shape[1]}"
            )
        mean = x.mean(axis=1, keepdims=True)
        var = x.var(axis=1, keepdims=True)
        x_hat = (x - mean) / ((var + self.eps) ** 0.5)
        return x_hat * self.gamma.reshape(1, -1) + self.beta.reshape(1, -1)

    def __repr__(self) -> str:
        return f"LayerNorm({self.num_features})"


class Sequential(Module):
    """Chain of sub-modules applied in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        for index, module in enumerate(modules):
            setattr(self, f"layer{index}", module)
        self._layers = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self._layers:
            x = layer(x)
        return x

    def __iter__(self):
        return iter(self._layers)

    def __getitem__(self, index: int) -> Module:
        return self._layers[index]

    def __len__(self) -> int:
        return len(self._layers)

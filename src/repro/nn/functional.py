"""Neural-network functional primitives built on the autograd engine.

Contains the convolution / pooling kernels (implemented with im2col on top
of :func:`numpy.lib.stride_tricks.sliding_window_view`) and numerically
stable softmax utilities. All functions take and return
:class:`repro.nn.tensor.Tensor` and participate in autodiff.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from .tensor import Tensor, ensure_tensor


def _conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"convolution produces non-positive output size: input={size}, "
            f"kernel={kernel}, stride={stride}, padding={padding}"
        )
    return out


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """2-D cross-correlation (the deep-learning "convolution").

    Parameters
    ----------
    x:
        Input of shape ``(N, C_in, H, W)``.
    weight:
        Filters of shape ``(C_out, C_in, KH, KW)``.
    bias:
        Optional per-output-channel bias of shape ``(C_out,)``.
    stride, padding:
        Spatial stride and symmetric zero padding.
    """
    if x.ndim != 4:
        raise ValueError(f"conv2d expects 4-D input, got shape {x.shape}")
    if weight.ndim != 4:
        raise ValueError(f"conv2d expects 4-D weight, got shape {weight.shape}")
    n, c_in, h, w = x.shape
    c_out, c_in_w, kh, kw = weight.shape
    if c_in != c_in_w:
        raise ValueError(f"input channels {c_in} != weight channels {c_in_w}")
    h_out = _conv_output_size(h, kh, stride, padding)
    w_out = _conv_output_size(w, kw, stride, padding)

    x_padded = np.pad(x.data, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    # windows: (N, C, H', W', KH, KW) where H'/W' enumerate window origins.
    windows = sliding_window_view(x_padded, (kh, kw), axis=(2, 3))
    windows = windows[:, :, ::stride, ::stride, :, :]
    # cols: (N * H_out * W_out, C * KH * KW)
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(n * h_out * w_out, c_in * kh * kw)
    w_flat = weight.data.reshape(c_out, -1)

    out_flat = cols @ w_flat.T
    if bias is not None:
        out_flat = out_flat + bias.data
    out_data = out_flat.reshape(n, h_out, w_out, c_out).transpose(0, 3, 1, 2)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward_fn(grad: np.ndarray) -> None:
        # grad: (N, C_out, H_out, W_out)
        grad_flat = grad.transpose(0, 2, 3, 1).reshape(n * h_out * w_out, c_out)
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad_flat.sum(axis=0))
        if weight.requires_grad:
            weight._accumulate((grad_flat.T @ cols).reshape(weight.shape))
        if x.requires_grad:
            dcols = grad_flat @ w_flat  # (N*H_out*W_out, C*KH*KW)
            dwindows = dcols.reshape(n, h_out, w_out, c_in, kh, kw).transpose(0, 3, 1, 2, 4, 5)
            dx_padded = np.zeros_like(x_padded)
            for ki in range(kh):
                for kj in range(kw):
                    dx_padded[
                        :, :, ki : ki + h_out * stride : stride, kj : kj + w_out * stride : stride
                    ] += dwindows[:, :, :, :, ki, kj]
            if padding:
                dx = dx_padded[:, :, padding:-padding, padding:-padding]
            else:
                dx = dx_padded
            x._accumulate(dx)

    return Tensor._make(out_data, parents, backward_fn)


def conv2d_stacked(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """K independent 2-D convolutions as one batch of GEMMs.

    The vectorized-cohort kernel (:mod:`repro.nn.vmap`): slice ``k`` of
    every operand is one client's convolution, and the whole call runs
    as a single ``np.matmul`` over the leading axis instead of K python
    dispatches.  The per-slice computation — im2col layout, GEMM
    operand order, bias broadcast, and every backward contraction — is
    op-for-op the same as :func:`conv2d` on that slice alone, so each
    slice's values and gradients match the per-client kernel (the vmap
    parity tests pin this bit for bit on this BLAS).

    Parameters
    ----------
    x:
        Stacked input of shape ``(K, N, C_in, H, W)``.
    weight:
        Per-slice filters of shape ``(K, C_out, C_in, KH, KW)``.
    bias:
        Optional per-slice biases of shape ``(K, C_out)``.
    """
    if x.ndim != 5:
        raise ValueError(f"conv2d_stacked expects 5-D input, got shape {x.shape}")
    if weight.ndim != 5:
        raise ValueError(f"conv2d_stacked expects 5-D weight, got shape {weight.shape}")
    k_stack, n, c_in, h, w = x.shape
    k_w, c_out, c_in_w, kh, kw = weight.shape
    if k_stack != k_w:
        raise ValueError(f"stack mismatch: {k_stack} inputs vs {k_w} weights")
    if c_in != c_in_w:
        raise ValueError(f"input channels {c_in} != weight channels {c_in_w}")
    h_out = _conv_output_size(h, kh, stride, padding)
    w_out = _conv_output_size(w, kw, stride, padding)

    x_padded = np.pad(
        x.data, ((0, 0), (0, 0), (0, 0), (padding, padding), (padding, padding))
    )
    # windows: (K, N, C, H', W', KH, KW), exactly conv2d's layout plus the
    # leading stack axis.
    windows = sliding_window_view(x_padded, (kh, kw), axis=(3, 4))
    windows = windows[:, :, :, ::stride, ::stride, :, :]
    # cols: (K, N * H_out * W_out, C * KH * KW)
    cols = windows.transpose(0, 1, 3, 4, 2, 5, 6).reshape(
        k_stack, n * h_out * w_out, c_in * kh * kw
    )
    w_flat = weight.data.reshape(k_stack, c_out, -1)

    # Batched GEMM: slice k computes cols[k] @ w_flat[k].T, the same
    # contraction conv2d issues for one client.
    out_flat = cols @ w_flat.transpose(0, 2, 1)
    if bias is not None:
        out_flat = out_flat + bias.data[:, None, :]
    out_data = out_flat.reshape(k_stack, n, h_out, w_out, c_out).transpose(0, 1, 4, 2, 3)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward_fn(grad: np.ndarray) -> None:
        # grad: (K, N, C_out, H_out, W_out)
        grad_flat = grad.transpose(0, 1, 3, 4, 2).reshape(
            k_stack, n * h_out * w_out, c_out
        )
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad_flat.sum(axis=1))
        if weight.requires_grad:
            weight._accumulate(
                (grad_flat.transpose(0, 2, 1) @ cols).reshape(weight.shape)
            )
        if x.requires_grad:
            dcols = grad_flat @ w_flat  # (K, N*H_out*W_out, C*KH*KW)
            dwindows = dcols.reshape(
                k_stack, n, h_out, w_out, c_in, kh, kw
            ).transpose(0, 1, 4, 2, 3, 5, 6)
            dx_padded = np.zeros_like(x_padded)
            for ki in range(kh):
                for kj in range(kw):
                    dx_padded[
                        :, :, :,
                        ki : ki + h_out * stride : stride,
                        kj : kj + w_out * stride : stride,
                    ] += dwindows[:, :, :, :, :, ki, kj]
            if padding:
                dx = dx_padded[:, :, :, padding:-padding, padding:-padding]
            else:
                dx = dx_padded
            x._accumulate(dx)

    return Tensor._make(out_data, parents, backward_fn)


def max_pool2d(x: Tensor, kernel_size: int) -> Tensor:
    """Non-overlapping max pooling with ``stride == kernel_size``.

    The spatial dimensions must be divisible by ``kernel_size`` (this covers
    every architecture in the paper: LeNet-5 uses 2x2 pools on even sizes).
    """
    n, c, h, w = x.shape
    k = kernel_size
    if h % k or w % k:
        raise ValueError(f"spatial size ({h}, {w}) not divisible by kernel {k}")
    h_out, w_out = h // k, w // k
    windows = x.data.reshape(n, c, h_out, k, w_out, k).transpose(0, 1, 2, 4, 3, 5)
    flat = windows.reshape(n, c, h_out, w_out, k * k)
    arg = flat.argmax(axis=-1)
    out_data = np.take_along_axis(flat, arg[..., None], axis=-1)[..., 0]

    def backward_fn(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        dflat = np.zeros_like(flat)
        np.put_along_axis(dflat, arg[..., None], grad[..., None], axis=-1)
        dx = (
            dflat.reshape(n, c, h_out, w_out, k, k)
            .transpose(0, 1, 2, 4, 3, 5)
            .reshape(n, c, h, w)
        )
        x._accumulate(dx)

    return Tensor._make(out_data, (x,), backward_fn)


def avg_pool2d(x: Tensor, kernel_size: int) -> Tensor:
    """Non-overlapping average pooling with ``stride == kernel_size``."""
    n, c, h, w = x.shape
    k = kernel_size
    if h % k or w % k:
        raise ValueError(f"spatial size ({h}, {w}) not divisible by kernel {k}")
    return x.reshape(n, c, h // k, k, w // k, k).mean(axis=(3, 5))


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Average over the full spatial extent, returning ``(N, C)``."""
    return x.mean(axis=(2, 3))


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable ``log(softmax(x))`` along ``axis``.

    Fused into a single graph node: the forward pass keeps the
    ``exp(x - max)`` intermediate and its sum, and the backward pass
    reuses them directly — ``dx = g − softmax · Σg`` — instead of
    re-deriving the softmax through a second exp/sum round-trip across
    five composed autograd nodes.  Every log-softmax consumer (the
    cross-entropy / focal / NLL / label-smoothing hard losses and the
    distillation loss) rides this path.  The float operations and their
    order match the previous composed implementation exactly, so values
    *and* gradients are bit-identical — training trajectories do not
    move.
    """
    # Subtracting the (detached) max is exact for both value and gradient.
    shift = x.data.max(axis=axis, keepdims=True)
    shifted = x.data - shift
    exp_shifted = np.exp(shifted)
    sum_exp = exp_shifted.sum(axis=axis, keepdims=True)
    out_data = shifted - np.log(sum_exp)

    def backward_fn(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        # Same ops in the same order as the composed sub/exp/sum/log/sub
        # graph (see tests/nn/test_functional.py::TestFusedLogSoftmax):
        # the gradient into log(Σexp) is −Σg, scaled by 1/Σexp, then
        # broadcast against the cached exp — no new exp/sum of the data.
        sum_grad = grad.sum(axis=axis, keepdims=True)
        x._accumulate(grad + exp_shifted * (np.negative(sum_grad) / sum_exp))

    return Tensor._make(out_data, (x,), backward_fn)


def softmax(x: Tensor, axis: int = -1, temperature: float = 1.0) -> Tensor:
    """Softmax with optional distillation temperature (paper Eq. 3–4).

    ``temperature > 1`` smooths the distribution, which is how the teacher's
    "dark knowledge" is exposed to the student during distillation.
    """
    if temperature <= 0:
        raise ValueError(f"temperature must be positive, got {temperature}")
    scaled = x / float(temperature) if temperature != 1.0 else x
    return log_softmax(scaled, axis=axis).exp()


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Return a float64 one-hot matrix of shape ``(len(labels), num_classes)``."""
    labels = np.asarray(labels)
    if labels.ndim != 1:
        raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
        raise ValueError("labels out of range for num_classes")
    out = np.zeros((labels.shape[0], num_classes), dtype=np.float64)
    out[np.arange(labels.shape[0]), labels] = 1.0
    return out


def dropout(x: Tensor, p: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout: zero activations with probability ``p`` and rescale."""
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    if not training or p == 0.0:
        return x
    mask = (rng.random(x.shape) >= p) / (1.0 - p)
    return x * Tensor(mask)


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine map ``x @ weight.T + bias``."""
    out = x @ weight.T
    if bias is not None:
        out = out + bias
    return out


def flatten_images(x: np.ndarray) -> np.ndarray:
    """Flatten image batches ``(N, C, H, W)`` to ``(N, C*H*W)`` (no grad)."""
    x = np.asarray(x)
    return x.reshape(x.shape[0], -1)

"""vmap-style stacking of K homogeneous models into one batched graph.

Every client in a federated round runs the *same* network on different
data.  :func:`stack_modules` takes K structurally identical models and
builds one :class:`StackedModel` whose parameters carry a leading stack
axis of size K, so a round-step becomes a handful of batched NumPy/BLAS
calls instead of K python-dispatched graphs.  The per-slice float
operations and their order are kept identical to the per-client layers —
stacked elementwise ops, per-slice GEMMs (``np.matmul`` over the leading
axis), and reductions along the same in-slice axes — so slice ``k`` of
the stacked forward/backward reproduces client ``k``'s standalone run;
the parity tests in ``tests/nn/test_vmap.py`` pin this bit for bit on
every supported layer.

Supported layers: ``Linear``, ``Conv2d`` (via
:func:`~repro.nn.functional.conv2d_stacked`), ``ReLU``, ``Identity``,
``Flatten``, ``MaxPool2d`` / ``AvgPool2d`` (stack and batch axes merge —
pooling is per-sample, so the merged call is the per-client call on a
bigger batch), ``Dropout`` (each slice's mask is drawn from its *own*
generator, preserving per-client RNG streams), ``LayerNorm`` and
``GroupNorm`` (per-sample statistics shift by one axis).  Composites:
``Sequential`` plus the model-zoo classifiers built from it (``MLP``,
``LeNet5``, ``ModifiedLeNet5``).  Anything else —
``BatchNorm2d`` (its batch statistics and running buffers are inherently
per-replica state the stack would have to fork), custom forwards —
raises :class:`VmapUnsupported`, which the federation layer turns into a
per-client fallback with a recorded reason.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from . import functional as F
from .layers import (
    AvgPool2d,
    Conv2d,
    Dropout,
    Flatten,
    GroupNorm,
    Identity,
    LayerNorm,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
)
from .models.lenet import LeNet5, ModifiedLeNet5
from .models.mlp import MLP
from .module import Module, Parameter
from .tensor import Tensor


class VmapUnsupported(ValueError):
    """The module structure cannot be stacked; carries the human reason."""


def _stacked_parameter(arrays: List[np.ndarray]) -> Parameter:
    """A Parameter holding ``stack(arrays)`` in the slices' own dtype.

    ``Parameter.__init__`` casts to float64; stacked cohorts must keep
    the cohort's dtype (float32 datasets train float32 models), so the
    stacked data is assigned directly after construction.
    """
    stacked = np.stack(arrays, axis=0)
    param = Parameter(np.zeros((), dtype=np.float64))
    param.data = stacked
    return param


class StackedLeaf(Module):
    """Base for stacked leaves: remembers its K source modules so trained
    slices can be written back (:meth:`sync_back`) for per-slice state
    extraction."""

    def __init__(self, sources: List[Module]) -> None:
        super().__init__()
        self.sources = sources
        # Per-slice true row counts during a ragged (zero-padded) step,
        # plumbed by StackedModel.set_row_counts; None when rectangular.
        self.row_counts: Optional[List[int]] = None

    def sync_back(self) -> None:
        """Write each trained slice back into its source module."""


def _mask_padded_rows(out: Tensor, row_counts: Optional[List[int]]) -> Tensor:
    """Re-zero the padded rows of a ragged stacked activation.

    Ragged steps rely on an invariant: padded rows are exactly zero at
    every layer boundary, so no layer ever feeds padding-derived values
    into a true row.  Layers with additive terms (conv bias,
    normalisation beta) turn zero rows nonzero, so they multiply their
    output by a 0/1 row mask: true rows scale by exactly 1.0
    (bit-identity, forward and backward) and padded rows return to zero.
    """
    if row_counts is None:
        return out
    width = out.shape[1]
    if all(rows == width for rows in row_counts):
        return out
    mask = np.zeros(out.shape, dtype=out.data.dtype)
    for index, rows in enumerate(row_counts):
        mask[index, :rows] = 1.0
    return out * Tensor(mask)


def _is_ragged(row_counts: Optional[List[int]], width: int) -> bool:
    return row_counts is not None and any(rows != width for rows in row_counts)


def _ragged_linear(
    x: Tensor,
    weight: Parameter,
    bias: Optional[Parameter],
    row_counts: List[int],
) -> Tensor:
    """Row-exact stacked linear for ragged (zero-padded) steps.

    GEMM accumulation order depends on the operand shapes: the same true
    rows inside a taller zero-padded matrix can come out an ULP off,
    because BLAS picks its blocking per matrix size, not per row.  A
    ragged step therefore runs one GEMM per slice at each member's
    *true* row count — issuing exactly the contractions ``F.linear``
    and its backward issue for that client standalone — and writes the
    results into the padded ``(K, width, out)`` frame.  Padded rows stay
    exactly zero and receive exactly zero gradients.
    """
    k_stack, width = x.shape[0], x.shape[1]
    out_features = weight.shape[1]
    out_dtype = np.result_type(x.data.dtype, weight.data.dtype)
    out_data = np.zeros((k_stack, width, out_features), dtype=out_dtype)
    for k, rows in enumerate(row_counts):
        if rows == 0:
            continue
        member = x.data[k, :rows] @ weight.data[k].T
        if bias is not None:
            member = member + bias.data[k]
        out_data[k, :rows] = member

    def backward_fn(grad: np.ndarray) -> None:
        if x.requires_grad:
            grad_x = np.zeros_like(x.data)
            for k, rows in enumerate(row_counts):
                if rows:
                    grad_x[k, :rows] = grad[k, :rows] @ weight.data[k]
            x._accumulate(grad_x)
        if weight.requires_grad:
            grad_w = np.zeros_like(weight.data)
            for k, rows in enumerate(row_counts):
                if rows:
                    # The per-client chain computes x.T @ grad into the
                    # transposed-weight view, then transposes it back.
                    grad_w[k] = (x.data[k, :rows].T @ grad[k, :rows]).T
            weight._accumulate(grad_w)
        if bias is not None and bias.requires_grad:
            grad_b = np.zeros_like(bias.data)
            for k, rows in enumerate(row_counts):
                if rows:
                    grad_b[k] = grad[k, :rows].sum(axis=(0,))
            bias._accumulate(grad_b)

    parents = (x, weight) if bias is None else (x, weight, bias)
    return Tensor._make(out_data, parents, backward_fn)


class StackedLinear(StackedLeaf):
    """K fully connected layers as one batched GEMM per step."""

    def __init__(self, sources: List[Linear]) -> None:
        super().__init__(sources)
        self.weight = _stacked_parameter([m.weight.data for m in sources])
        self.has_bias = sources[0].bias is not None
        if self.has_bias:
            self.bias = _stacked_parameter([m.bias.data for m in sources])

    def forward(self, x: Tensor) -> Tensor:
        if _is_ragged(self.row_counts, x.shape[1]):
            return _ragged_linear(
                x,
                self.weight,
                self.bias if self.has_bias else None,
                self.row_counts,
            )
        # Slice k computes x[k] @ W[k].T + b[k] — the same contraction and
        # broadcast F.linear issues for one client.
        out = x @ self.weight.transpose(0, 2, 1)
        if self.has_bias:
            out = out + self.bias.reshape(
                self.bias.shape[0], 1, self.bias.shape[1]
            )
        return out

    def sync_back(self) -> None:
        for k, source in enumerate(self.sources):
            source.weight.data = self.weight.data[k].copy()
            if self.has_bias:
                source.bias.data = self.bias.data[k].copy()


class StackedConv2d(StackedLeaf):
    """K convolutions as one leading-axis im2col + batched GEMM."""

    def __init__(self, sources: List[Conv2d]) -> None:
        super().__init__(sources)
        first = sources[0]
        self.stride = first.stride
        self.padding = first.padding
        self.weight = _stacked_parameter([m.weight.data for m in sources])
        self.has_bias = first.bias is not None
        if self.has_bias:
            self.bias = _stacked_parameter([m.bias.data for m in sources])

    def forward(self, x: Tensor) -> Tensor:
        out = F.conv2d_stacked(
            x,
            self.weight,
            self.bias if self.has_bias else None,
            stride=self.stride,
            padding=self.padding,
        )
        return _mask_padded_rows(out, self.row_counts)

    def sync_back(self) -> None:
        for k, source in enumerate(self.sources):
            source.weight.data = self.weight.data[k].copy()
            if self.has_bias:
                source.bias.data = self.bias.data[k].copy()


class StackedReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class StackedIdentity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x


class StackedFlatten(Module):
    """Per-client ``Flatten`` keeps the batch axis; stacked, it keeps the
    stack *and* batch axes."""

    def forward(self, x: Tensor) -> Tensor:
        return x.flatten(start_dim=2)


class _MergedBatchPool(Module):
    """Pooling is per-sample, so stack and batch axes merge into one big
    batch: the merged call is bit-identical to the per-client kernel on
    each sample, and the reshapes are pure relabelings."""

    def __init__(self, kernel_size: int) -> None:
        super().__init__()
        self.kernel_size = kernel_size

    def _pool(self, x: Tensor) -> Tensor:
        raise NotImplementedError

    def forward(self, x: Tensor) -> Tensor:
        k_stack, n = x.shape[0], x.shape[1]
        merged = x.reshape((k_stack * n,) + x.shape[2:])
        pooled = self._pool(merged)
        return pooled.reshape((k_stack, n) + pooled.shape[1:])


class StackedMaxPool2d(_MergedBatchPool):
    def _pool(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size)


class StackedAvgPool2d(_MergedBatchPool):
    def _pool(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size)


class StackedDropout(Module):
    """Inverted dropout with one mask generator *per slice*.

    Slice k's mask is drawn from client k's own generator with the same
    call (``rng.random(per_client_shape)``) the per-client layer makes,
    so stacking neither merges nor reorders any client's RNG stream.

    Ragged steps (final batches of unequal size, zero-padded to the
    stack's batch axis) set :attr:`row_counts` first: slice k then draws
    its mask with that client's *true* batch shape — the exact call the
    per-client layer makes — and the padded rows get zero masks (their
    upstream gradients are already exactly zero, so the zeros change no
    bits).
    """

    def __init__(self, sources: List[Dropout]) -> None:
        super().__init__()
        self.p = sources[0].p
        self._rngs = [m._rng for m in sources]
        # Per-slice true row counts for the *current* ragged step, or
        # None when the step is rectangular (set via
        # StackedModel.set_row_counts).
        self.row_counts: Optional[List[int]] = None

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        per_client = x.shape[1:]
        if self.row_counts is None:
            mask = np.stack(
                [(rng.random(per_client) >= self.p) / (1.0 - self.p) for rng in self._rngs]
            )
        else:
            mask = np.zeros((x.shape[0],) + per_client, dtype=np.float64)
            for k, (rng, rows) in enumerate(zip(self._rngs, self.row_counts)):
                drawn = (rng.random((rows,) + per_client[1:]) >= self.p) / (1.0 - self.p)
                mask[k, :rows] = drawn
        return x * Tensor(mask)


class StackedLayerNorm(StackedLeaf):
    """K layer norms; per-sample statistics shift right by one axis."""

    def __init__(self, sources: List[LayerNorm]) -> None:
        super().__init__(sources)
        self.eps = sources[0].eps
        self.num_features = sources[0].num_features
        self.gamma = _stacked_parameter([m.gamma.data for m in sources])
        self.beta = _stacked_parameter([m.beta.data for m in sources])

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 3:
            raise ValueError(f"stacked LayerNorm expects 3-D input, got {x.shape}")
        mean = x.mean(axis=2, keepdims=True)
        var = x.var(axis=2, keepdims=True)
        x_hat = (x - mean) / ((var + self.eps) ** 0.5)
        k_stack = x.shape[0]
        gamma = self.gamma.reshape(k_stack, 1, -1)
        beta = self.beta.reshape(k_stack, 1, -1)
        return _mask_padded_rows(x_hat * gamma + beta, self.row_counts)

    def sync_back(self) -> None:
        for k, source in enumerate(self.sources):
            source.gamma.data = self.gamma.data[k].copy()
            source.beta.data = self.beta.data[k].copy()


class StackedGroupNorm(StackedLeaf):
    """K group norms; the grouped reduction keeps its in-slice axes."""

    def __init__(self, sources: List[GroupNorm]) -> None:
        super().__init__(sources)
        first = sources[0]
        self.num_groups = first.num_groups
        self.num_channels = first.num_channels
        self.eps = first.eps
        self.gamma = _stacked_parameter([m.gamma.data for m in sources])
        self.beta = _stacked_parameter([m.beta.data for m in sources])

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 5:
            raise ValueError(f"stacked GroupNorm expects 5-D input, got {x.shape}")
        k_stack, n, c, h, w = x.shape
        grouped = x.reshape(k_stack, n, self.num_groups, c // self.num_groups, h, w)
        mean = grouped.mean(axis=(3, 4, 5), keepdims=True)
        var = grouped.var(axis=(3, 4, 5), keepdims=True)
        normalised = (grouped - mean) / ((var + self.eps) ** 0.5)
        out = normalised.reshape(k_stack, n, c, h, w)
        gamma = self.gamma.reshape(k_stack, 1, -1, 1, 1)
        beta = self.beta.reshape(k_stack, 1, -1, 1, 1)
        return _mask_padded_rows(out * gamma + beta, self.row_counts)

    def sync_back(self) -> None:
        for k, source in enumerate(self.sources):
            source.gamma.data = self.gamma.data[k].copy()
            source.beta.data = self.beta.data[k].copy()


class StackedSequential(Module):
    """Chain of stacked layers applied in order."""

    def __init__(self, layers: List[Module]) -> None:
        super().__init__()
        for index, layer in enumerate(layers):
            setattr(self, f"layer{index}", layer)
        self._layers = list(layers)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self._layers:
            x = layer(x)
        return x


class StackedFlattenIfImages(Module):
    """Mirror of ``MLP.forward``'s conditional flatten: a stacked image
    batch ``(K, N, C, H, W)`` flattens to ``(K, N, C*H*W)``; an already
    flat ``(K, N, F)`` input passes through."""

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim > 3:
            return x.flatten(start_dim=2)
        return x


class StackedModel(Module):
    """K stacked models behind one forward; the federation layer's view.

    ``parameters()`` walks the stacked leaves (each holding ``(K, ...)``
    data), so one optimizer drives all K slices; :meth:`sync_back`
    scatters the trained slices into the source models for per-slice
    ``state_dict()`` extraction.
    """

    def __init__(self, body: Module, sources: List[Module]) -> None:
        super().__init__()
        self.body = body
        self.sources = sources

    def forward(self, x: Tensor) -> Tensor:
        return self.body(x)

    def sync_back(self) -> None:
        for module in self.modules():
            if isinstance(module, StackedLeaf):
                module.sync_back()

    def set_row_counts(self, row_counts: Optional[List[int]]) -> None:
        """Declare the current step's per-slice true batch sizes.

        Ragged steps (zero-padded final batches) set the counts before
        the forward so RNG-consuming layers (dropout) draw per-slice
        masks with each client's true batch shape, and so layers with
        additive terms (bias / affine shift) re-zero the padded rows
        they would otherwise turn nonzero — nonzero padding rows
        perturb the low bits of the *true* rows in the next matmul's
        blocked reduction, breaking bitwise parity. Rectangular steps
        reset with ``None``.
        """
        for module in self.modules():
            if isinstance(module, (StackedDropout, StackedLeaf)):
                module.row_counts = row_counts

    def slice_states(self) -> List[dict]:
        """Per-slice state dicts after :meth:`sync_back`."""
        self.sync_back()
        return [source.state_dict() for source in self.sources]


_LEAF_BUILDERS = {
    Linear: StackedLinear,
    Conv2d: StackedConv2d,
    LayerNorm: StackedLayerNorm,
    GroupNorm: StackedGroupNorm,
    Dropout: StackedDropout,
}

_STATELESS = {
    ReLU: StackedReLU,
    Identity: StackedIdentity,
    Flatten: StackedFlatten,
}


def _check_homogeneous(modules: List[Module]) -> None:
    first = modules[0]
    for module in modules[1:]:
        if type(module) is not type(first):
            raise VmapUnsupported(
                f"cohort models differ in structure: {type(first).__name__} "
                f"vs {type(module).__name__}"
            )


def _stack(modules: List[Module]) -> Module:
    _check_homogeneous(modules)
    first = modules[0]
    cls = type(first)
    if cls in _STATELESS:
        return _STATELESS[cls]()
    if cls is MaxPool2d:
        if any(m.kernel_size != first.kernel_size for m in modules):
            raise VmapUnsupported("cohort MaxPool2d kernel sizes differ")
        return StackedMaxPool2d(first.kernel_size)
    if cls is AvgPool2d:
        if any(m.kernel_size != first.kernel_size for m in modules):
            raise VmapUnsupported("cohort AvgPool2d kernel sizes differ")
        return StackedAvgPool2d(first.kernel_size)
    if cls in _LEAF_BUILDERS:
        key_attrs = {
            Linear: ("in_features", "out_features"),
            Conv2d: ("in_channels", "out_channels", "kernel_size", "stride", "padding"),
            LayerNorm: ("num_features", "eps"),
            GroupNorm: ("num_groups", "num_channels", "eps"),
            Dropout: ("p",),
        }[cls]
        for attr in key_attrs:
            value = getattr(first, attr)
            if any(getattr(m, attr) != value for m in modules):
                raise VmapUnsupported(
                    f"cohort {cls.__name__} layers differ in {attr}"
                )
        if cls in (Linear, Conv2d):
            first_has_bias = first.bias is not None
            if any((m.bias is not None) != first_has_bias for m in modules):
                raise VmapUnsupported(f"cohort {cls.__name__} bias presence differs")
        return _LEAF_BUILDERS[cls](modules)
    if cls is Sequential:
        lengths = {len(m._layers) for m in modules}
        if len(lengths) != 1:
            raise VmapUnsupported("cohort Sequential lengths differ")
        return StackedSequential(
            [_stack([m._layers[i] for m in modules]) for i in range(len(first._layers))]
        )
    if cls is MLP:
        return StackedSequential(
            [StackedFlattenIfImages(), _stack([m.net for m in modules])]
        )
    if cls in (LeNet5, ModifiedLeNet5):
        return StackedSequential(
            [
                _stack([m.features for m in modules]),
                _stack([m.classifier for m in modules]),
            ]
        )
    raise VmapUnsupported(
        f"module type {cls.__name__} has no stacked implementation"
    )


def stack_modules(models: List[Module]) -> StackedModel:
    """Stack K structurally identical models into one batched model.

    Raises :class:`VmapUnsupported` (with a human-readable reason) when
    any layer has no stacked implementation or the models' structures
    disagree — callers fall back to per-client execution.
    """
    if not models:
        raise ValueError("stack_modules needs at least one model")
    dtypes = {model.dtype for model in models}
    if len(dtypes) != 1:
        raise VmapUnsupported(f"cohort models differ in dtype: {sorted(map(str, dtypes))}")
    for model in models:
        for name, _ in model.named_buffers():
            raise VmapUnsupported(
                f"model carries a buffer ({name!r}); buffered layers such as "
                "BatchNorm2d hold per-replica running state the stack cannot share"
            )
    return StackedModel(_stack(models), models)


def stackable_reason(model: Module) -> Optional[str]:
    """Why ``model``'s architecture cannot be stacked (``None`` = it can)."""
    try:
        stack_modules([model])
    except VmapUnsupported as error:
        return str(error)
    return None


def ragged_support_reason(model: Module) -> Optional[str]:
    """Why ``model`` cannot take ragged (zero-padded) steps (``None`` = it can).

    Ragged parity requires every layer to be row-exact under zero
    padding.  ``Linear`` runs one true-row GEMM per slice
    (:func:`_ragged_linear`); elementwise, pooling and normalisation
    layers are row-local (their reductions never span batch rows).
    ``Conv2d`` is not: its *weight-gradient* contraction sums over batch
    rows × spatial positions, so padded rows lengthen the reduction and
    the true slices' weight gradients drift by ULPs.
    """
    for module in model.modules():
        if isinstance(module, Conv2d):
            return (
                "Conv2d weight gradients contract over the batch axis, so "
                "zero-padded rows change the reduction extent"
            )
    return None


# ----------------------------------------------------------------------
# Stacked hard losses: per-slice means, one graph
# ----------------------------------------------------------------------
def _stacked_pick(log_probs: Tensor, labels: np.ndarray) -> Tensor:
    """``log_probs[k, b, labels[k, b]]`` as a (K, B) tensor."""
    k_stack, batch = labels.shape
    k_idx = np.arange(k_stack)[:, None]
    b_idx = np.arange(batch)[None, :]
    return log_probs[k_idx, b_idx, labels]


def _check_stacked_labels(logits: Tensor, labels: np.ndarray) -> np.ndarray:
    labels = np.asarray(labels)
    if logits.ndim != 3:
        raise ValueError(f"stacked logits must be 3-D (K, N, classes), got {logits.shape}")
    if labels.shape != logits.shape[:2]:
        raise ValueError(
            f"stacked labels must be (K, N) = {logits.shape[:2]}, got {labels.shape}"
        )
    return labels.astype(np.int64)


def stacked_cross_entropy_per_sample(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Per-sample softmax cross-entropy: a ``(K, B)`` tensor, one graph.

    Row k's values and gradients equal
    ``cross_entropy(logits[k], labels[k], reduction="none")`` — the
    log-softmax reduces along the class axis and the pick indexes within
    the slice.  Also serves ``nll`` (``nll_from_logits`` composes the
    identical ops).
    """
    labels = _check_stacked_labels(logits, labels)
    log_probs = F.log_softmax(logits, axis=-1)
    picked = _stacked_pick(log_probs, labels)
    return -picked


def stacked_cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Per-slice mean softmax cross-entropy: ``(K,)`` losses, one graph.

    Slice k's value and gradient equal
    ``cross_entropy(logits[k], labels[k])`` — the per-sample values are
    identical and the mean divides by the same batch count.
    """
    return stacked_cross_entropy_per_sample(logits, labels).mean(axis=1)


def stacked_focal_loss_per_sample(
    logits: Tensor, labels: np.ndarray, gamma: float = 2.0
) -> Tensor:
    """Per-sample focal loss ``(K, B)``, mirroring
    :func:`repro.nn.losses.focal_loss`."""
    labels = _check_stacked_labels(logits, labels)
    log_probs = F.log_softmax(logits, axis=-1)
    picked_log = _stacked_pick(log_probs, labels)
    p_t = picked_log.exp()
    modulator = (1.0 - p_t) ** gamma if gamma else Tensor(np.ones_like(p_t.data))
    return -(modulator * picked_log)


def stacked_focal_loss(logits: Tensor, labels: np.ndarray, gamma: float = 2.0) -> Tensor:
    """Per-slice mean focal loss, mirroring :func:`repro.nn.losses.focal_loss`."""
    return stacked_focal_loss_per_sample(logits, labels, gamma).mean(axis=1)


def stacked_label_smoothing_loss_per_sample(
    logits: Tensor, labels: np.ndarray, smoothing: float = 0.1
) -> Tensor:
    """Per-sample label-smoothing loss ``(K, B)``, mirroring
    :func:`repro.nn.losses.label_smoothing_loss`."""
    labels = _check_stacked_labels(logits, labels)
    log_probs = F.log_softmax(logits, axis=-1)
    picked = _stacked_pick(log_probs, labels)
    num_classes = logits.shape[2]
    uniform_term = log_probs.sum(axis=2) * (smoothing / num_classes)
    return -((1.0 - smoothing) * picked + uniform_term)


def stacked_label_smoothing_loss(
    logits: Tensor, labels: np.ndarray, smoothing: float = 0.1
) -> Tensor:
    """Per-slice mean label-smoothing loss, mirroring
    :func:`repro.nn.losses.label_smoothing_loss`."""
    return stacked_label_smoothing_loss_per_sample(logits, labels, smoothing).mean(axis=1)


STACKED_LOSSES = {
    "cross_entropy": stacked_cross_entropy,
    "nll": stacked_cross_entropy,  # nll_from_logits composes the same ops
    "focal": stacked_focal_loss,
    "label_smoothing": stacked_label_smoothing_loss,
}
"""Stacked counterparts of :data:`repro.nn.losses.HARD_LOSSES`."""

STACKED_PER_SAMPLE_LOSSES = {
    "cross_entropy": stacked_cross_entropy_per_sample,
    "nll": stacked_cross_entropy_per_sample,
    "focal": stacked_focal_loss_per_sample,
    "label_smoothing": stacked_label_smoothing_loss_per_sample,
}
"""Unreduced ``(K, B)`` variants — ragged steps slice each row to the
member's true batch before its per-slice mean."""


def get_stacked_loss(name: str):
    """The stacked counterpart of a hard loss; raises on unknown names."""
    try:
        return STACKED_LOSSES[name]
    except KeyError:
        raise ValueError(
            f"loss {name!r} has no stacked implementation; "
            f"available: {sorted(STACKED_LOSSES)}"
        ) from None


def get_stacked_per_sample_loss(name: str):
    """The unreduced ``(K, B)`` counterpart of a hard loss."""
    try:
        return STACKED_PER_SAMPLE_LOSSES[name]
    except KeyError:
        raise ValueError(
            f"loss {name!r} has no stacked implementation; "
            f"available: {sorted(STACKED_PER_SAMPLE_LOSSES)}"
        ) from None


# ----------------------------------------------------------------------
# Stacked protocol losses (distillation / confusion), per-slice graphs
# ----------------------------------------------------------------------
def stacked_distillation_loss_per_sample(
    teacher_logits: Tensor, student_logits: Tensor, temperature: float = 1.0
) -> Tensor:
    """Per-sample distillation loss ``(K, B)``, mirroring
    :func:`repro.nn.losses.distillation_loss` slice for slice.

    The softmax/log-softmax reduce along the class axis and the product
    sum is per-row, so row k reproduces the per-client call bit for bit.
    ``temperature`` is a python float (the per-client call divides by
    ``float(T)``), keeping the weak-scalar dtype semantics identical.
    """
    teacher_probs = F.softmax(
        teacher_logits.detach(), axis=2, temperature=temperature
    )
    student_log_probs = F.log_softmax(student_logits / float(temperature), axis=2)
    return -(teacher_probs * student_log_probs).sum(axis=2)

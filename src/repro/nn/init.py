"""Parameter initialisation schemes.

All initialisers take an explicit :class:`numpy.random.Generator` so that
every experiment in the reproduction is deterministic given its seed.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np


def _fan_in_out(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Compute (fan_in, fan_out) for dense and convolutional weights."""
    if len(shape) == 2:  # (out_features, in_features)
        fan_out, fan_in = shape
    elif len(shape) == 4:  # (out_channels, in_channels, kh, kw)
        receptive = shape[2] * shape[3]
        fan_in = shape[1] * receptive
        fan_out = shape[0] * receptive
    else:
        raise ValueError(f"unsupported weight shape for fan computation: {shape}")
    return fan_in, fan_out


def kaiming_uniform(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He-uniform init, suited to ReLU networks (LeNet / ResNet here)."""
    fan_in, _ = _fan_in_out(shape)
    bound = math.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def kaiming_normal(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He-normal init (std = sqrt(2 / fan_in))."""
    fan_in, _ = _fan_in_out(shape)
    std = math.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape)


def xavier_uniform(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot-uniform init, suited to tanh/sigmoid networks."""
    fan_in, fan_out = _fan_in_out(shape)
    bound = math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def bias_uniform(shape: Tuple[int, ...], fan_in: int, rng: np.random.Generator) -> np.ndarray:
    """PyTorch-style bias init: uniform in ±1/sqrt(fan_in)."""
    bound = 1.0 / math.sqrt(fan_in) if fan_in > 0 else 0.0
    return rng.uniform(-bound, bound, size=shape)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    """All-zero initialisation (biases, batch-norm shifts)."""
    return np.zeros(shape, dtype=np.float64)


def ones(shape: Tuple[int, ...]) -> np.ndarray:
    """All-one initialisation (batch-norm scales)."""
    return np.ones(shape, dtype=np.float64)

"""Loss functions.

Includes the three "hard loss" choices evaluated in the paper's Table XI
(cross-entropy = Total loss α, focal = β, NLL = γ) plus the soft-target
distillation loss of Eq. 5 and auxiliary regression losses.
"""

from __future__ import annotations

import numpy as np

from . import functional as F
from .tensor import Tensor


def _check_labels(logits: Tensor, labels: np.ndarray) -> np.ndarray:
    labels = np.asarray(labels)
    if labels.ndim != 1:
        raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
    if logits.ndim != 2:
        raise ValueError(f"logits must be 2-D (N, classes), got shape {logits.shape}")
    if labels.shape[0] != logits.shape[0]:
        raise ValueError(
            f"batch mismatch: {logits.shape[0]} logits vs {labels.shape[0]} labels"
        )
    if labels.size and (labels.min() < 0 or labels.max() >= logits.shape[1]):
        raise ValueError("labels out of range")
    return labels.astype(np.int64)


def _reduce(values: Tensor, reduction: str) -> Tensor:
    if reduction == "mean":
        return values.mean()
    if reduction == "sum":
        return values.sum()
    if reduction == "none":
        return values
    raise ValueError(f"unknown reduction {reduction!r}")


def cross_entropy(logits: Tensor, labels: np.ndarray, reduction: str = "mean") -> Tensor:
    """Softmax cross-entropy with integer class labels.

    Runs on the fused :func:`~repro.nn.functional.log_softmax` node: the
    backward pass reuses the forward's cached ``exp``/``sum`` to form the
    softmax instead of a second exp/sum round-trip, bit-identically.
    This is the training hot path — every mini-batch of every client,
    shard and protocol ends here.
    """
    labels = _check_labels(logits, labels)
    log_probs = F.log_softmax(logits, axis=1)
    picked = log_probs[np.arange(labels.shape[0]), labels]
    return _reduce(-picked, reduction)


def nll_loss(log_probs: Tensor, labels: np.ndarray, reduction: str = "mean") -> Tensor:
    """Negative log-likelihood on already-log-softmaxed inputs."""
    labels = _check_labels(log_probs, labels)
    picked = log_probs[np.arange(labels.shape[0]), labels]
    return _reduce(-picked, reduction)


def nll_from_logits(logits: Tensor, labels: np.ndarray, reduction: str = "mean") -> Tensor:
    """NLL applied to logits (Table XI 'Total loss γ' hard-loss variant)."""
    return nll_loss(F.log_softmax(logits, axis=1), labels, reduction=reduction)


def focal_loss(
    logits: Tensor,
    labels: np.ndarray,
    gamma: float = 2.0,
    reduction: str = "mean",
) -> Tensor:
    """Focal loss (Lin et al., ICCV 2017): ``-(1 - p_t)^gamma * log(p_t)``.

    Down-weights well-classified examples; Table XI 'Total loss β'.
    """
    if gamma < 0:
        raise ValueError(f"gamma must be non-negative, got {gamma}")
    labels = _check_labels(logits, labels)
    log_probs = F.log_softmax(logits, axis=1)
    picked_log = log_probs[np.arange(labels.shape[0]), labels]
    p_t = picked_log.exp()
    modulator = (1.0 - p_t) ** gamma if gamma else Tensor(np.ones_like(p_t.data))
    return _reduce(-(modulator * picked_log), reduction)


def label_smoothing_loss(
    logits: Tensor,
    labels: np.ndarray,
    smoothing: float = 0.1,
    reduction: str = "mean",
) -> Tensor:
    """Cross-entropy against smoothed targets (Szegedy et al., CVPR 2016).

    ``loss = -(1 - ε)·log p_y − (ε / C)·Σ_j log p_j`` — spreads ε of the
    target mass uniformly over all classes, a standard regulariser for the
    over-confident predictions distillation teachers tend to produce.
    Used as the 'Total loss δ' hard-loss variant extending Table XI.
    """
    if not 0 <= smoothing < 1:
        raise ValueError(f"smoothing must be in [0, 1), got {smoothing}")
    labels = _check_labels(logits, labels)
    log_probs = F.log_softmax(logits, axis=1)
    picked = log_probs[np.arange(labels.shape[0]), labels]
    num_classes = logits.shape[1]
    uniform_term = log_probs.sum(axis=1) * (smoothing / num_classes)
    per_sample = -((1.0 - smoothing) * picked + uniform_term)
    return _reduce(per_sample, reduction)


def distillation_loss(
    teacher_logits: Tensor,
    student_logits: Tensor,
    temperature: float = 1.0,
    reduction: str = "mean",
) -> Tensor:
    """Soft-target distillation loss of paper Eq. 5.

    ``Ld = -sum_i P_T(x_i) . log P_S(x_i)`` where both distributions use the
    same distillation temperature (Eq. 3–4). The teacher's distribution is
    treated as a constant target (no gradient flows into the teacher).
    """
    if teacher_logits.shape != student_logits.shape:
        raise ValueError(
            f"teacher/student shape mismatch: {teacher_logits.shape} vs {student_logits.shape}"
        )
    teacher_probs = F.softmax(teacher_logits.detach(), axis=1, temperature=temperature)
    student_log_probs = F.log_softmax(student_logits / float(temperature), axis=1)
    per_sample = -(teacher_probs * student_log_probs).sum(axis=1)
    return _reduce(per_sample, reduction)


def mse_loss(prediction: Tensor, target: Tensor, reduction: str = "mean") -> Tensor:
    """Mean squared error (used by the adaptive-weight extension, Eq. 12)."""
    prediction = prediction if isinstance(prediction, Tensor) else Tensor(prediction)
    target = target if isinstance(target, Tensor) else Tensor(target)
    diff = prediction - target.detach()
    return _reduce(diff * diff, reduction)


HARD_LOSSES = {
    "cross_entropy": cross_entropy,
    "focal": focal_loss,
    "nll": nll_from_logits,
    "label_smoothing": label_smoothing_loss,
}
"""Registry of hard-loss choices (Table XI: α / β / γ, plus our δ)."""


def get_hard_loss(name: str):
    """Look up a hard-loss function by registry name."""
    try:
        return HARD_LOSSES[name]
    except KeyError:
        raise ValueError(
            f"unknown hard loss {name!r}; available: {sorted(HARD_LOSSES)}"
        ) from None

"""CIFAR-style residual networks (He et al., CVPR 2016).

The paper evaluates ResNet32 on CIFAR-10 and ResNet56 on CIFAR-100. These
are the classic 6n+2 CIFAR variants: an initial 3x3 conv to 16 channels,
three stages of ``n`` basic blocks at widths (16, 32, 64) with stride-2
downsampling between stages, global average pooling, and a linear head.

Any depth of the family can be built via :func:`resnet`; the benchmark
presets use shallow depths (ResNet8) for CPU runtime — see DESIGN.md §1.
"""

from __future__ import annotations

import numpy as np

from .. import functional as F
from ..layers import BatchNorm2d, Conv2d, Linear, Sequential
from ..module import Module
from ..tensor import Tensor


class BasicBlock(Module):
    """Two 3x3 convolutions with a residual shortcut."""

    def __init__(self, in_channels: int, out_channels: int, stride: int,
                 rng: np.random.Generator) -> None:
        super().__init__()
        self.conv1 = Conv2d(in_channels, out_channels, 3, rng=rng, stride=stride,
                            padding=1, bias=False)
        self.bn1 = BatchNorm2d(out_channels)
        self.conv2 = Conv2d(out_channels, out_channels, 3, rng=rng, stride=1,
                            padding=1, bias=False)
        self.bn2 = BatchNorm2d(out_channels)
        self.has_projection = stride != 1 or in_channels != out_channels
        if self.has_projection:
            self.proj_conv = Conv2d(in_channels, out_channels, 1, rng=rng,
                                    stride=stride, bias=False)
            self.proj_bn = BatchNorm2d(out_channels)

    def forward(self, x: Tensor) -> Tensor:
        out = self.bn1(self.conv1(x)).relu()
        out = self.bn2(self.conv2(out))
        shortcut = self.proj_bn(self.proj_conv(x)) if self.has_projection else x
        return (out + shortcut).relu()


class ResNet(Module):
    """CIFAR ResNet of depth ``6n + 2`` with configurable base width."""

    def __init__(
        self,
        depth: int,
        num_classes: int,
        rng: np.random.Generator,
        in_channels: int = 3,
        base_width: int = 16,
    ) -> None:
        super().__init__()
        if (depth - 2) % 6 != 0:
            raise ValueError(f"CIFAR ResNet depth must be 6n+2, got {depth}")
        n = (depth - 2) // 6
        self.depth = depth
        self.num_classes = num_classes
        widths = (base_width, base_width * 2, base_width * 4)

        self.stem_conv = Conv2d(in_channels, widths[0], 3, rng=rng, padding=1, bias=False)
        self.stem_bn = BatchNorm2d(widths[0])
        self.stage1 = self._make_stage(widths[0], widths[0], n, stride=1, rng=rng)
        self.stage2 = self._make_stage(widths[0], widths[1], n, stride=2, rng=rng)
        self.stage3 = self._make_stage(widths[1], widths[2], n, stride=2, rng=rng)
        self.head = Linear(widths[2], num_classes, rng=rng)

    @staticmethod
    def _make_stage(in_channels: int, out_channels: int, blocks: int, stride: int,
                    rng: np.random.Generator) -> Sequential:
        layers = [BasicBlock(in_channels, out_channels, stride, rng)]
        layers.extend(
            BasicBlock(out_channels, out_channels, 1, rng) for _ in range(blocks - 1)
        )
        return Sequential(*layers)

    def forward(self, x: Tensor) -> Tensor:
        out = self.stem_bn(self.stem_conv(x)).relu()
        out = self.stage1(out)
        out = self.stage2(out)
        out = self.stage3(out)
        out = F.global_avg_pool2d(out)
        return self.head(out)


def resnet(depth: int, num_classes: int, rng: np.random.Generator,
           in_channels: int = 3, base_width: int = 16) -> ResNet:
    """Build a CIFAR ResNet of the requested depth (must be 6n+2)."""
    return ResNet(depth, num_classes, rng, in_channels=in_channels, base_width=base_width)


def resnet8(num_classes: int, rng: np.random.Generator, **kwargs) -> ResNet:
    """Depth-8 member of the family (benchmark-scale stand-in)."""
    return resnet(8, num_classes, rng, **kwargs)


def resnet20(num_classes: int, rng: np.random.Generator, **kwargs) -> ResNet:
    """Depth-20 member of the family."""
    return resnet(20, num_classes, rng, **kwargs)


def resnet32(num_classes: int, rng: np.random.Generator, **kwargs) -> ResNet:
    """ResNet32 — the paper's CIFAR-10 model."""
    return resnet(32, num_classes, rng, **kwargs)


def resnet56(num_classes: int, rng: np.random.Generator, **kwargs) -> ResNet:
    """ResNet56 — the paper's CIFAR-100 model."""
    return resnet(56, num_classes, rng, **kwargs)

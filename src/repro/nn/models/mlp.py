"""A configurable multi-layer perceptron for tests, examples and smoke runs."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..layers import Linear, ReLU, Sequential
from ..module import Module
from ..tensor import Tensor


class MLP(Module):
    """Fully connected classifier over flattened inputs.

    Parameters
    ----------
    in_features:
        Flattened input dimension (e.g. 784 for 28x28 grayscale images).
    num_classes:
        Output dimension.
    hidden:
        Sizes of the hidden layers, each followed by ReLU.
    """

    def __init__(
        self,
        in_features: int,
        num_classes: int,
        rng: np.random.Generator,
        hidden: Sequence[int] = (64,),
    ) -> None:
        super().__init__()
        self.in_features = in_features
        self.num_classes = num_classes
        layers = []
        previous = in_features
        for width in hidden:
            layers.append(Linear(previous, width, rng=rng))
            layers.append(ReLU())
            previous = width
        layers.append(Linear(previous, num_classes, rng=rng))
        self.net = Sequential(*layers)

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim > 2:
            x = x.flatten(start_dim=1)
        return self.net(x)

"""LeNet-5 variants as described in the paper's experimental setup.

"The model for MNIST and FMNIST is a traditional LeNet-5 model [...]
consists of 2 convolutional layers, 2 max pool layers, and 2 fully
connected layers", while "the models for CIFAR-10 are a modified LeNet-5
consisting of 2 convolutional layers, 2 max pool layers, and 3 fully
connected layers".
"""

from __future__ import annotations

import numpy as np

from ..layers import Conv2d, Flatten, Linear, MaxPool2d, ReLU, Sequential
from ..module import Module
from ..tensor import Tensor


class LeNet5(Module):
    """Traditional LeNet-5 for 1x28x28 inputs (MNIST / FMNIST).

    conv(1→6, 5x5) → pool2 → conv(6→16, 5x5) → pool2 → fc(256→120) → fc(120→classes)
    """

    def __init__(self, num_classes: int, rng: np.random.Generator, in_channels: int = 1,
                 image_size: int = 28) -> None:
        super().__init__()
        self.num_classes = num_classes
        after_conv1 = (image_size - 4) // 2
        after_conv2 = (after_conv1 - 4) // 2
        if after_conv2 <= 0:
            raise ValueError(f"image size {image_size} too small for LeNet-5")
        flat = 16 * after_conv2 * after_conv2
        self.features = Sequential(
            Conv2d(in_channels, 6, kernel_size=5, rng=rng),
            ReLU(),
            MaxPool2d(2),
            Conv2d(6, 16, kernel_size=5, rng=rng),
            ReLU(),
            MaxPool2d(2),
            Flatten(),
        )
        self.classifier = Sequential(
            Linear(flat, 120, rng=rng),
            ReLU(),
            Linear(120, num_classes, rng=rng),
        )

    def forward(self, x: Tensor) -> Tensor:
        return self.classifier(self.features(x))


class ModifiedLeNet5(Module):
    """Modified LeNet-5 for 3x32x32 inputs (CIFAR-10): three FC layers.

    conv(3→6, 5x5) → pool2 → conv(6→16, 5x5) → pool2 →
    fc(400→120) → fc(120→84) → fc(84→classes)
    """

    def __init__(self, num_classes: int, rng: np.random.Generator, in_channels: int = 3,
                 image_size: int = 32) -> None:
        super().__init__()
        self.num_classes = num_classes
        after_conv1 = (image_size - 4) // 2
        after_conv2 = (after_conv1 - 4) // 2
        if after_conv2 <= 0:
            raise ValueError(f"image size {image_size} too small for modified LeNet-5")
        flat = 16 * after_conv2 * after_conv2
        self.features = Sequential(
            Conv2d(in_channels, 6, kernel_size=5, rng=rng),
            ReLU(),
            MaxPool2d(2),
            Conv2d(6, 16, kernel_size=5, rng=rng),
            ReLU(),
            MaxPool2d(2),
            Flatten(),
        )
        self.classifier = Sequential(
            Linear(flat, 120, rng=rng),
            ReLU(),
            Linear(120, 84, rng=rng),
            ReLU(),
            Linear(84, num_classes, rng=rng),
        )

    def forward(self, x: Tensor) -> Tensor:
        return self.classifier(self.features(x))

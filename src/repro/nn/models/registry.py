"""String-keyed model factory used by the experiment harness and examples."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

import numpy as np

from ..module import Module
from .lenet import LeNet5, ModifiedLeNet5
from .mlp import MLP
from .resnet import resnet


def _build_lenet5(num_classes, rng, in_channels, image_size):
    return LeNet5(num_classes, rng, in_channels=in_channels, image_size=image_size)


def _build_modified_lenet5(num_classes, rng, in_channels, image_size):
    return ModifiedLeNet5(num_classes, rng, in_channels=in_channels, image_size=image_size)


def _build_mlp(num_classes, rng, in_channels, image_size):
    return MLP(in_channels * image_size * image_size, num_classes, rng, hidden=(64,))


def _resnet_builder(depth: int, base_width: int = 16):
    def build(num_classes, rng, in_channels, image_size):
        del image_size  # ResNet is fully convolutional; any size works.
        return resnet(depth, num_classes, rng, in_channels=in_channels,
                      base_width=base_width)

    return build


MODEL_BUILDERS: Dict[str, Callable[..., Module]] = {
    "lenet5": _build_lenet5,
    "modified_lenet5": _build_modified_lenet5,
    "mlp": _build_mlp,
    "resnet8": _resnet_builder(8),
    # CPU-friendly narrow member of the same family, used by the reduced
    # experiment scales in place of ResNet32/56 (see DESIGN.md §1).
    "resnet8_slim": _resnet_builder(8, base_width=4),
    "resnet20": _resnet_builder(20),
    "resnet32": _resnet_builder(32),
    "resnet56": _resnet_builder(56),
}
"""Every architecture named in the paper plus small stand-ins for CPU runs."""


def build_model(
    name: str,
    num_classes: int,
    rng: np.random.Generator,
    in_channels: int = 1,
    image_size: int = 28,
) -> Module:
    """Construct a model by registry name.

    Raises
    ------
    ValueError
        If ``name`` is not a registered architecture.
    """
    try:
        builder = MODEL_BUILDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown model {name!r}; available: {sorted(MODEL_BUILDERS)}"
        ) from None
    return builder(num_classes, rng, in_channels, image_size)


@dataclass(frozen=True)
class RegistryModelFactory:
    """A picklable zero-arg model factory.

    Unlike a closure over :func:`build_model`, an instance of this class
    survives pickling, so it can ride inside runtime tasks shipped to
    spawn-based worker processes. Every call returns an identically
    initialised fresh model (the init RNG is reseeded per call).
    """

    name: str
    num_classes: int
    in_channels: int = 1
    image_size: int = 28
    seed: int = 42

    def __post_init__(self) -> None:
        if self.name not in MODEL_BUILDERS:
            raise ValueError(
                f"unknown model {self.name!r}; available: {sorted(MODEL_BUILDERS)}"
            )

    def __call__(self) -> Module:
        return build_model(
            self.name,
            num_classes=self.num_classes,
            rng=np.random.default_rng(self.seed),
            in_channels=self.in_channels,
            image_size=self.image_size,
        )

"""Model zoo matching the architectures used in the paper's evaluation.

* :class:`LeNet5` — MNIST / Fashion-MNIST (2 conv, 2 max-pool, 2 FC).
* :class:`ModifiedLeNet5` — CIFAR-10 (2 conv, 2 max-pool, 3 FC).
* :func:`resnet` — CIFAR-style residual networks of depth ``6n + 2``
  (ResNet8/20/32/56 constructible; the paper uses 32 and 56).
* :class:`MLP` — generic baseline for tests and examples.
* :func:`build_model` — string-keyed factory used by the experiment harness.
"""

from .lenet import LeNet5, ModifiedLeNet5
from .mlp import MLP
from .resnet import ResNet, resnet, resnet8, resnet20, resnet32, resnet56
from .registry import MODEL_BUILDERS, RegistryModelFactory, build_model

__all__ = [
    "LeNet5",
    "ModifiedLeNet5",
    "MLP",
    "ResNet",
    "resnet",
    "resnet8",
    "resnet20",
    "resnet32",
    "resnet56",
    "MODEL_BUILDERS",
    "RegistryModelFactory",
    "build_model",
]

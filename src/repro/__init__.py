"""Goldfish: An Efficient Federated Unlearning Framework — reproduction.

A from-scratch Python implementation of the DSN 2024 paper, including its
entire dependency stack:

* :mod:`repro.nn` — NumPy autograd deep-learning framework (PyTorch stand-in)
* :mod:`repro.data` — synthetic benchmark datasets, partitioning,
  augmentation, backdoors
* :mod:`repro.federated` — clients, server, FedAvg / adaptive aggregation,
  round-history retention, secure aggregation, compression, sampling,
  cost metering
* :mod:`repro.privacy` — clipping, Gaussian mechanism, zCDP accounting
* :mod:`repro.runtime` — pluggable execution backends (serial / thread /
  process) fanning independent training tasks across cores
* :mod:`repro.training` — configs, supervised training loop, evaluation
* :mod:`repro.unlearning` — the Goldfish framework, the B1/B2/B3 baselines,
  FedEraser / FedRecovery, full SISA, deletion-request scheduling
* :mod:`repro.eval` — JSD / L2 / t-test validity metrics, membership
  inference (threshold + shadow models), (ε̂, δ) certification
* :mod:`repro.experiments` — one runner per paper table and figure, plus
  efficiency and certification extension experiments
"""

__version__ = "1.1.0"

from . import attacks, data, eval, federated, nn, privacy, runtime, training, unlearning

__all__ = [
    "attacks",
    "data",
    "eval",
    "federated",
    "nn",
    "privacy",
    "runtime",
    "training",
    "unlearning",
    "__version__",
]

"""Update compression: top-k sparsification and uniform quantization.

Federated unlearning's efficiency story is not only compute — every extra
retraining round costs a full model upload per client (the communication
bottleneck Konečný et al. [1] motivate FL compression with). This module
provides the two standard lossy compressors plus client-side **error
feedback** so compression error does not accumulate across rounds:

* :class:`TopKCompressor` — keep the k largest-magnitude entries per
  tensor, zero the rest; transmit (indices, values).
* :class:`QuantizationCompressor` — uniform b-bit quantization per tensor
  with per-tensor (min, max) codebooks.
* :class:`ErrorFeedback` — memory of the residual each round, added back
  before the next compression (Seide et al. / Karimireddy et al.).

Compressed payload sizes are reported exactly (:class:`CompressedState`
knows its wire size in bytes) so the metering module can account for the
bandwidth saved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from .state_math import StateDict

_INDEX_BYTES = 4  # uint32 indices on the wire
_FLOAT_BYTES = 4  # float32 values on the wire


@dataclass
class CompressedState:
    """A compressed model state plus exact wire-size accounting."""

    payload: Dict[str, object]
    scheme: str
    payload_bytes: int
    original_bytes: int

    @property
    def compression_ratio(self) -> float:
        """original / compressed — higher is better."""
        if self.payload_bytes == 0:
            raise ValueError("empty payload has no meaningful ratio")
        return self.original_bytes / self.payload_bytes


class Compressor:
    """Interface: compress a state; decompress back to dense arrays."""

    def compress(self, state: StateDict) -> CompressedState:
        raise NotImplementedError

    def decompress(self, compressed: CompressedState) -> StateDict:
        raise NotImplementedError

    @staticmethod
    def _dense_bytes(state: StateDict) -> int:
        # Wire format for the uncompressed baseline is float32.
        return sum(value.size * _FLOAT_BYTES for value in state.values())


class TopKCompressor(Compressor):
    """Keep the ``fraction`` largest-magnitude entries of every tensor.

    At least one entry per tensor is always kept, so tiny tensors (biases)
    survive. The payload stores flat indices and float32 values.
    """

    def __init__(self, fraction: float) -> None:
        if not 0 < fraction <= 1:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        self.fraction = fraction

    def compress(self, state: StateDict) -> CompressedState:
        payload: Dict[str, object] = {}
        total_bytes = 0
        for key, value in state.items():
            flat = value.ravel()
            k = max(1, int(round(self.fraction * flat.size)))
            top = np.argpartition(np.abs(flat), -k)[-k:]
            top.sort()
            payload[key] = {
                "shape": value.shape,
                "indices": top.astype(np.uint32),
                "values": flat[top].astype(np.float32),
            }
            total_bytes += k * (_INDEX_BYTES + _FLOAT_BYTES)
        return CompressedState(
            payload=payload,
            scheme=f"topk({self.fraction})",
            payload_bytes=total_bytes,
            original_bytes=self._dense_bytes(state),
        )

    def decompress(self, compressed: CompressedState) -> StateDict:
        state: StateDict = {}
        for key, entry in compressed.payload.items():
            dense = np.zeros(int(np.prod(entry["shape"])), dtype=np.float64)
            dense[entry["indices"]] = entry["values"].astype(np.float64)
            state[key] = dense.reshape(entry["shape"])
        return state


class QuantizationCompressor(Compressor):
    """Uniform ``num_bits``-bit quantization with per-tensor codebooks.

    Each tensor is mapped to ``2^b`` evenly spaced levels between its min
    and max; the payload carries the packed level indices plus the two
    float32 codebook endpoints. Worst-case error per entry is half a level
    width.
    """

    def __init__(self, num_bits: int = 8) -> None:
        if not 1 <= num_bits <= 16:
            raise ValueError(f"num_bits must be in [1, 16], got {num_bits}")
        self.num_bits = num_bits

    def compress(self, state: StateDict) -> CompressedState:
        levels = (1 << self.num_bits) - 1
        payload: Dict[str, object] = {}
        total_bytes = 0
        for key, value in state.items():
            low = float(value.min())
            high = float(value.max())
            span = high - low
            if span == 0.0:
                codes = np.zeros(value.shape, dtype=np.uint16)
            else:
                codes = np.round((value - low) / span * levels).astype(np.uint16)
            payload[key] = {"low": low, "high": high, "codes": codes}
            total_bytes += int(np.ceil(value.size * self.num_bits / 8)) + 2 * _FLOAT_BYTES
        return CompressedState(
            payload=payload,
            scheme=f"quant{self.num_bits}",
            payload_bytes=total_bytes,
            original_bytes=self._dense_bytes(state),
        )

    def decompress(self, compressed: CompressedState) -> StateDict:
        levels = (1 << self.num_bits) - 1
        state: StateDict = {}
        for key, entry in compressed.payload.items():
            low, high = entry["low"], entry["high"]
            span = high - low
            if span == 0.0:
                state[key] = np.full(entry["codes"].shape, low, dtype=np.float64)
            else:
                state[key] = entry["codes"].astype(np.float64) / levels * span + low
        return state


class IdentityCompressor(Compressor):
    """No-op compressor — the dense-upload baseline for benchmarks."""

    def compress(self, state: StateDict) -> CompressedState:
        payload = {key: value.astype(np.float32) for key, value in state.items()}
        dense = self._dense_bytes(state)
        return CompressedState(
            payload=payload, scheme="identity",
            payload_bytes=dense, original_bytes=dense,
        )

    def decompress(self, compressed: CompressedState) -> StateDict:
        return {
            key: value.astype(np.float64)
            for key, value in compressed.payload.items()
        }


class ErrorFeedback:
    """Client-side residual memory around a lossy compressor.

    Each round: compress ``update + residual``; the new residual is
    whatever the compressor dropped. Guarantees the *cumulative*
    transmitted signal tracks the cumulative true signal — the standard
    fix for top-k's bias.
    """

    def __init__(self, compressor: Compressor) -> None:
        if isinstance(compressor, IdentityCompressor):
            raise ValueError("error feedback around a lossless compressor is pointless")
        self.compressor = compressor
        self._residual: StateDict = {}

    def compress(self, update: StateDict) -> Tuple[CompressedState, StateDict]:
        """Returns (wire payload, what the server will reconstruct)."""
        if self._residual:
            if set(self._residual) != set(update):
                raise KeyError("update structure changed between rounds")
            corrected = {
                key: update[key] + self._residual[key] for key in update
            }
        else:
            corrected = {key: value.copy() for key, value in update.items()}
        compressed = self.compressor.compress(corrected)
        reconstructed = self.compressor.decompress(compressed)
        self._residual = {
            key: corrected[key] - reconstructed[key] for key in corrected
        }
        return compressed, reconstructed

    @property
    def residual_norm(self) -> float:
        """L2 norm of the carried-over compression error."""
        if not self._residual:
            return 0.0
        return float(
            np.sqrt(sum(float((v ** 2).sum()) for v in self._residual.values()))
        )

    def reset(self) -> None:
        self._residual = {}

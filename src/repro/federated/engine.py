"""Event-driven federation engine: buffered async rounds without barriers.

:class:`~repro.federated.simulation.FederatedSimulation.run_round` is a
hard barrier — every sampled client must finish local training before the
server aggregates.  One slow client therefore stalls the whole round, and
anything else sharing the worker pool (a deletion-window retrain chain,
say) waits behind the federation.  This module removes the barrier:

* client tasks are submitted to the backend **as a stream** (one
  :meth:`~repro.runtime.pool.WorkerPool.submit` ticket per client, drained
  out of order as events fire), so workers never idle waiting for a round
  boundary and other work — notably
  :class:`~repro.unlearning.deletion_manager.DeletionService` retrain
  chains — interleaves with client training on the same pool;
* a FedBuff-style buffered aggregator
  (:class:`~repro.federated.aggregation.BufferedAggregator`) folds results
  into the global model whenever ``buffer_size`` updates arrive, weighting
  each update down by its staleness, instead of waiting for the cohort;
* stragglers are governed by a **simulated latency model**: a client whose
  drawn latency exceeds ``straggler_timeout`` is dropped from the round,
  reported to the sampler (so a
  :class:`~repro.federated.sampling.StragglerAwareSampler` resamples it
  next round) and accounted in the
  :class:`~repro.federated.simulation.RoundRecord`.

Determinism
-----------
Real completion order on a pool is scheduler-dependent, so the engine
never uses it.  Every dispatch draws a latency from a
:class:`LatencyModel` — a pure function of ``(seed, client_id,
dispatch_index)`` — and events are consumed in **virtual-arrival order**
(ties broken by client id).  Tasks themselves are pure (state + RNG
position in, state + RNG position out; see :mod:`repro.runtime.task`), so
the run is bit-identical for a given seed and latency model on every
backend: serial, thread, process or pool.  Parallel hardware changes only
the wall-clock.

The synchronous path is untouched: a simulation without an
:class:`AsyncRoundConfig` never constructs an engine and keeps its
historical barrier loop bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, TYPE_CHECKING

import numpy as np

from ..runtime import TransportStats, dense_nbytes, state_version
from ..runtime.task import TrainResult, TrainTask
from . import state_math
from .aggregation import BufferedAggregator, BufferedUpdate, FedAvgAggregator
from .metering import CostMeter, state_bytes
from .state_math import StateDict

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (simulation → engine)
    from .client import Client
    from .simulation import FederatedSimulation, RoundRecord


# ----------------------------------------------------------------------
# Simulated latency models
# ----------------------------------------------------------------------
class LatencyModel:
    """Interface: simulated local-training latency for one dispatch.

    Implementations must be **pure**: the same ``(client_id,
    dispatch_index)`` always yields the same latency, with no internal
    state advanced by the call.  That is what makes the event order — and
    therefore the whole async run — a deterministic function of the seed,
    independent of which worker really finishes first.
    """

    def sample(self, client_id: int, dispatch_index: int) -> float:
        raise NotImplementedError


@dataclass(frozen=True)
class ConstantLatency(LatencyModel):
    """Every dispatch takes the same simulated time (ties → client order).

    The degenerate model: with a full-cohort buffer it reproduces the
    synchronous schedule exactly, which is what the engine's fallback
    uses when no model is configured.
    """

    value: float = 1.0

    def __post_init__(self) -> None:
        if self.value <= 0:
            raise ValueError(f"latency must be positive, got {self.value}")

    def sample(self, client_id: int, dispatch_index: int) -> float:
        return self.value


@dataclass(frozen=True)
class SeededLatency(LatencyModel):
    """Deterministic pseudo-random latency with optional chronic stragglers.

    Each dispatch draws uniformly from ``[low, high)`` using a generator
    seeded by ``(seed, client_id, dispatch_index)`` — a pure function, so
    no draw depends on event order.  When ``slow_every`` is set, every
    ``slow_every``-th client id is a chronic straggler whose draws are
    multiplied by ``slow_factor`` — the knob the straggler-timeout tests
    and benchmarks use to manufacture predictable drops.
    """

    low: float = 0.5
    high: float = 1.5
    seed: int = 0
    slow_every: int = 0
    slow_factor: float = 4.0

    def __post_init__(self) -> None:
        if not 0 < self.low <= self.high:
            raise ValueError(
                f"need 0 < low <= high, got low={self.low}, high={self.high}"
            )
        if self.slow_every < 0:
            raise ValueError(f"slow_every must be >= 0, got {self.slow_every}")
        if self.slow_factor < 1.0:
            raise ValueError(f"slow_factor must be >= 1, got {self.slow_factor}")

    def sample(self, client_id: int, dispatch_index: int) -> float:
        rng = np.random.default_rng(
            np.random.SeedSequence([self.seed, int(client_id), int(dispatch_index)])
        )
        latency = float(rng.uniform(self.low, self.high))
        if self.slow_every and (int(client_id) + 1) % self.slow_every == 0:
            latency *= self.slow_factor
        return latency


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AsyncRoundConfig:
    """Knobs of the buffered-async round loop.

    buffer_size:
        Updates folded per aggregation event.  ``0`` means "everything
        currently in flight" — streaming dispatch with full-cohort folds.
    max_staleness:
        Updates computed against a global version more than this many
        folds old are discarded (their client redispatches with a fresh
        model next round).
    straggler_timeout:
        Simulated-time budget per dispatch; a client whose drawn latency
        exceeds it is dropped from the round and reported to the sampler.
        ``0`` disables the timeout.
    staleness_exponent:
        The polynomial discount of
        :class:`~repro.federated.aggregation.BufferedAggregator`.
    """

    buffer_size: int = 0
    max_staleness: int = 4
    straggler_timeout: float = 0.0
    staleness_exponent: float = 0.5

    def __post_init__(self) -> None:
        if self.buffer_size < 0:
            raise ValueError(f"buffer_size must be >= 0, got {self.buffer_size}")
        if self.max_staleness < 0:
            raise ValueError(f"max_staleness must be >= 0, got {self.max_staleness}")
        if self.straggler_timeout < 0:
            raise ValueError(
                f"straggler_timeout must be >= 0, got {self.straggler_timeout}"
            )
        if self.staleness_exponent < 0:
            raise ValueError(
                f"staleness_exponent must be >= 0, got {self.staleness_exponent}"
            )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "buffer_size": self.buffer_size,
            "max_staleness": self.max_staleness,
            "straggler_timeout": self.straggler_timeout,
            "staleness_exponent": self.staleness_exponent,
        }


@dataclass
class _VecGroup:
    """One vectorized cohort dispatch shared by its members' in-flight
    entries.

    The cohort's training runs as a batch of contiguous stack chunks
    (:meth:`~repro.federated.vectorized.VectorizedTrainTask.split` sized
    to the backend's workers, so vectorization and the pool/cluster
    compose) the first time any member's arrival needs a result; the
    per-member results are then handed out as each member's own virtual
    arrival fires.  Virtual arrival times — and therefore fold
    membership, staleness and drop behaviour — stay per-member, exactly
    as in per-client dispatch.
    """

    chunks: List[Any]  # VectorizedTrainTask stack chunks, member order
    ticket: Optional[int]  # one pool ticket covering every chunk
    results: Optional[List[TrainResult]] = None  # flattened, member order


@dataclass
class _InFlight:
    """One dispatched client task awaiting its virtual arrival."""

    client: "Client"
    task: TrainTask
    ticket: Optional[int]  # pool ticket when the backend streams, else None
    basis: StateDict  # the global state broadcast at dispatch
    version: int  # global version at dispatch (staleness basis)
    dispatched_at: float
    arrives_at: float
    round_index: int
    group: Optional[_VecGroup] = None  # vectorized-cohort membership
    member: int = 0  # this client's slice index within the group


RoundListener = Callable[["RoundRecord", StateDict, List[BufferedUpdate]], None]
"""Called after each fold with (record, global_before, applied updates)."""


class BufferedRoundEngine:
    """Drive a :class:`~repro.federated.simulation.FederatedSimulation`
    through buffered-async rounds.

    One engine "round" is one *aggregation event*: sample a cohort,
    dispatch the members not already in flight, then consume virtual
    arrivals until ``buffer_size`` acceptable updates are buffered and
    fold them into the global model.  Clients still in flight at the fold
    simply keep computing — their updates arrive in later rounds with
    staleness ≥ 1.

    Backends with ``submit``/``drain``/``poll`` (the worker pool) receive
    one ticket per client at dispatch time, so real execution overlaps
    both the virtual schedule and any other tickets on the pool; plain
    backends run each task lazily when its arrival event fires, with
    bit-identical results.
    """

    def __init__(
        self,
        sim: "FederatedSimulation",
        config: Optional[AsyncRoundConfig] = None,
        latency_model: Optional[LatencyModel] = None,
        meter: Optional[CostMeter] = None,
    ) -> None:
        self.sim = sim
        self.config = config if config is not None else AsyncRoundConfig()
        self.latency_model = (
            latency_model if latency_model is not None else ConstantLatency()
        )
        self.meter = meter
        aggregator = sim.server.aggregator
        if not isinstance(aggregator, FedAvgAggregator):
            # Silently substituting size-weighted folds for e.g. the
            # adaptive quality-weighted aggregator would attribute results
            # to a configuration that never ran — refuse instead.
            raise ValueError(
                f"async rounds support FedAvg-family aggregation only; got "
                f"{type(aggregator).__name__}.  Run this aggregator "
                "synchronously, or extend BufferedAggregator with its "
                "weighting."
            )
        self.aggregator = BufferedAggregator(
            weighting=aggregator.weighting,
            staleness_exponent=self.config.staleness_exponent,
        )
        backend = sim.backend
        self._streams = all(
            hasattr(backend, name) for name in ("submit", "drain", "poll")
        )
        self.version = 0  # completed folds
        self.now = 0.0  # virtual clock
        self._inflight: Dict[int, _InFlight] = {}
        self._dispatch_counts: Dict[int, int] = {}
        self.round_listeners: List[RoundListener] = []
        # Called with the round index before anything is dispatched —
        # the seam a co-scheduled service (e.g. the unlearning deletion
        # pipeline's per-round tick) hooks to absorb finished work and
        # submit new windows in lockstep with federation rounds.
        self.pre_round_hooks: List[Callable[[int], None]] = []
        # Cumulative accounting across the engine's lifetime.
        self.total_dropped = 0
        self.total_stale_discarded = 0
        self.total_dispatched = 0
        # Per-round transport accounting (reset by run_round; folded into
        # the simulation's cumulative totals as it goes).  On a streaming
        # (pool) backend the real pipe bytes of each client ticket are
        # claimed when the ticket resolves; on lazy backends dispatch
        # charges the dense broadcast and resolution the encoded return.
        self._round_transport = TransportStats()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def in_flight_clients(self) -> List[int]:
        return sorted(self._inflight)

    # ------------------------------------------------------------------
    # The round loop
    # ------------------------------------------------------------------
    def run_round(
        self, round_index: int, record_client_metrics: bool = False
    ) -> "RoundRecord":
        """One aggregation event: dispatch the cohort, fold the buffer."""
        from ..training.evaluation import evaluate
        from .simulation import RoundRecord

        for hook in self.pre_round_hooks:
            hook(round_index)
        self._round_transport = TransportStats()
        dropped = self._dispatch(round_index)
        if not self._inflight:
            raise RuntimeError(
                f"round {round_index}: no clients in flight — the straggler "
                f"timeout ({self.config.straggler_timeout}) drops every "
                "sampled client under the configured latency model"
            )
        global_before = self.sim.server.global_state
        applied, discarded = self._collect()
        if applied:
            new_state = self.aggregator.fold(global_before, applied)
            self.sim.server.install(new_state)
            self.version += 1
        # History retention and metering see exactly what was folded.
        self.sim.last_participants = [
            self.sim.clients[update.client_id] for update in applied
        ]
        client_accuracies: List[float] = []
        if record_client_metrics:
            for update in applied:
                _, acc = evaluate(
                    self.sim.clients[update.client_id].model,
                    self.sim.fed_data.test_set,
                )
                client_accuracies.append(acc)
        loss, accuracy = self.sim.server.evaluate_global()
        round_transport = self._round_transport
        self._round_transport = TransportStats()
        self.sim.transport.add(round_transport)
        if self.meter is not None:
            for update in applied:
                if self.sim.codec == "raw":
                    self.meter.record_upload_state(update.state)
                self.meter.record_training(
                    update.num_samples, self.sim.train_config.epochs
                )
            if self.sim.codec != "raw":
                # Mirror MeteredSimulationProxy._run_round_encoded: under
                # a codec the wire no longer carries dense states, so the
                # meter records what actually moved this round (dispatch
                # downloads included — see _dispatch, which skips its
                # dense per-dispatch charge for non-raw codecs).
                self.meter.record_download(round_transport.bytes_down)
                self.meter.record_upload(round_transport.bytes_up)
        record = RoundRecord(
            round_index=round_index,
            global_loss=loss,
            global_accuracy=accuracy,
            client_accuracies=client_accuracies,
            applied_clients=[u.client_id for u in applied],
            staleness=[u.staleness for u in applied],
            dropped_clients=dropped,
            stale_discarded=discarded,
            sim_time=self.now,
            version=self.version,
            bytes_down=round_transport.bytes_down,
            bytes_up=round_transport.bytes_up,
        )
        for listener in self.round_listeners:
            listener(record, global_before, applied)
        return record

    def _dispatch(self, round_index: int) -> List[int]:
        """Sample a cohort and stream its tasks; return straggler drops.

        With ``sim.vectorize`` set, an eligible dispatch wave (the
        members not already in flight and not timed out) becomes one
        :class:`~repro.federated.vectorized.VectorizedTrainTask` shared
        through a :class:`_VecGroup` — per-member latencies, arrival
        events and the lazy per-member dense downlink charge are
        unchanged, so the virtual schedule and the folded results are
        identical to per-client dispatch.
        """
        participants = self.sim.round_participants(round_index)
        dropped: List[int] = []
        wave: List[tuple] = []  # (client, latency) surviving the timeout
        for client in participants:
            client_id = client.client_id
            if client_id in self._inflight:
                continue  # still computing a previous dispatch
            count = self._dispatch_counts.get(client_id, 0)
            self._dispatch_counts[client_id] = count + 1
            latency = self.latency_model.sample(client_id, count)
            timeout = self.config.straggler_timeout
            if timeout and latency > timeout:
                dropped.append(client_id)
                continue
            wave.append((client, latency))
        if wave:
            broadcast_state = self.sim.server.global_state
            # One hash per dispatch wave — every member of the cohort
            # receives this same state.
            model_version = state_version(broadcast_state) if self._streams else None
            for client, _ in wave:
                client.receive_global(broadcast_state)
            tasks = [
                client.make_train_task(
                    self.sim.train_config,
                    self.sim.model_factory,
                    codec=self.sim.codec,
                    model_version=model_version,
                )
                for client, _ in wave
            ]
            group: Optional[_VecGroup] = None
            if self.sim.vectorize:
                reason = self.sim.cohort_fallback_reason(tasks)
                if reason is None:
                    from .vectorized import (
                        backend_worker_count,
                        make_vectorized_task,
                    )

                    vtask = make_vectorized_task(tasks, broadcast_state)
                    chunks = vtask.split(
                        max(
                            1,
                            min(
                                len(tasks),
                                backend_worker_count(self.sim.backend),
                            ),
                        )
                    )
                    ticket = (
                        self.sim.backend.submit(chunks) if self._streams else None
                    )
                    group = _VecGroup(chunks=chunks, ticket=ticket)
                    stats = self.sim._vectorize_stats
                    stats["rounds_vectorized"] += 1
                    chunk_tally = stats["chunks"]
                    chunk_tally[len(chunks)] = chunk_tally.get(len(chunks), 0) + 1
                else:
                    self.sim._record_fallback(reason)
            for member, ((client, latency), task) in enumerate(zip(wave, tasks)):
                ticket = None
                if group is None and self._streams:
                    ticket = self.sim.backend.submit([task])
                if ticket is None and (group is None or group.ticket is None):
                    # Lazy backends ship the dense state at dispatch —
                    # per member, vectorized or not (execution fusing
                    # must not change simulated transport); pool tickets
                    # are priced from real pipe bytes at resolution.
                    self._round_transport.bytes_down += dense_nbytes(broadcast_state)
                    self._round_transport.broadcast_full += 1
                self._inflight[client.client_id] = _InFlight(
                    client=client,
                    task=task,
                    ticket=ticket,
                    basis=broadcast_state,
                    version=self.version,
                    dispatched_at=self.now,
                    arrives_at=self.now + latency,
                    round_index=round_index,
                    group=group,
                    member=member,
                )
                self.total_dispatched += 1
                if self.meter is not None and self.sim.codec == "raw":
                    # Non-raw codecs meter the round's actual transport
                    # bytes at fold time (run_round) instead of this
                    # dense pricing.
                    self.meter.record_download(state_bytes(broadcast_state))
        if dropped:
            self.total_dropped += len(dropped)
            sampler = self.sim.sampler
            if sampler is not None:
                sampler.note_dropped(dropped, round_index)
        return dropped

    def _collect(self) -> "tuple[List[BufferedUpdate], List[int]]":
        """Consume virtual arrivals until the buffer target is reached."""
        target = self.config.buffer_size or len(self._inflight)
        applied: List[BufferedUpdate] = []
        discarded: List[int] = []
        while len(applied) < target and self._inflight:
            entry = min(
                self._inflight.values(),
                key=lambda e: (e.arrives_at, e.client.client_id),
            )
            client_id = entry.client.client_id
            del self._inflight[client_id]
            self.now = max(self.now, entry.arrives_at)
            staleness = self.version - entry.version
            if staleness > self.config.max_staleness:
                # Too old to fold: discard without absorbing, so the
                # client's RNG position is exactly as if it never trained.
                # Staleness is known before resolving, so a lazy backend
                # skips the training run entirely; a pool ticket is still
                # drained (the work already ran — and its bytes crossed
                # the wire, so they are still accounted) to keep the pool
                # clean.  A vectorized-group member behaves like a pool
                # ticket: its training ran (or will run) as part of the
                # group's single unit, so its return bytes are accounted.
                if entry.group is not None:
                    late = self._member_result(entry)
                    self._round_transport.bytes_up += late.update_nbytes
                elif entry.ticket is not None:
                    late = self.sim.backend.drain(entry.ticket)[0]
                    self._claim_ticket_stats(entry.ticket)
                    self._round_transport.bytes_up += late.update_nbytes
                discarded.append(client_id)
                self.total_stale_discarded += 1
                continue
            result = self._resolve(entry)
            entry.client.absorb_train_result(result, basis=entry.basis)
            upload = entry.client.upload()
            applied.append(
                BufferedUpdate(
                    client_id=client_id,
                    delta=state_math.subtract(upload.state, entry.basis),
                    num_samples=upload.num_samples,
                    staleness=staleness,
                    state=upload.state,
                )
            )
        return applied, discarded

    def _resolve(self, entry: _InFlight) -> TrainResult:
        """The task's result — drained from its ticket, or run lazily."""
        if entry.group is not None:
            result = self._member_result(entry)
        elif entry.ticket is not None:
            result = self.sim.backend.drain(entry.ticket)[0]
            self._claim_ticket_stats(entry.ticket)
        else:
            result = self.sim.backend.run_tasks([entry.task])[0]
        # Uplink is uniform across backends: the encoded return payload,
        # never the pipe's framing overhead (see account_model_traffic).
        self._round_transport.bytes_up += result.update_nbytes
        return result

    def _member_result(self, entry: _InFlight) -> TrainResult:
        """This member's result from its vectorized group, resolving the
        group's single training unit on first need."""
        group = entry.group
        if group.results is None:
            if group.ticket is not None:
                per_chunk = self.sim.backend.drain(group.ticket)
                self._claim_ticket_stats(group.ticket)
                group.ticket = None
            else:
                per_chunk = self.sim.backend.run_tasks(group.chunks)
            # Chunks partition the cohort contiguously in member order,
            # so flattening their per-member result lists restores the
            # original member indexing.
            group.results = [
                result for chunk_results in per_chunk for result in chunk_results
            ]
        return group.results[entry.member]

    def _claim_ticket_stats(self, ticket: int) -> None:
        """Fold one resolved pool ticket's downlink bytes into the round.

        Only the download side and the broadcast wire-form counts are
        taken from the pipe stats — uplink is charged from the result's
        encoded payload size in :meth:`_resolve`, identically to the
        non-pool backends.
        """
        pop = getattr(self.sim.backend, "pop_ticket_stats", None)
        if pop is None:
            return
        stats = pop(ticket)
        if stats is not None:
            stats.bytes_up = 0
            self._round_transport.add(stats)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def abandon_inflight(self) -> List[int]:
        """Discard every in-flight dispatch (end of a run).

        Outstanding pool tickets are drained so the shared pool carries no
        orphaned batches, but no result is absorbed — the abandoned
        clients' RNG positions and models are exactly as if the dispatch
        never happened, keeping subsequent runs deterministic.
        """
        abandoned = sorted(self._inflight)
        for client_id in abandoned:
            entry = self._inflight.pop(client_id)
            if entry.group is not None:
                # A group with a pool ticket (or already-resolved results)
                # did real work that must be drained/accounted; a lazy,
                # never-resolved group simply never runs — like a lazy
                # per-client entry.
                if entry.group.ticket is not None or entry.group.results is not None:
                    orphan = self._member_result(entry)
                    self._round_transport.bytes_up += orphan.update_nbytes
            elif entry.ticket is not None:
                orphan = self.sim.backend.drain(entry.ticket)[0]
                self._claim_ticket_stats(entry.ticket)
                self._round_transport.bytes_up += orphan.update_nbytes
        # Abandoned work still crossed the wire: charge it to the
        # simulation's cumulative totals (there is no round to carry it).
        self.sim.transport.add(self._round_transport)
        self._round_transport = TransportStats()
        return abandoned

    def provenance(self) -> Dict[str, Any]:
        """Engine facts worth stamping into experiment results."""
        return {
            "engine": "async",
            **self.config.to_dict(),
            "latency_model": type(self.latency_model).__name__,
            "codec": self.sim.codec,
            "dispatched": self.total_dispatched,
            "dropped": self.total_dropped,
            "stale_discarded": self.total_stale_discarded,
            "folds": self.version,
            "sim_time": round(self.now, 6),
        }

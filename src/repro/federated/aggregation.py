"""Server-side model aggregation strategies.

* :class:`FedAvgAggregator` — McMahan et al. [2]: local models weighted by
  local dataset size. The paper's comparison baseline in Figs. 8–9.
* :class:`AdaptiveWeightAggregator` — the paper's extension-module
  mechanism (Eq. 12–13): the server scores every uploaded model by the MSE
  of its predictions on the server-held test set and exponentially
  up-weights better models, which stabilises aggregation under client
  heterogeneity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..data.dataset import ArrayDataset
from ..nn.module import Module
from ..training.evaluation import prediction_mse
from . import state_math
from .state_math import StateDict


@dataclass
class ClientUpdate:
    """One client's upload: its model state and local dataset size."""

    state: StateDict
    num_samples: int
    client_id: int = -1


@dataclass
class BufferedUpdate:
    """One client's contribution awaiting a buffered (async) fold.

    Unlike the synchronous :class:`ClientUpdate`, a buffered update may be
    *stale*: the client trained from a global version older than the one
    the fold applies to.  It therefore carries the **delta** (uploaded
    state − the broadcast it actually started from) rather than relying on
    every participant sharing one broadcast, plus the staleness in
    aggregation events.  ``state`` keeps the raw upload so retention
    layers (:class:`~repro.federated.history.RoundHistoryStore`) can
    record the same thing they record for synchronous rounds.
    """

    client_id: int
    delta: StateDict
    num_samples: int
    staleness: int
    state: StateDict

    def as_client_update(self) -> ClientUpdate:
        return ClientUpdate(
            state=self.state, num_samples=self.num_samples, client_id=self.client_id
        )


class Aggregator:
    """Interface: combine client updates into the next global state."""

    def aggregate(self, updates: Sequence[ClientUpdate]) -> StateDict:
        raise NotImplementedError

    @staticmethod
    def _check(updates: Sequence[ClientUpdate]) -> None:
        if not updates:
            raise ValueError("no client updates to aggregate")
        state_math.check_compatible([u.state for u in updates])
        for update in updates:
            state_math.check_finite(
                update.state, context=f"client {update.client_id} upload"
            )


class FedAvgAggregator(Aggregator):
    """FedAvg averaging of client models.

    ``weighting="size"`` is McMahan et al.'s dataset-size weighting;
    ``weighting="uniform"`` is the plain mean, the common implementation
    when the server must not learn client dataset sizes. The paper's
    heterogeneity comparison (Fig. 8) contrasts its quality-based Eq. 13
    against the uniform variant — Eq. 13 itself carries no size term.
    """

    def __init__(self, weighting: str = "size") -> None:
        if weighting not in ("size", "uniform"):
            raise ValueError(f"weighting must be 'size' or 'uniform', got {weighting!r}")
        self.weighting = weighting

    def aggregate(self, updates: Sequence[ClientUpdate]) -> StateDict:
        self._check(updates)
        if self.weighting == "uniform":
            weights = [1.0 / len(updates)] * len(updates)
        else:
            total = sum(update.num_samples for update in updates)
            if total <= 0:
                raise ValueError("total sample count must be positive")
            weights = [update.num_samples / total for update in updates]
        return state_math.weighted_sum([u.state for u in updates], weights)


class BufferedAggregator:
    """FedBuff-style staleness-weighted delta folding (Nguyen et al. 2022).

    The event-driven engine (:mod:`repro.federated.engine`) does not wait
    for a full cohort; whenever ``buffer_size`` updates have arrived it
    folds them into the global model::

        ω ← ω + Σ_i λ_i Δ_i / Σ_i λ_i
        λ_i = s(staleness_i) · (n_i  if weighting == "size" else 1)
        s(t) = (1 + t)^(−staleness_exponent)

    The polynomial discount ``s(t)`` down-weights updates computed
    against old global versions; exponent 0.5 is FedBuff's default, 0
    disables staleness weighting entirely.  With a full-cohort buffer and
    every staleness 0 the fold reduces exactly to :class:`FedAvgAggregator`
    (ω + Σ p_i (ω_i − ω) = Σ p_i ω_i), so buffered aggregation is a strict
    generalisation of the synchronous path.
    """

    def __init__(
        self, weighting: str = "size", staleness_exponent: float = 0.5
    ) -> None:
        if weighting not in ("size", "uniform"):
            raise ValueError(
                f"weighting must be 'size' or 'uniform', got {weighting!r}"
            )
        if staleness_exponent < 0:
            raise ValueError(
                f"staleness_exponent must be non-negative, got {staleness_exponent}"
            )
        self.weighting = weighting
        self.staleness_exponent = staleness_exponent
        self.last_weights: Optional[np.ndarray] = None

    def staleness_weight(self, staleness: int) -> float:
        """The polynomial discount ``s(t)`` for one update."""
        if staleness < 0:
            raise ValueError(f"staleness must be non-negative, got {staleness}")
        if not self.staleness_exponent:
            return 1.0
        return float((1.0 + staleness) ** (-self.staleness_exponent))

    def fold(
        self, global_state: StateDict, updates: Sequence[BufferedUpdate]
    ) -> StateDict:
        """One buffered fold: the new global state (inputs untouched)."""
        if not updates:
            raise ValueError("no buffered updates to fold")
        state_math.check_compatible([global_state] + [u.delta for u in updates])
        for update in updates:
            state_math.check_finite(
                update.delta, context=f"client {update.client_id} buffered delta"
            )
        weights = np.array(
            [
                self.staleness_weight(u.staleness)
                * (u.num_samples if self.weighting == "size" else 1.0)
                for u in updates
            ],
            dtype=np.float64,
        )
        total = float(weights.sum())
        if total <= 0:
            raise ValueError("buffered fold weights must sum to a positive value")
        self.last_weights = weights / total
        merged_delta = state_math.weighted_sum(
            [u.delta for u in updates], (weights / total).tolist()
        )
        return state_math.add(global_state, merged_delta)


class AdaptiveWeightAggregator(Aggregator):
    """Quality-aware aggregation of the paper's extension module.

    For client ``c`` with test-set prediction MSE ``me_c`` (Eq. 12)::

        W_c  = exp(-(me_c - mean(me)) / mean(me))
        ω    = (1/θ) Σ_c W_c ω_c,   θ = Σ_c W_c          (Eq. 13)

    Lower MSE (better model) ⇒ larger weight. Weights are recomputed every
    round against the server's held-out test set.
    """

    def __init__(self, test_set: ArrayDataset, model_factory, batch_size: int = 256) -> None:
        """``model_factory`` builds a fresh model instance so uploaded
        states can be evaluated without touching the live client models."""
        if len(test_set) == 0:
            raise ValueError("adaptive aggregation needs a non-empty test set")
        self.test_set = test_set
        self.model_factory = model_factory
        self.batch_size = batch_size
        self.last_weights: Optional[np.ndarray] = None
        self.last_mse: Optional[np.ndarray] = None

    def _score(self, updates: Sequence[ClientUpdate]) -> np.ndarray:
        scorer: Module = self.model_factory()
        mses = []
        for update in updates:
            scorer.load_state_dict(update.state)
            mses.append(prediction_mse(scorer, self.test_set, self.batch_size))
        return np.array(mses)

    def compute_weights(self, updates: Sequence[ClientUpdate]) -> np.ndarray:
        """Raw (unnormalised) W_c per Eq. 12."""
        mses = self._score(updates)
        mean_mse = mses.mean()
        if mean_mse <= 0:
            # All-perfect models: fall back to uniform weights.
            weights = np.ones_like(mses)
        else:
            weights = np.exp(-(mses - mean_mse) / mean_mse)
        self.last_mse = mses
        self.last_weights = weights
        return weights

    def aggregate(self, updates: Sequence[ClientUpdate]) -> StateDict:
        self._check(updates)
        weights = self.compute_weights(updates)
        theta = float(weights.sum())
        normalised: List[float] = (weights / theta).tolist()
        return state_math.weighted_sum([u.state for u in updates], normalised)

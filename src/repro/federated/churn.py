"""Client churn: dynamic join/leave during federated training.

The paper's discussion names this the open challenge: "In the dynamic
landscape of federated unlearning, where clients may join or leave ... the
federated unlearning scheme must exhibit both flexibility and resilience."
This module implements the substrate for that direction:

* a :class:`ChurnSchedule` mapping rounds to join/leave events;
* :class:`ChurnSimulation`, a wrapper over
  :class:`~repro.federated.simulation.FederatedSimulation` that activates
  and deactivates clients per the schedule — a leaving client's departure
  is treated as an implicit deletion request for its *entire* local
  dataset (the strictest reading of the right to be forgotten).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set

from ..training.config import TrainConfig
from .simulation import FederatedSimulation, RoundRecord, SimulationHistory


@dataclass(frozen=True)
class ChurnEvent:
    """A client joining or leaving at the start of a round."""

    round_index: int
    client_id: int
    action: str  # "join" | "leave"

    def __post_init__(self) -> None:
        if self.action not in ("join", "leave"):
            raise ValueError(f"action must be 'join' or 'leave', got {self.action!r}")
        if self.round_index < 0:
            raise ValueError("round_index must be non-negative")


@dataclass
class ChurnSchedule:
    """Ordered set of churn events plus the initially active clients."""

    initial_clients: Sequence[int]
    events: List[ChurnEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.initial_clients:
            raise ValueError("at least one client must start active")
        self.initial_clients = tuple(self.initial_clients)

    def add(self, round_index: int, client_id: int, action: str) -> "ChurnSchedule":
        self.events.append(ChurnEvent(round_index, client_id, action))
        return self

    def events_at(self, round_index: int) -> List[ChurnEvent]:
        return [e for e in self.events if e.round_index == round_index]


class ChurnSimulation:
    """Drives an FL simulation under a churn schedule.

    Joining clients receive the current global model; leaving clients are
    dropped from aggregation immediately. If ``unlearn_on_leave`` is set,
    the federation reacts to a departure by reinitialising and running the
    supplied unlearning hook (e.g. a Goldfish round) so the departed
    client's contribution is actively expunged rather than just diluted.
    """

    def __init__(
        self,
        sim: FederatedSimulation,
        schedule: ChurnSchedule,
        train_config: TrainConfig = None,
    ) -> None:
        known = {client.client_id for client in sim.clients}
        referenced = set(schedule.initial_clients) | {
            e.client_id for e in schedule.events
        }
        unknown = referenced - known
        if unknown:
            raise ValueError(f"schedule references unknown clients: {sorted(unknown)}")
        self.sim = sim
        self.schedule = schedule
        self.train_config = train_config or sim.train_config
        self.active: Set[int] = set(schedule.initial_clients)
        self.departed: Set[int] = set()
        self.activity_log: Dict[int, List[int]] = {}

    def _apply_events(self, round_index: int) -> None:
        for event in self.schedule.events_at(round_index):
            if event.action == "join":
                if event.client_id in self.departed:
                    raise ValueError(
                        f"client {event.client_id} cannot rejoin after leaving "
                        "(its data was deleted)"
                    )
                self.active.add(event.client_id)
            else:
                self.active.discard(event.client_id)
                self.departed.add(event.client_id)

    def run(self, num_rounds: int) -> SimulationHistory:
        """Run ``num_rounds`` rounds honouring the schedule."""
        if num_rounds <= 0:
            raise ValueError(f"num_rounds must be positive, got {num_rounds}")
        history = SimulationHistory()
        for round_index in range(num_rounds):
            self._apply_events(round_index)
            if not self.active:
                raise RuntimeError(f"no active clients at round {round_index}")
            participants = [
                client for client in self.sim.clients
                if client.client_id in self.active
            ]
            self.activity_log[round_index] = sorted(self.active)

            self.sim.server.broadcast(participants)
            updates = []
            for client in participants:
                client.local_train(self.train_config)
                updates.append(client.upload())
            self.sim.server.aggregate(updates)
            loss, accuracy = self.sim.server.evaluate_global()
            history.rounds.append(RoundRecord(
                round_index=round_index,
                global_loss=loss,
                global_accuracy=accuracy,
            ))
        return history

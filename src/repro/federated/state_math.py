"""Arithmetic on model state dicts.

State dicts (``{parameter name: numpy array}``) are the unit of exchange in
the FL simulator, the aggregators and the shard-checkpoint arithmetic of
the paper's Eq. 8–10. These helpers implement elementwise linear algebra
over them with strict key/shape checking.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

StateDict = Dict[str, np.ndarray]


def check_compatible(states: Sequence[StateDict]) -> None:
    """Raise if the states do not share identical keys and shapes."""
    if not states:
        raise ValueError("no states given")
    reference = states[0]
    for index, state in enumerate(states[1:], start=1):
        if set(state) != set(reference):
            missing = set(reference) - set(state)
            extra = set(state) - set(reference)
            raise KeyError(
                f"state {index} key mismatch: missing={sorted(missing)}, "
                f"extra={sorted(extra)}"
            )
        for key, value in state.items():
            if value.shape != reference[key].shape:
                raise ValueError(
                    f"state {index} shape mismatch at {key!r}: "
                    f"{value.shape} vs {reference[key].shape}"
                )


def check_finite(state: StateDict, context: str = "state") -> None:
    """Raise if any parameter contains NaN or Inf.

    A client whose local training diverged uploads a poisoned-by-accident
    model; one such upload silently corrupts every future global model
    under plain averaging, so aggregation rejects it loudly instead.
    """
    for key, value in state.items():
        if not np.isfinite(value).all():
            bad = int((~np.isfinite(value)).sum())
            raise ValueError(
                f"{context} has {bad} non-finite value(s) in {key!r} "
                "(diverged local training?)"
            )


def zeros_like(state: StateDict) -> StateDict:
    """An all-zero state with the same structure."""
    return {key: np.zeros_like(value) for key, value in state.items()}


def scale(state: StateDict, factor: float) -> StateDict:
    """Multiply every array by ``factor``."""
    return {key: value * factor for key, value in state.items()}


def add(a: StateDict, b: StateDict) -> StateDict:
    """Elementwise ``a + b``."""
    check_compatible([a, b])
    return {key: a[key] + b[key] for key in a}


def subtract(a: StateDict, b: StateDict) -> StateDict:
    """Elementwise ``a - b``."""
    check_compatible([a, b])
    return {key: a[key] - b[key] for key in a}


def weighted_sum(states: Sequence[StateDict], weights: Sequence[float]) -> StateDict:
    """``sum_i weights[i] * states[i]`` (the workhorse of Eq. 8, 9, 13)."""
    states = list(states)
    weights = [float(w) for w in weights]
    if len(states) != len(weights):
        raise ValueError(f"{len(states)} states but {len(weights)} weights")
    check_compatible(states)
    result = zeros_like(states[0])
    for state, weight in zip(states, weights):
        for key in result:
            result[key] += weight * state[key]
    return result


def mean(states: Sequence[StateDict]) -> StateDict:
    """Unweighted average of states."""
    states = list(states)
    return weighted_sum(states, [1.0 / len(states)] * len(states))


def l2_distance(a: StateDict, b: StateDict) -> float:
    """Global L2 distance between two parameter vectors."""
    check_compatible([a, b])
    total = sum(float(((a[key] - b[key]) ** 2).sum()) for key in a)
    return float(np.sqrt(total))


def flatten(state: StateDict) -> np.ndarray:
    """Concatenate all arrays (sorted by key) into one flat vector."""
    return np.concatenate([state[key].ravel() for key in sorted(state)])

"""Client-vectorized execution: K homogeneous clients, one batched graph.

A federated round is embarrassingly parallel *and* embarrassingly
homogeneous: every participant runs the same architecture, the same
hyper-parameters and the same number of steps on its own data.  The
per-client path pays K python-dispatched autograd graphs per round-step;
this module stacks the cohort instead — parameters and per-step batches
gain a leading axis of size K (:mod:`repro.nn.vmap`), and a round-step
becomes *one* forward/backward/optimizer-step over the stacked arrays, a
handful of BLAS calls regardless of K.

Parity contract
---------------
The stacked path preserves every per-client semantic:

* **RNG streams** — each slice's mini-batches come from that client's own
  :class:`~repro.data.loader.DataLoader` iteration (the K loaders are
  stepped in lockstep and their batches stacked), and each slice's
  dropout masks come from that client's own generator, so every client's
  RNG advances exactly as it would standalone.
* **Numerics** — stacked elementwise ops, per-slice GEMMs and
  same-axis reductions reproduce the per-client float operations in the
  same order; slice results are **bit-identical** to the per-client path
  on every supported layer (pinned by ``tests/nn/test_vmap.py`` and the
  end-to-end round parity tests).
* **Results plumbing** — :class:`VectorizedTrainTask` returns one
  ordinary :class:`~repro.runtime.task.TrainResult` per member (same
  codec encoding, same RNG capture), so clients absorb them exactly as
  they absorb per-client results, on every backend.

Eligibility
-----------
:func:`cohort_fallback_reason` gates the fast path: the cohort must have
≥ 2 members with equal active dataset sizes (same step count), equal
sample shapes and dtypes, a stackable architecture
(:func:`repro.nn.vmap.stack_modules`), a stacked-capable loss, and no
gradient clipping (``clip_grad_norm`` computes a per-client *global*
norm the stacked optimizer cannot reproduce).  Ineligible cohorts fall
back to the per-client path with a recorded reason — never silently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence

import numpy as np

from ..data.dataset import ArrayDataset
from ..data.loader import DataLoader
from ..nn.module import Module
from ..nn.optim import StackedSGD
from ..nn.tensor import Tensor
from ..nn.vmap import (
    STACKED_LOSSES,
    StackedModel,
    VmapUnsupported,
    get_stacked_loss,
    stack_modules,
)
from ..runtime.task import (
    RngState,
    StateDict,
    TrainResult,
    TrainTask,
    capture_rng,
    encode_trained_state,
    restore_rng,
)
from ..training.config import EpochStats, TrainConfig, TrainHistory


class VectorizedCohort:
    """K (model, dataset, rng) triples trained as one stacked graph.

    Mirrors :func:`repro.training.trainer.train` step for step — dtype
    cast from each member's dataset, fresh stacked SGD, per-epoch
    reshuffle from each member's own generator, per-batch
    zero-grad/forward/backward/step — with the K graphs fused into one.
    """

    def __init__(
        self,
        models: Sequence[Module],
        datasets: Sequence[ArrayDataset],
        rngs: Sequence[np.random.Generator],
    ) -> None:
        if not (len(models) == len(datasets) == len(rngs)):
            raise ValueError("models, datasets and rngs must align")
        if not models:
            raise ValueError("empty cohort")
        for dataset in datasets:
            if len(dataset) == 0:
                raise ValueError("cannot train on an empty dataset")
        sizes = {len(dataset) for dataset in datasets}
        if len(sizes) != 1:
            raise ValueError(f"cohort datasets differ in size: {sorted(sizes)}")
        # Mirror trainer.train's cast: each member's model follows its
        # dataset's floating dtype *before* stacking (stacking requires —
        # and preserves — one cohort-wide dtype).
        for model, dataset in zip(models, datasets):
            data_dtype = np.asarray(dataset.images).dtype
            if np.issubdtype(data_dtype, np.floating) and model.dtype != data_dtype:
                model.astype(data_dtype)
        self.models = list(models)
        self.datasets = list(datasets)
        self.rngs = list(rngs)
        self.stacked: StackedModel = stack_modules(self.models)

    def train(self, config: TrainConfig) -> List[TrainHistory]:
        """Train all members for ``config.epochs``; one history per member.

        After the call the *source* models hold their trained slices
        (synced back from the stack) and each member's generator sits
        exactly where its standalone training run would have left it.
        """
        if config.grad_clip:
            raise ValueError(
                "grad_clip needs a per-client global gradient norm; "
                "vectorized cohorts must be gated on grad_clip == 0"
            )
        k = len(self.models)
        loss_fn = get_stacked_loss(config.loss)
        optimizer = StackedSGD(
            self.stacked.parameters(),
            lr=config.learning_rate,
            momentum=config.momentum,
            weight_decay=config.weight_decay,
        )
        loaders = [
            DataLoader(dataset, batch_size=config.batch_size, shuffle=True, rng=rng)
            for dataset, rng in zip(self.datasets, self.rngs)
        ]
        histories = [TrainHistory() for _ in range(k)]
        self.stacked.train()

        for epoch in range(config.epochs):
            totals = [0.0] * k
            num_batches = 0
            # zip steps the K iterators in lockstep; each draws its epoch
            # permutation from its own client's generator at first step,
            # exactly as the per-client DataLoader would.  Equal dataset
            # sizes (checked in __init__) ⇒ equal batch counts and equal
            # per-step batch shapes, so the stack is always rectangular.
            for batches in zip(*loaders):
                images = np.stack([images for images, _ in batches])
                labels = np.stack([labels for _, labels in batches])
                optimizer.zero_grad()
                loss_vec = loss_fn(self.stacked(Tensor(images)), labels)
                loss_vec.sum().backward()
                optimizer.step()
                for index in range(k):
                    totals[index] += float(loss_vec.data[index])
                num_batches += 1
            for index in range(k):
                histories[index].record(
                    EpochStats(
                        epoch=epoch,
                        mean_loss=totals[index] / num_batches,
                        num_batches=num_batches,
                    )
                )
        self.stacked.sync_back()
        return histories


@dataclass
class VectorizedTrainTask:
    """One cohort's round of local training as a single pure work unit.

    Drop-in for a batch of K :class:`~repro.runtime.task.TrainTask`\\ s:
    any backend runs it through its zero-arg :meth:`run`, and the result
    is the list of the K members' ordinary
    :class:`~repro.runtime.task.TrainResult`\\ s in member order.  The
    broadcast basis is carried **once** (``model_state``, the same field
    name the worker pool's version-addressed broadcast cache lifts), not
    K times.
    """

    task_id: Any  # tuple(member ids) — one dispatchable unit
    task_ids: List[Any]  # per-member ids, in stack order
    model_factory: Callable[[], Module]
    datasets: List[ArrayDataset]
    config: TrainConfig
    rng_states: List[RngState]
    model_state: Optional[StateDict] = None
    indices: List[Optional[np.ndarray]] = field(default_factory=list)
    codec: str = "raw"
    model_version: Optional[str] = None
    residuals: List[Optional[StateDict]] = field(default_factory=list)

    def run(self) -> List[TrainResult]:
        k = len(self.task_ids)
        models = [self.model_factory() for _ in range(k)]
        if self.model_state is not None:
            for model in models:
                model.load_state_dict(self.model_state)
        rngs = [restore_rng(state) for state in self.rng_states]
        indices = self.indices if self.indices else [None] * k
        datasets = [
            dataset if chosen is None else dataset.subset(chosen)
            for dataset, chosen in zip(self.datasets, indices)
        ]
        cohort = VectorizedCohort(models, datasets, rngs)
        histories = cohort.train(self.config)
        residuals = self.residuals if self.residuals else [None] * k
        results: List[TrainResult] = []
        for index in range(k):
            state, update, update_nbytes, new_residual = encode_trained_state(
                self.codec,
                models[index].state_dict(),
                self.model_state,
                residuals[index],
            )
            results.append(
                TrainResult(
                    task_id=self.task_ids[index],
                    state=state,
                    history=histories[index],
                    rng_state=capture_rng(rngs[index]),
                    update=update,
                    update_nbytes=update_nbytes,
                    residual=new_residual,
                )
            )
        return results


def cohort_fallback_reason(
    tasks: Sequence[TrainTask],
    arch_reason: Optional[str],
) -> Optional[str]:
    """Why this cohort cannot take the vectorized path (``None`` = it can).

    ``tasks`` are the per-client tasks the round would otherwise
    dispatch; ``arch_reason`` is the cached
    :func:`repro.nn.vmap.stackable_reason` probe of the shared model
    architecture (the caller probes the factory once, not per round).
    """
    if arch_reason is not None:
        return f"architecture not stackable: {arch_reason}"
    if len(tasks) < 2:
        return "cohort has a single participant"
    config = tasks[0].config
    if any(task.config != config for task in tasks[1:]):
        return "cohort members have different train configs"
    if config.grad_clip:
        return "grad_clip needs a per-client global gradient norm"
    if config.loss not in STACKED_LOSSES:
        return f"loss {config.loss!r} has no stacked implementation"
    if config.epochs == 0:
        return "zero-epoch rounds have nothing to vectorize"

    def active_size(task: TrainTask) -> int:
        return len(task.dataset) if task.indices is None else len(task.indices)

    sizes = {active_size(task) for task in tasks}
    if len(sizes) != 1:
        return f"cohort active dataset sizes differ: {sorted(sizes)}"
    shapes = {np.asarray(task.dataset.images).shape[1:] for task in tasks}
    if len(shapes) != 1:
        return f"cohort sample shapes differ: {sorted(map(str, shapes))}"
    dtypes = {str(np.asarray(task.dataset.images).dtype) for task in tasks}
    if len(dtypes) != 1:
        return f"cohort data dtypes differ: {sorted(dtypes)}"
    return None


def make_vectorized_task(
    tasks: Sequence[TrainTask],
    model_state: Optional[StateDict],
) -> VectorizedTrainTask:
    """Fuse an eligible cohort's per-client tasks into one vectorized task.

    ``model_state`` is the round's broadcast basis, carried once for the
    whole cohort — the caller passes the state it just broadcast (every
    member's ``task.model_state`` is a copy of it).
    """
    first = tasks[0]
    return VectorizedTrainTask(
        task_id=tuple(task.task_id for task in tasks),
        task_ids=[task.task_id for task in tasks],
        model_factory=first.model_factory,
        datasets=[task.dataset for task in tasks],
        config=first.config,
        rng_states=[task.rng_state for task in tasks],
        model_state=model_state,
        indices=[task.indices for task in tasks],
        codec=first.codec,
        model_version=first.model_version,
        residuals=[task.residual for task in tasks],
    )


__all__ = [
    "VectorizedCohort",
    "VectorizedTrainTask",
    "VmapUnsupported",
    "cohort_fallback_reason",
    "make_vectorized_task",
]

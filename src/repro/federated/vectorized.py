"""Client-vectorized execution: K homogeneous clients, one batched graph.

A federated round is embarrassingly parallel *and* embarrassingly
homogeneous: every participant runs the same architecture, the same
hyper-parameters and the same number of steps on its own data.  The
per-client path pays K python-dispatched autograd graphs per round-step;
this module stacks the cohort instead — parameters and per-step batches
gain a leading axis of size K (:mod:`repro.nn.vmap`), and a round-step
becomes *one* forward/backward/optimizer-step over the stacked arrays, a
handful of BLAS calls regardless of K.

Parity contract
---------------
The stacked path preserves every per-client semantic:

* **RNG streams** — each slice's mini-batches come from that client's own
  :class:`~repro.data.loader.DataLoader` iteration (the K loaders are
  stepped in lockstep and their batches stacked), and each slice's
  dropout masks come from that client's own generator, so every client's
  RNG advances exactly as it would standalone.
* **Numerics** — stacked elementwise ops, per-slice GEMMs and
  same-axis reductions reproduce the per-client float operations in the
  same order; slice results are **bit-identical** to the per-client path
  on every supported layer (pinned by ``tests/nn/test_vmap.py`` and the
  end-to-end round parity tests).
* **Results plumbing** — :class:`VectorizedTrainTask` returns one
  ordinary :class:`~repro.runtime.task.TrainResult` per member (same
  codec encoding, same RNG capture), so clients absorb them exactly as
  they absorb per-client results, on every backend.

Eligibility
-----------
:func:`cohort_fallback_reason` gates the fast path: the cohort must have
≥ 2 members with equal train configs, a stackable architecture
(:func:`repro.nn.vmap.stack_modules`), a stacked-capable loss, equal
sample shapes and dtypes, and equal per-member *step counts*.  Member
dataset sizes may differ as long as the step counts match: the final
batch is then ragged and runs zero-padded, with each slice computed at
its true row count (row-exact per-slice GEMMs, per-slice loss heads) —
unless the architecture contains a layer whose gradients contract over
the batch axis (``Conv2d``), which
:func:`repro.nn.vmap.ragged_support_reason` gates out.  Gradient
clipping runs as per-slice global norms
(:func:`repro.nn.optim.stacked_clip_grad_norm`), matching the
per-client ``clip_grad_norm`` slice for slice.  Ineligible cohorts fall
back to the per-client path with a recorded reason — never silently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence

import numpy as np

from ..data.dataset import ArrayDataset
from ..data.loader import DataLoader
from ..nn.losses import get_hard_loss
from ..nn.module import Module
from ..nn.optim import StackedSGD, stacked_clip_grad_norm
from ..nn.tensor import Tensor
from ..nn.vmap import (
    STACKED_LOSSES,
    StackedModel,
    VmapUnsupported,
    get_stacked_loss,
    ragged_support_reason,
    stack_modules,
)
from ..runtime.task import (
    RngState,
    StateDict,
    TrainResult,
    TrainTask,
    capture_rng,
    encode_trained_state,
    restore_rng,
)
from ..training.config import EpochStats, TrainConfig, TrainHistory


class VectorizedCohort:
    """K (model, dataset, rng) triples trained as one stacked graph.

    Mirrors :func:`repro.training.trainer.train` step for step — dtype
    cast from each member's dataset, fresh stacked SGD, per-epoch
    reshuffle from each member's own generator, per-batch
    zero-grad/forward/backward/step — with the K graphs fused into one.
    """

    def __init__(
        self,
        models: Sequence[Module],
        datasets: Sequence[ArrayDataset],
        rngs: Sequence[np.random.Generator],
    ) -> None:
        if not (len(models) == len(datasets) == len(rngs)):
            raise ValueError("models, datasets and rngs must align")
        if not models:
            raise ValueError("empty cohort")
        for dataset in datasets:
            if len(dataset) == 0:
                raise ValueError("cannot train on an empty dataset")
        # Mirror trainer.train's cast: each member's model follows its
        # dataset's floating dtype *before* stacking (stacking requires —
        # and preserves — one cohort-wide dtype).
        for model, dataset in zip(models, datasets):
            data_dtype = np.asarray(dataset.images).dtype
            if np.issubdtype(data_dtype, np.floating) and model.dtype != data_dtype:
                model.astype(data_dtype)
        self.models = list(models)
        self.datasets = list(datasets)
        self.rngs = list(rngs)
        self.stacked: StackedModel = stack_modules(self.models)

    def train(
        self,
        config: TrainConfig,
        optimizer_factory: Optional[Callable[[List], Any]] = None,
    ) -> List[TrainHistory]:
        """Train all members for ``config.epochs``; one history per member.

        After the call the *source* models hold their trained slices
        (synced back from the stack) and each member's generator sits
        exactly where its standalone training run would have left it.

        ``optimizer_factory`` (stacked parameter list → optimizer)
        substitutes a stacked protocol optimizer (e.g. B2's diagonal-FIM
        SGD) for the default :class:`~repro.nn.optim.StackedSGD`.
        """
        k = len(self.models)
        counts = {
            -(-len(dataset) // config.batch_size) for dataset in self.datasets
        }
        if len(counts) != 1:
            raise ValueError(
                f"cohort step counts differ (dataset sizes beyond "
                f"final-batch padding): {sorted(counts)}"
            )
        loss_fn = get_stacked_loss(config.loss)
        scalar_loss_fn = get_hard_loss(config.loss)
        if optimizer_factory is not None:
            optimizer = optimizer_factory(self.stacked.parameters())
        else:
            optimizer = StackedSGD(
                self.stacked.parameters(),
                lr=config.learning_rate,
                momentum=config.momentum,
                weight_decay=config.weight_decay,
            )
        loaders = [
            DataLoader(dataset, batch_size=config.batch_size, shuffle=True, rng=rng)
            for dataset, rng in zip(self.datasets, self.rngs)
        ]
        histories = [TrainHistory() for _ in range(k)]
        self.stacked.train()

        for epoch in range(config.epochs):
            totals = [0.0] * k
            num_batches = 0
            # zip steps the K iterators in lockstep; each draws its epoch
            # permutation from its own client's generator at first step,
            # exactly as the per-client DataLoader would.  Equal step
            # counts (checked above) keep the K iterators aligned; only a
            # final batch can be ragged, and it is zero-padded with the
            # padded rows masked out of each slice's loss (trailing zero
            # rows change no bits of any slice's forward or gradients).
            for batches in zip(*loaders):
                rows = [len(labels) for _, labels in batches]
                optimizer.zero_grad()
                if len(set(rows)) == 1:
                    images = np.stack([images for images, _ in batches])
                    labels = np.stack([labels for _, labels in batches])
                    loss_vec = loss_fn(self.stacked(Tensor(images)), labels)
                    loss_vec.sum().backward()
                    step_losses = [float(loss_vec.data[index]) for index in range(k)]
                else:
                    first_images = np.asarray(batches[0][0])
                    width = max(rows)
                    images = np.zeros(
                        (k, width) + first_images.shape[1:], dtype=first_images.dtype
                    )
                    for index, (member_images, _) in enumerate(batches):
                        images[index, : rows[index]] = member_images
                    self.stacked.set_row_counts(rows)
                    logits = self.stacked(Tensor(images))
                    self.stacked.set_row_counts(None)
                    # Each member's loss runs the *per-client* loss code
                    # on its extracted slice (differentiable indexing):
                    # identical nodes in identical order, so both the
                    # value and — because the sequential add below seeds
                    # every slice's subgraph with exactly 1.0 — the
                    # gradients are bit-identical to the standalone short
                    # batch.  Padded rows never enter a loss and receive
                    # zero gradient through the slice-scatter backward.
                    slice_losses = [
                        scalar_loss_fn(
                            logits[index, : rows[index]], batches[index][1]
                        )
                        for index in range(k)
                    ]
                    total = slice_losses[0]
                    for slice_loss in slice_losses[1:]:
                        total = total + slice_loss
                    total.backward()
                    step_losses = [float(slice_loss.data) for slice_loss in slice_losses]
                if config.grad_clip:
                    stacked_clip_grad_norm(optimizer.parameters, config.grad_clip)
                optimizer.step()
                for index in range(k):
                    totals[index] += step_losses[index]
                num_batches += 1
            for index in range(k):
                histories[index].record(
                    EpochStats(
                        epoch=epoch,
                        mean_loss=totals[index] / num_batches,
                        num_batches=num_batches,
                    )
                )
        self.stacked.sync_back()
        return histories


@dataclass
class VectorizedTrainTask:
    """One cohort's round of local training as a single pure work unit.

    Drop-in for a batch of K :class:`~repro.runtime.task.TrainTask`\\ s:
    any backend runs it through its zero-arg :meth:`run`, and the result
    is the list of the K members' ordinary
    :class:`~repro.runtime.task.TrainResult`\\ s in member order.  The
    broadcast basis is carried **once** (``model_state``, the same field
    name the worker pool's version-addressed broadcast cache lifts), not
    K times.
    """

    task_id: Any  # tuple(member ids) — one dispatchable unit
    task_ids: List[Any]  # per-member ids, in stack order
    model_factory: Callable[[], Module]
    datasets: List[ArrayDataset]
    config: TrainConfig
    rng_states: List[RngState]
    model_state: Optional[StateDict] = None
    indices: List[Optional[np.ndarray]] = field(default_factory=list)
    codec: str = "raw"
    model_version: Optional[str] = None
    residuals: List[Optional[StateDict]] = field(default_factory=list)
    # Per-member initial states for cohorts whose members do *not* share
    # a broadcast basis (e.g. SISA shards mid-chain).  Empty ⇒ every
    # member loads ``model_state`` (or trains factory-fresh when that is
    # None too).  When set, a member's own entry is also its codec basis.
    member_states: List[Optional[StateDict]] = field(default_factory=list)

    def run(self) -> List[TrainResult]:
        k = len(self.task_ids)
        models = [self.model_factory() for _ in range(k)]
        if self.member_states:
            for model, state in zip(models, self.member_states):
                if state is not None:
                    model.load_state_dict(state)
        elif self.model_state is not None:
            for model in models:
                model.load_state_dict(self.model_state)
        rngs = [restore_rng(state) for state in self.rng_states]
        indices = self.indices if self.indices else [None] * k
        datasets = [
            dataset if chosen is None else dataset.subset(chosen)
            for dataset, chosen in zip(self.datasets, indices)
        ]
        cohort = VectorizedCohort(models, datasets, rngs)
        histories = cohort.train(self.config)
        residuals = self.residuals if self.residuals else [None] * k
        results: List[TrainResult] = []
        for index in range(k):
            basis = (
                self.member_states[index] if self.member_states else self.model_state
            )
            state, update, update_nbytes, new_residual = encode_trained_state(
                self.codec,
                models[index].state_dict(),
                basis,
                residuals[index],
            )
            results.append(
                TrainResult(
                    task_id=self.task_ids[index],
                    state=state,
                    history=histories[index],
                    rng_state=capture_rng(rngs[index]),
                    update=update,
                    update_nbytes=update_nbytes,
                    residual=new_residual,
                )
            )
        return results

    def split(self, n_chunks: int) -> List["VectorizedTrainTask"]:
        """Deterministic contiguous partition of the stack into sub-stacks.

        Each chunk is a self-contained :class:`VectorizedTrainTask` over a
        contiguous member range — its members' datasets, RNG streams and
        residuals ride along; the broadcast basis is shared by reference
        (the pool's version-addressed cache dedupes it per worker).
        Stacking is bit-exact per slice, so the concatenation of the
        chunks' results equals the unsplit run member for member.
        ``n_chunks`` is clamped to ``[1, K]``; ``split(1)`` is ``[self]``.
        """
        k = len(self.task_ids)
        n_chunks = max(1, min(int(n_chunks), k))
        if n_chunks == 1:
            return [self]
        chunks: List["VectorizedTrainTask"] = []
        for part in np.array_split(np.arange(k), n_chunks):
            lo, hi = int(part[0]), int(part[-1]) + 1
            chunks.append(
                VectorizedTrainTask(
                    task_id=tuple(self.task_ids[lo:hi]),
                    task_ids=self.task_ids[lo:hi],
                    model_factory=self.model_factory,
                    datasets=self.datasets[lo:hi],
                    config=self.config,
                    rng_states=self.rng_states[lo:hi],
                    model_state=self.model_state,
                    indices=self.indices[lo:hi] if self.indices else [],
                    codec=self.codec,
                    model_version=self.model_version,
                    residuals=self.residuals[lo:hi] if self.residuals else [],
                    member_states=(
                        self.member_states[lo:hi] if self.member_states else []
                    ),
                )
            )
        return chunks


def cohort_fallback_reason(
    tasks: Sequence[TrainTask],
    arch_reason: Optional[str],
    ragged_reason: Optional[str] = None,
) -> Optional[str]:
    """Why this cohort cannot take the vectorized path (``None`` = it can).

    ``tasks`` are the per-client tasks the round would otherwise
    dispatch; ``arch_reason`` is the cached
    :func:`repro.nn.vmap.stackable_reason` probe of the shared model
    architecture (the caller probes the factory once, not per round).
    ``ragged_reason`` is the cached
    :func:`repro.nn.vmap.ragged_support_reason` probe — consulted only
    when member sizes differ, i.e. when zero-padded (ragged) final
    batches would actually occur.
    """
    if arch_reason is not None:
        return f"architecture not stackable: {arch_reason}"
    if len(tasks) < 2:
        return "cohort has a single participant"
    config = tasks[0].config
    if any(task.config != config for task in tasks[1:]):
        return "cohort members have different train configs"
    if config.loss not in STACKED_LOSSES:
        return f"loss {config.loss!r} has no stacked implementation"
    if config.epochs == 0:
        return "zero-epoch rounds have nothing to vectorize"

    def active_size(task: TrainTask) -> int:
        return len(task.dataset) if task.indices is None else len(task.indices)

    sizes = [active_size(task) for task in tasks]
    if min(sizes) == 0:
        return "cohort member has an empty active dataset"
    # Unequal sizes are fine as long as the K loaders stay in lockstep —
    # i.e. equal step counts.  Only the final batch can then be ragged,
    # which the stacked path zero-pads with the rows masked out of the
    # loss (bit-exact).
    counts = {-(-size // config.batch_size) for size in sizes}
    if len(counts) != 1:
        return (
            f"cohort active dataset sizes differ beyond final-batch "
            f"padding (step counts {sorted(counts)})"
        )
    if len(set(sizes)) != 1 and ragged_reason is not None:
        return f"ragged cohort (unequal sizes): {ragged_reason}"
    shapes = {np.asarray(task.dataset.images).shape[1:] for task in tasks}
    if len(shapes) != 1:
        return f"cohort sample shapes differ: {sorted(map(str, shapes))}"
    dtypes = {str(np.asarray(task.dataset.images).dtype) for task in tasks}
    if len(dtypes) != 1:
        return f"cohort data dtypes differ: {sorted(dtypes)}"
    return None


_RAGGED_REASONS: dict = {}


def ragged_probe(model_factory: Callable[[], Module]) -> Optional[str]:
    """Cached :func:`~repro.nn.vmap.ragged_support_reason` per factory.

    Architecture is a property of the factory, so one probe model per
    distinct factory suffices (mirrors the simulation's stackability
    cache; keying by the factory object itself keeps it alive, so ids
    are never recycled).
    """
    if model_factory not in _RAGGED_REASONS:
        _RAGGED_REASONS[model_factory] = ragged_support_reason(model_factory())
    return _RAGGED_REASONS[model_factory]


def make_vectorized_task(
    tasks: Sequence[TrainTask],
    model_state: Optional[StateDict],
) -> VectorizedTrainTask:
    """Fuse an eligible cohort's per-client tasks into one vectorized task.

    ``model_state`` is the round's broadcast basis, carried once for the
    whole cohort — the caller passes the state it just broadcast (every
    member's ``task.model_state`` is a copy of it).
    """
    first = tasks[0]
    return VectorizedTrainTask(
        task_id=tuple(task.task_id for task in tasks),
        task_ids=[task.task_id for task in tasks],
        model_factory=first.model_factory,
        datasets=[task.dataset for task in tasks],
        config=first.config,
        rng_states=[task.rng_state for task in tasks],
        model_state=model_state,
        indices=[task.indices for task in tasks],
        codec=first.codec,
        model_version=first.model_version,
        residuals=[task.residual for task in tasks],
    )


# ----------------------------------------------------------------------
# Cohort planning: group → gate → fuse → stack-chunk across workers
# ----------------------------------------------------------------------
def backend_worker_count(backend) -> int:
    """The backend's genuine parallelism (1 for serial-equivalent)."""
    probe = getattr(backend, "worker_count", None)
    return int(probe()) if callable(probe) else 1


def _states_equal(a: StateDict, b: StateDict) -> bool:
    if a.keys() != b.keys():
        return False
    return all(
        a[key].dtype == b[key].dtype and np.array_equal(a[key], b[key]) for key in a
    )


class TrainTaskFuser:
    """Fuses stock :class:`~repro.runtime.task.TrainTask` cohorts."""

    kind = "train"

    def matches(self, task: Any) -> bool:
        return type(task) is TrainTask

    def model_factory(self, task: TrainTask) -> Callable[[], Module]:
        return task.model_factory

    def group_key(self, task: TrainTask) -> Any:
        return (task.codec, task.model_version)

    def fallback_reason(
        self, tasks: Sequence[TrainTask], arch_reason: Optional[str]
    ) -> Optional[str]:
        return cohort_fallback_reason(
            tasks, arch_reason, ragged_probe(tasks[0].model_factory)
        )

    def fuse(
        self,
        tasks: Sequence[TrainTask],
        shared_basis: Optional[StateDict] = None,
    ) -> VectorizedTrainTask:
        if shared_basis is not None:
            return make_vectorized_task(tasks, shared_basis)
        states = [task.model_state for task in tasks]
        first = states[0]
        if all(state is None for state in states):
            return make_vectorized_task(tasks, None)
        if all(state is first for state in states) or (
            all(state is not None for state in states)
            and tasks[0].model_version is not None
            and all(task.model_version == tasks[0].model_version for task in tasks)
        ):
            return make_vectorized_task(tasks, first)
        if all(state is not None for state in states) and all(
            _states_equal(state, first) for state in states[1:]
        ):
            # Post-broadcast cohorts carry equal-valued copies; load (and
            # encode against) the first — bit-identical to per-member.
            return make_vectorized_task(tasks, first)
        vtask = make_vectorized_task(tasks, None)
        vtask.member_states = list(states)
        return vtask


_FUSERS: List[Any] = [TrainTaskFuser()]


def register_fuser(fuser: Any) -> None:
    """Add a protocol task fuser (checked before the stock train fuser)."""
    _FUSERS.insert(0, fuser)


def find_fuser(task: Any) -> Optional[Any]:
    for fuser in _FUSERS:
        if fuser.matches(task):
            return fuser
    return None


@dataclass
class CohortPlan:
    """One task batch's vectorized dispatch layout.

    ``units`` are the dispatchable work items (stack chunks and unfused
    singles) in submission order; ``slots[i]`` maps original task ``i``
    to ``(unit_index, member_index_or_None)`` for reassembly.
    """

    units: List[Any] = field(default_factory=list)
    slots: List[Any] = field(default_factory=list)
    fused_groups: int = 0
    fused_members: int = 0
    chunk_counts: List[int] = field(default_factory=list)
    fallback_reasons: List[str] = field(default_factory=list)


def plan_cohort(
    tasks: Sequence[Any],
    arch_probe: Callable[[Callable[[], Module]], Optional[str]],
    workers: int,
    shared_basis: Optional[StateDict] = None,
) -> CohortPlan:
    """Group a task batch into fusable cohorts and stack-chunk each one.

    Tasks of the same kind and group key form a cohort; eligible cohorts
    (per their fuser's gate) fuse into one stacked unit split into
    ``min(members, workers)`` contiguous chunks, so vectorization and
    multi-worker backends compose.  Everything else dispatches as the
    original per-member task, with the distinct reasons recorded.
    ``arch_probe`` maps a model factory to its cached
    :func:`~repro.nn.vmap.stackable_reason` (None = stackable).
    """
    tasks = list(tasks)
    plan = CohortPlan(slots=[None] * len(tasks))
    groups: dict = {}
    order: List[Any] = []
    for index, task in enumerate(tasks):
        fuser = find_fuser(task)
        if fuser is None:
            reason = (
                f"no vectorized implementation for {type(task).__name__}"
            )
            if reason not in plan.fallback_reasons:
                plan.fallback_reasons.append(reason)
            continue
        key = (fuser.kind, fuser.group_key(task))
        if key not in groups:
            groups[key] = (fuser, [])
            order.append(key)
        groups[key][1].append(index)
    for key in order:
        fuser, indices = groups[key]
        group_tasks = [tasks[i] for i in indices]
        if len(group_tasks) < 2:
            reason: Optional[str] = "cohort has a single participant"
        else:
            reason = fuser.fallback_reason(
                group_tasks, arch_probe(fuser.model_factory(group_tasks[0]))
            )
        if reason is not None:
            if reason not in plan.fallback_reasons:
                plan.fallback_reasons.append(reason)
            continue
        fused = fuser.fuse(group_tasks, shared_basis)
        chunks = fused.split(max(1, min(len(group_tasks), workers)))
        plan.fused_groups += 1
        plan.fused_members += len(group_tasks)
        plan.chunk_counts.append(len(chunks))
        member = 0
        for chunk in chunks:
            unit_index = len(plan.units)
            plan.units.append(chunk)
            for offset in range(len(chunk.task_ids)):
                plan.slots[indices[member]] = (unit_index, offset)
                member += 1
    for index, task in enumerate(tasks):
        if plan.slots[index] is None:
            plan.slots[index] = (len(plan.units), None)
            plan.units.append(task)
    return plan


def scatter_results(plan: CohortPlan, unit_results: Sequence[Any]) -> List[Any]:
    """Reassemble per-task results in original task order."""
    out: List[Any] = []
    for unit_index, member in plan.slots:
        result = unit_results[unit_index]
        out.append(result if member is None else result[member])
    return out


__all__ = [
    "CohortPlan",
    "TrainTaskFuser",
    "VectorizedCohort",
    "VectorizedTrainTask",
    "VmapUnsupported",
    "backend_worker_count",
    "cohort_fallback_reason",
    "find_fuser",
    "make_vectorized_task",
    "plan_cohort",
    "ragged_probe",
    "register_fuser",
    "scatter_results",
]

"""Federated-learning server: holds the global model and aggregates."""

from __future__ import annotations

from typing import Optional, Sequence

from ..data.dataset import ArrayDataset
from ..nn.module import Module
from ..training.evaluation import evaluate
from .aggregation import Aggregator, ClientUpdate
from .state_math import StateDict


class Server:
    """Central coordinator: broadcast, aggregate, evaluate."""

    def __init__(
        self,
        model: Module,
        aggregator: Aggregator,
        test_set: Optional[ArrayDataset] = None,
    ) -> None:
        self.model = model
        self.aggregator = aggregator
        self.test_set = test_set
        self._initial_state: StateDict = model.state_dict()

    @property
    def global_state(self) -> StateDict:
        """The current global parameters (copied)."""
        return self.model.state_dict()

    @property
    def initial_state(self) -> StateDict:
        """ω^0 — the state the federation started from.

        Algorithm 1 reinitialises all clients from ω^0 when a deletion
        request arrives, so the server must remember it.
        """
        return {key: value.copy() for key, value in self._initial_state.items()}

    def broadcast(self, clients: Sequence) -> None:
        """Send the global model to every client."""
        state = self.global_state
        for client in clients:
            client.receive_global(state)

    def aggregate(self, updates: Sequence[ClientUpdate]) -> StateDict:
        """Combine client updates and install the result as the new global."""
        new_state = self.aggregator.aggregate(updates)
        self.model.load_state_dict(new_state)
        return new_state

    def install(self, new_state: StateDict) -> StateDict:
        """Install an externally-computed global state.

        The event-driven engine's buffered folds (staleness-weighted delta
        sums over partial cohorts — see
        :class:`~repro.federated.aggregation.BufferedAggregator`) arrive
        here: the fold happens engine-side because it needs per-update
        dispatch bases the server never saw.
        """
        self.model.load_state_dict(new_state)
        return new_state

    def reinitialize(self) -> None:
        """Reset the global model to ω^0 (deletion-request handling)."""
        self.model.load_state_dict(self.initial_state)

    def evaluate_global(self):
        """(loss, accuracy) of the global model on the server test set."""
        if self.test_set is None:
            raise ValueError("server has no test set")
        return evaluate(self.model, self.test_set)

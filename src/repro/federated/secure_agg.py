"""Pairwise-masking secure aggregation.

The paper's threat model forbids the server from seeing per-client
gradients ("a malicious central server can exploit clients' local
gradients to reconstruct private training samples", citing Zhu et al. [19]
and Huang et al. [20]). Secure aggregation (Bonawitz et al., CCS 2017) is
the standard countermeasure: each pair of clients ``(u, v)`` derives a
shared mask from a common seed; ``u`` adds it, ``v`` subtracts it, so the
masks cancel **exactly in the unweighted sum** and the server learns only
the aggregate.

Because cancellation only holds for the plain sum, size-weighted FedAvg is
realised the standard way: each client pre-scales its state by its sample
count before masking, the server sums the masked uploads (masks vanish)
and divides by the total sample count it learns as plaintext metadata.

This module implements the single-round protocol faithfully at the
arithmetic level (float masks instead of finite-field arithmetic — the
cancellation is exact because both sides generate bit-identical streams
from the same seed):

* pairwise seeds via a deterministic key-agreement stand-in
  (:func:`pairwise_seed` — order-independent hash of the two ids + round);
* per-client masked uploads (:meth:`SecureAggregationRound.masked_update`);
* dropout recovery: if a client drops before submitting, the surviving
  clients reveal their pairwise seeds with the dropped one and the server
  subtracts the orphaned masks
  (:meth:`SecureAggregationRound.aggregate_with_dropouts`).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Sequence, Set

import numpy as np

from . import state_math
from .state_math import StateDict


def pairwise_seed(client_a: int, client_b: int, round_index: int, salt: int = 0) -> int:
    """Deterministic shared seed for a client pair in one round.

    Symmetric in the two ids (both sides derive the same value), distinct
    across rounds and salts. Stands in for a Diffie–Hellman key agreement;
    the protocol logic above it is unchanged by the substitution.
    """
    if client_a == client_b:
        raise ValueError("a client does not share a mask with itself")
    low, high = sorted((client_a, client_b))
    payload = f"{low}:{high}:{round_index}:{salt}".encode()
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big")


def _mask_for(seed: int, reference: StateDict, scale: float) -> StateDict:
    rng = np.random.default_rng(seed)
    return {
        key: rng.normal(0.0, scale, size=value.shape)
        for key, value in reference.items()
    }


@dataclass
class MaskedUpdate:
    """One client's masked upload plus its plaintext sample count."""

    client_id: int
    masked_state: StateDict  # num_samples · true state + net mask
    num_samples: int


class SecureAggregationRound:
    """One round of pairwise-masked aggregation among known participants.

    Parameters
    ----------
    participant_ids:
        Clients expected this round. Masks are set up pairwise among them.
    round_index:
        Freshness input to the seed derivation (masks never repeat).
    mask_scale:
        Standard deviation of the Gaussian masks. Large enough to hide the
        update, irrelevant to correctness (they cancel exactly).
    """

    def __init__(
        self,
        participant_ids: Sequence[int],
        round_index: int,
        mask_scale: float = 10.0,
        salt: int = 0,
    ) -> None:
        ids = list(participant_ids)
        if len(ids) != len(set(ids)):
            raise ValueError("participant ids must be unique")
        if len(ids) < 2:
            raise ValueError("secure aggregation needs at least 2 participants")
        if mask_scale <= 0:
            raise ValueError(f"mask_scale must be positive, got {mask_scale}")
        self.participant_ids: List[int] = sorted(ids)
        self.round_index = round_index
        self.mask_scale = mask_scale
        self.salt = salt
        self._received: Dict[int, MaskedUpdate] = {}

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------
    def net_mask(self, client_id: int, reference: StateDict) -> StateDict:
        """The sum of signed pairwise masks client ``client_id`` applies.

        For each peer ``p``: add the shared mask if ``client_id < p``,
        subtract it otherwise — the usual antisymmetric convention that
        makes the total cancel.
        """
        if client_id not in self.participant_ids:
            raise KeyError(f"client {client_id} is not a participant")
        total = state_math.zeros_like(reference)
        for peer in self.participant_ids:
            if peer == client_id:
                continue
            seed = pairwise_seed(client_id, peer, self.round_index, self.salt)
            mask = _mask_for(seed, reference, self.mask_scale)
            sign = 1.0 if client_id < peer else -1.0
            total = state_math.add(total, state_math.scale(mask, sign))
        return total

    def masked_update(
        self, client_id: int, state: StateDict, num_samples: int
    ) -> MaskedUpdate:
        """What the client sends: size-scaled state plus its net mask."""
        if num_samples <= 0:
            raise ValueError(f"num_samples must be positive, got {num_samples}")
        scaled = state_math.scale(state, float(num_samples))
        masked = state_math.add(scaled, self.net_mask(client_id, state))
        return MaskedUpdate(
            client_id=client_id, masked_state=masked, num_samples=num_samples
        )

    # ------------------------------------------------------------------
    # Server side
    # ------------------------------------------------------------------
    def receive(self, update: MaskedUpdate) -> None:
        if update.client_id not in self.participant_ids:
            raise KeyError(f"client {update.client_id} is not a participant")
        if update.client_id in self._received:
            raise ValueError(f"client {update.client_id} already submitted")
        self._received[update.client_id] = update

    @property
    def received_ids(self) -> List[int]:
        return sorted(self._received)

    @property
    def missing_ids(self) -> List[int]:
        return [c for c in self.participant_ids if c not in self._received]

    def aggregate(self) -> StateDict:
        """Size-weighted FedAvg of the true states, from masked uploads.

        Requires every participant's upload — the masks then cancel in the
        plain sum. With dropouts use :meth:`aggregate_with_dropouts`.
        """
        if self.missing_ids:
            raise RuntimeError(
                f"cannot aggregate: missing uploads from {self.missing_ids}; "
                "use aggregate_with_dropouts() for dropout recovery"
            )
        return self._sum_and_normalise(extra_masks=None)

    def aggregate_with_dropouts(self) -> StateDict:
        """Aggregate the survivors, removing orphaned masks of dropouts.

        Simulates the recovery phase of Bonawitz et al.: every survivor
        reveals its pairwise seed with each dropped client, letting the
        server subtract the mask that no longer has a cancelling
        counterpart. Exact — the recovered aggregate equals the FedAvg of
        the survivors' true states.
        """
        survivors = self.received_ids
        if len(survivors) < 2:
            raise RuntimeError("dropout recovery needs at least 2 surviving clients")
        dropped: Set[int] = set(self.missing_ids)
        if not dropped:
            return self.aggregate()
        reference = next(iter(self._received.values())).masked_state
        orphaned = state_math.zeros_like(reference)
        for survivor in survivors:
            for ghost in dropped:
                seed = pairwise_seed(survivor, ghost, self.round_index, self.salt)
                mask = _mask_for(seed, reference, self.mask_scale)
                sign = 1.0 if survivor < ghost else -1.0
                orphaned = state_math.add(orphaned, state_math.scale(mask, sign))
        return self._sum_and_normalise(extra_masks=orphaned)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _sum_and_normalise(self, extra_masks) -> StateDict:
        updates = list(self._received.values())
        total_samples = sum(u.num_samples for u in updates)
        total = state_math.zeros_like(updates[0].masked_state)
        for update in updates:
            total = state_math.add(total, update.masked_state)
        if extra_masks is not None:
            total = state_math.subtract(total, extra_masks)
        return state_math.scale(total, 1.0 / total_samples)

"""Client participation: sampling strategies and dropout injection.

Real federations never get all clients every round — devices are offline,
slow, or battery-constrained. The paper's Discussion section names exactly
this ("clients may join or leave") as the open challenge its future work
targets. This module supplies the participation layer:

* :class:`FullParticipation` — every client, every round (the paper's
  experimental setting);
* :class:`UniformSampler` — the cross-device standard: a uniform random
  subset of size k per round (McMahan et al.'s C-fraction);
* :class:`WeightedSampler` — probability proportional to dataset size
  (large holders participate more, a common systems heuristic);
* :class:`DropoutInjector` — wraps any sampler and drops each selected
  client iid with probability p *after* selection, modelling mid-round
  failures (what secure aggregation's recovery path exists for).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np


class ClientSampler:
    """Interface: choose the participant ids for one round.

    Samplers may additionally track *stragglers*: the event-driven round
    engine (:mod:`repro.federated.engine`) calls :meth:`note_dropped`
    whenever a selected client's simulated latency exceeded the round's
    straggler timeout, so the sampler can guarantee the client is
    reconsidered next round.  The base implementation only records the
    drop; :class:`StragglerAwareSampler` acts on it.
    """

    def sample(
        self, client_ids: Sequence[int], round_index: int, rng: np.random.Generator
    ) -> List[int]:
        raise NotImplementedError

    def note_dropped(self, client_ids: Sequence[int], round_index: int) -> None:
        """Record clients dropped (timed out) after selection this round."""
        log = getattr(self, "_dropped_log", None)
        if log is None:
            log = self._dropped_log = {}
        log.setdefault(round_index, []).extend(int(c) for c in client_ids)

    @property
    def dropped_log(self) -> dict:
        """{round_index: [client_ids]} of every reported straggler drop."""
        return dict(getattr(self, "_dropped_log", {}))

    @staticmethod
    def _check_ids(client_ids: Sequence[int]) -> List[int]:
        ids = list(client_ids)
        if not ids:
            raise ValueError("no clients to sample from")
        if len(ids) != len(set(ids)):
            raise ValueError("client ids must be unique")
        return ids


class FullParticipation(ClientSampler):
    """Everyone participates (the paper's C = 5/15/25 all-in setting)."""

    def sample(self, client_ids, round_index, rng) -> List[int]:
        return sorted(self._check_ids(client_ids))


class UniformSampler(ClientSampler):
    """A uniform random subset of ``num_selected`` clients per round."""

    def __init__(self, num_selected: int) -> None:
        if num_selected < 1:
            raise ValueError(f"num_selected must be >= 1, got {num_selected}")
        self.num_selected = num_selected

    def sample(self, client_ids, round_index, rng) -> List[int]:
        ids = self._check_ids(client_ids)
        if self.num_selected > len(ids):
            raise ValueError(
                f"cannot select {self.num_selected} of {len(ids)} clients"
            )
        chosen = rng.choice(ids, size=self.num_selected, replace=False)
        return sorted(int(c) for c in chosen)


class WeightedSampler(ClientSampler):
    """Sample ``num_selected`` clients with probability ∝ dataset size."""

    def __init__(self, num_selected: int, sizes: Sequence[int]) -> None:
        if num_selected < 1:
            raise ValueError(f"num_selected must be >= 1, got {num_selected}")
        sizes = [int(s) for s in sizes]
        if any(s <= 0 for s in sizes):
            raise ValueError("all dataset sizes must be positive")
        self.num_selected = num_selected
        self.sizes = sizes

    def sample(self, client_ids, round_index, rng) -> List[int]:
        ids = self._check_ids(client_ids)
        if len(ids) != len(self.sizes):
            raise ValueError(
                f"{len(ids)} clients but {len(self.sizes)} sizes configured"
            )
        if self.num_selected > len(ids):
            raise ValueError(
                f"cannot select {self.num_selected} of {len(ids)} clients"
            )
        probabilities = np.asarray(self.sizes, dtype=np.float64)
        probabilities /= probabilities.sum()
        chosen = rng.choice(
            ids, size=self.num_selected, replace=False, p=probabilities
        )
        return sorted(int(c) for c in chosen)


@dataclass
class DropoutInjector(ClientSampler):
    """Drop each selected client iid with probability ``dropout_rate``.

    Guarantees at least ``min_survivors`` clients survive (re-draws the
    dropout mask if too many fall; gives up after 100 attempts and keeps
    the best draw, so pathological rates still terminate).
    """

    base: ClientSampler
    dropout_rate: float
    min_survivors: int = 1

    def __post_init__(self) -> None:
        if not 0 <= self.dropout_rate < 1:
            raise ValueError(
                f"dropout_rate must be in [0, 1), got {self.dropout_rate}"
            )
        if self.min_survivors < 1:
            raise ValueError(
                f"min_survivors must be >= 1, got {self.min_survivors}"
            )

    def sample(self, client_ids, round_index, rng) -> List[int]:
        selected = self.base.sample(client_ids, round_index, rng)
        if self.dropout_rate == 0.0:
            return selected
        best: List[int] = []
        for _ in range(100):
            keep = rng.random(len(selected)) >= self.dropout_rate
            survivors = [c for c, kept in zip(selected, keep) if kept]
            if len(survivors) > len(best):
                best = survivors
            if len(best) >= self.min_survivors:
                break
        if len(best) < self.min_survivors:
            # All draws catastrophically bad: keep the first
            # ``min_survivors`` clients alive deterministically.
            best = selected[: self.min_survivors]
        return best


@dataclass
class StragglerAwareSampler(ClientSampler):
    """Guarantee that timed-out clients are resampled the next round.

    Wraps any base sampler.  Clients reported through :meth:`note_dropped`
    (the event-driven engine calls it for every straggler-timeout drop)
    are injected into the next round's selection ahead of the base
    sampler's own picks, so a client can be *delayed* by a slow round but
    never starved by one: its data re-enters the federation at the first
    opportunity, which is what keeps deletion-latency accounting honest
    under stragglers.
    """

    base: ClientSampler

    def __post_init__(self) -> None:
        self._retry: List[int] = []

    @property
    def pending_retries(self) -> List[int]:
        """Clients owed a slot in the next selection, oldest drop first."""
        return list(self._retry)

    def sample(self, client_ids, round_index, rng) -> List[int]:
        ids = self._check_ids(client_ids)
        chosen = self.base.sample(ids, round_index, rng)
        if not self._retry:
            return chosen
        known = set(ids)
        eligible = [c for c in self._retry if c in known]
        # The round size stays exactly what the base sampler decided:
        # retries take slots from the base picks rather than growing the
        # round, and retries beyond the round size wait for the next one.
        taken = eligible[: len(chosen)]
        taken_set = set(taken)
        # Overflow retries wait for the next round; clients no longer in
        # the federation (erased since their drop) are forgotten.
        self._retry = [c for c in eligible if c not in taken_set]
        merged = taken + [c for c in chosen if c not in taken_set]
        return merged[: len(chosen)]

    def note_dropped(self, client_ids, round_index) -> None:
        super().note_dropped(client_ids, round_index)
        seen = set(self._retry)
        for client_id in client_ids:
            client_id = int(client_id)
            if client_id not in seen:
                self._retry.append(client_id)
                seen.add(client_id)


@dataclass
class ParticipationLog:
    """Who was selected / survived per round — for experiment reports."""

    selected: List[List[int]]
    survived: List[List[int]]

    @property
    def num_rounds(self) -> int:
        return len(self.selected)

    def participation_rate(self, client_id: int) -> float:
        """Fraction of rounds the client actually contributed to."""
        if self.num_rounds == 0:
            raise ValueError("empty log")
        count = sum(1 for round_ids in self.survived if client_id in round_ids)
        return count / self.num_rounds

"""Round-based federated-learning simulation.

:class:`FederatedSimulation` wires clients, server and aggregator together
and runs synchronous FL rounds (Algorithm 1's outer loop in the
no-deletion case). The unlearning protocols in
:mod:`repro.unlearning.protocols` drive the same objects through the
deletion path.

Execution backends
------------------
Local training inside a round is embarrassingly parallel: every
participant works on its own model replica and its own data. The
simulation therefore emits one pure :class:`~repro.runtime.TrainTask` per
participant and fans them out through a pluggable
:class:`~repro.runtime.Backend` (``backend="serial"`` by default, which is
bit-identical to the historical inline loop; ``"thread"`` and
``"process"`` parallelise rounds without changing any result, because
each task carries and returns its client's exact RNG position).
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, TYPE_CHECKING

import numpy as np

from ..data.dataset import ArrayDataset, FederatedDataset
from ..nn.module import Module
from ..runtime import (
    BackendLike,
    TransportStats,
    dense_nbytes,
    get_backend,
    get_codec,
    state_version,
)
from ..training.config import TrainConfig
from ..training.evaluation import evaluate
from .aggregation import Aggregator, AdaptiveWeightAggregator, FedAvgAggregator
from .client import Client
from .sampling import ClientSampler
from .server import Server

if TYPE_CHECKING:  # pragma: no cover - circular import guard
    from .engine import AsyncRoundConfig, BufferedRoundEngine, LatencyModel


logger = logging.getLogger(__name__)


@dataclass
class RoundRecord:
    """Metrics for one completed FL round.

    The first four fields are filled by every round; the rest default to
    empty/zero on the synchronous path and are populated by the
    event-driven engine (:mod:`repro.federated.engine`): which clients'
    updates were folded (and at what staleness), which were dropped as
    stragglers or discarded as too stale, the virtual clock at the fold
    and the global version it produced.

    ``bytes_down``/``bytes_up`` are the round's model traffic on the wire
    under the active transport: broadcast bytes dispatched to
    participants (actual pipe bytes when the backend runs the
    version-addressed worker pool, dense model bytes otherwise) and the
    encoded size of every client return (uniform across backends — the
    update codec runs inside the task).
    """

    round_index: int
    global_loss: float
    global_accuracy: float
    client_accuracies: List[float] = field(default_factory=list)
    applied_clients: List[int] = field(default_factory=list)
    staleness: List[int] = field(default_factory=list)
    dropped_clients: List[int] = field(default_factory=list)
    stale_discarded: List[int] = field(default_factory=list)
    sim_time: float = 0.0
    version: int = 0
    bytes_down: int = 0
    bytes_up: int = 0


@dataclass
class SimulationHistory:
    """Per-round records of a simulation run."""

    rounds: List[RoundRecord] = field(default_factory=list)

    @property
    def accuracies(self) -> List[float]:
        return [r.global_accuracy for r in self.rounds]

    @property
    def final_accuracy(self) -> float:
        if not self.rounds:
            raise ValueError("no rounds recorded")
        return self.rounds[-1].global_accuracy

    def __len__(self) -> int:
        return len(self.rounds)


# Model-state payloads a task may carry down the wire: the stock
# TrainTask/ChainTask broadcast bases plus the protocol task shapes
# (Goldfish students/teachers, B3's competent/incompetent teachers).
_TASK_STATE_FIELDS = (
    "model_state",
    "init_state",
    "student_state",
    "teacher_state",
    "competent_state",
    "incompetent_state",
)


def _task_state_nbytes(task) -> int:
    return sum(
        dense_nbytes(state)
        for field_name in _TASK_STATE_FIELDS
        if (state := getattr(task, field_name, None)) is not None
    )


def _result_wire_nbytes(result) -> int:
    nbytes = getattr(result, "update_nbytes", None)
    if nbytes is not None:
        return nbytes
    state = getattr(result, "state", None)
    return dense_nbytes(state) if isinstance(state, dict) else 0


def account_model_traffic(backend, tasks, results) -> TransportStats:
    """One task batch's model traffic under the active transport.

    Downlink is transport-dependent by design: a pool backend reports
    the actual framed pipe bytes of the batch it just ran (broadcasts
    shipped ref/delta/full against the worker caches), while in-process
    and fork-per-call backends ship every task its dense model state(s),
    so that is what is charged.  Uplink is **uniform across backends**:
    the encoded return size where the task went through an update codec
    (the codec runs inside the task, identically everywhere) and the
    dense returned state otherwise — never the pipe's framing overhead,
    so serial and pool runs report the same per-round ``bytes_up``.
    """
    stats = getattr(backend, "last_batch_stats", None)
    batch_stats = TransportStats()
    if stats is not None:
        batch_stats.add(stats)
    else:
        batch_stats.bytes_down = sum(_task_state_nbytes(task) for task in tasks)
        batch_stats.broadcast_full = len(tasks)
    batch_stats.bytes_up = sum(_result_wire_nbytes(result) for result in results)
    return batch_stats


def make_aggregator(
    name: str,
    test_set: Optional[ArrayDataset] = None,
    model_factory: Optional[Callable[[], Module]] = None,
) -> Aggregator:
    """Build an aggregator by name.

    ``"fedavg"`` = size-weighted FedAvg, ``"fedavg_uniform"`` = plain mean,
    ``"adaptive"`` = the paper's quality-weighted extension (needs the
    server test set and a model factory for scoring uploads).
    """
    if name == "fedavg":
        return FedAvgAggregator()
    if name == "fedavg_uniform":
        return FedAvgAggregator(weighting="uniform")
    if name == "adaptive":
        if test_set is None or model_factory is None:
            raise ValueError("adaptive aggregation needs test_set and model_factory")
        return AdaptiveWeightAggregator(test_set, model_factory)
    raise ValueError(
        f"unknown aggregator {name!r}; "
        "available: ['fedavg', 'fedavg_uniform', 'adaptive']"
    )


class FederatedSimulation:
    """Synchronous FL over in-process clients.

    Parameters
    ----------
    model_factory:
        Zero-argument callable producing a fresh model. Used for the global
        model and every client replica (all share one architecture).
    fed_data:
        Client datasets plus the server-side test set.
    aggregator:
        Aggregation strategy instance.
    train_config:
        Local-training hyper-parameters applied at every client.
    seed:
        Base seed; every client derives an independent child generator, so
        runs are reproducible regardless of client count.
    backend:
        Execution backend for per-client local training — ``None``/
        ``"serial"`` (default), ``"thread"``, ``"process"``, or a
        :class:`~repro.runtime.Backend` instance. Results are identical
        across backends; only wall-clock time changes.
    codec:
        :mod:`~repro.runtime.codec` spec for client returns — ``"raw"``
        (default, the historical dense-state return, bit for bit),
        ``"delta"`` (lossless, bit-identical by construction), or the
        opt-in lossy ``"topk:<frac>"`` / ``"quant:<bits>"``
        (deterministic per seed).  Per-round byte counts land in
        :class:`RoundRecord` and cumulative totals in
        :meth:`transport_report`.
    vectorize:
        Opt-in client-vectorized execution
        (:mod:`repro.federated.vectorized`): eligible homogeneous
        cohorts — same architecture, dtype, train config and step count —
        train as **one** stacked forward/backward per round-step instead
        of K per-client graphs, with bit-identical results.  Ineligible
        cohorts (single participant, grad clipping, unstackable layers,
        heterogeneous data sizes) fall back to the per-client path; the
        reason is logged once and tallied in :meth:`vectorize_report`.
        Off by default — existing results are untouched.
    """

    def __init__(
        self,
        model_factory: Callable[[], Module],
        fed_data: FederatedDataset,
        aggregator: Aggregator,
        train_config: TrainConfig,
        seed: int = 0,
        sampler: Optional[ClientSampler] = None,
        backend: BackendLike = None,
        async_config: Optional["AsyncRoundConfig"] = None,
        latency_model: Optional["LatencyModel"] = None,
        codec: str = "raw",
        vectorize: bool = False,
    ) -> None:
        if fed_data.num_clients == 0:
            raise ValueError("no clients in federated dataset")
        self.model_factory = model_factory
        self.fed_data = fed_data
        self.train_config = train_config
        self.sampler = sampler
        self.backend = get_backend(backend)
        get_codec(codec)  # fail fast on typos, before any training
        self.codec = codec
        self.transport = TransportStats()  # cumulative model traffic
        # Opt-in vectorized client execution (repro.federated.vectorized):
        # eligible homogeneous cohorts train as one stacked graph, with
        # bit-identical results; ineligible cohorts fall back per client
        # with the reason recorded in vectorize_report() (and logged once).
        self.vectorize = vectorize
        self._vectorize_stats: Dict[str, object] = {
            "rounds_vectorized": 0,
            "rounds_fallback": 0,
            "fallback_reasons": {},
            # How many stack chunks vectorized rounds were sharded into
            # across the backend's workers: {n_chunks: round count}.
            "chunks": {},
        }
        # Lazily-probed stack_modules() verdicts, keyed by model factory
        # ("" = stackable; otherwise the reason).
        self._arch_reasons: Dict[object, str] = {}
        # Buffered-async mode is strictly opt-in: without an AsyncRoundConfig
        # no engine is ever constructed and every round runs the historical
        # synchronous barrier loop bit for bit.
        self.async_config = async_config
        self.latency_model = latency_model
        self._engine = None
        seeds = np.random.SeedSequence(seed).spawn(fed_data.num_clients + 1)
        self.clients: List[Client] = [
            Client(
                client_id=index,
                dataset=dataset,
                model=model_factory(),
                rng=np.random.default_rng(seeds[index]),
            )
            for index, dataset in enumerate(fed_data.client_datasets)
        ]
        self.server = Server(model_factory(), aggregator, test_set=fed_data.test_set)
        self.rng = np.random.default_rng(seeds[-1])
        # Who actually trained in the most recent round (== clients until a
        # round runs; history recording reads this rather than re-sampling).
        self.last_participants: List[Client] = self.clients

    def round_participants(self, round_index: int) -> List[Client]:
        """Clients taking part in this round (all, unless a sampler is set)."""
        if self.sampler is None:
            return self.clients
        chosen = self.sampler.sample(
            [client.client_id for client in self.clients], round_index, self.rng
        )
        by_id = {client.client_id: client for client in self.clients}
        return [by_id[client_id] for client_id in chosen]

    def engine(self) -> "BufferedRoundEngine":
        """The lazily-built event-driven engine (async mode only)."""
        if self.async_config is None:
            raise ValueError(
                "simulation was not configured for async rounds; pass "
                "async_config=AsyncRoundConfig(...) to the constructor"
            )
        if self._engine is None:
            from .engine import BufferedRoundEngine

            self._engine = BufferedRoundEngine(
                self, self.async_config, self.latency_model
            )
        return self._engine

    def run_round(self, round_index: int, record_client_metrics: bool = False) -> RoundRecord:
        """One round: synchronous barrier by default, buffered-async fold
        (:mod:`repro.federated.engine`) when ``async_config`` is set."""
        if self.async_config is not None:
            return self.engine().run_round(round_index, record_client_metrics)
        participants = self.round_participants(round_index)
        self.last_participants = participants
        self.server.broadcast(participants)
        # One broadcast, one hash: every participant carries the same
        # global state, so the transport's version is computed here once
        # (pool dispatch would otherwise hash each task's copy).
        model_version = self.broadcast_version()
        tasks = [
            client.make_train_task(
                self.train_config,
                self.model_factory,
                codec=self.codec,
                model_version=model_version,
            )
            for client in participants
        ]
        results, round_stats = self._run_cohort(tasks)
        updates = []
        client_accuracies: List[float] = []
        for client, result in zip(participants, results):
            client.absorb_train_result(result)
            if record_client_metrics:
                _, acc = evaluate(client.model, self.fed_data.test_set)
                client_accuracies.append(acc)
            updates.append(client.upload())
        self.server.aggregate(updates)
        loss, accuracy = self.server.evaluate_global()
        return RoundRecord(
            round_index=round_index,
            global_loss=loss,
            global_accuracy=accuracy,
            client_accuracies=client_accuracies,
            bytes_down=round_stats.bytes_down,
            bytes_up=round_stats.bytes_up,
        )

    def broadcast_version(self, backend=None) -> Optional[str]:
        """The current global state's content hash — when worth computing.

        Only the version-addressed pool transport consumes stamped
        versions; other backends get ``None`` and skip the hash.
        ``backend`` defaults to the simulation's own, but protocol loops
        that resolved their own runner pass it explicitly.
        """
        if not hasattr(backend if backend is not None else self.backend,
                       "pop_ticket_stats"):
            return None
        return state_version(self.server.global_state)

    def _run_cohort(self, tasks) -> "tuple[list, TransportStats]":
        """Run one round's task batch: vectorized when opted in and
        eligible, per-client otherwise.  Returns per-client results in
        task order either way."""
        return self.run_cohort_tasks(
            tasks, shared_basis=self.server.global_state
        )

    def run_cohort_tasks(
        self, tasks, runner=None, shared_basis=None
    ) -> "tuple[list, TransportStats]":
        """Run one task batch through the vectorized fast path when opted
        in and eligible — stack-chunked across the runner's workers so
        vectorization and multi-worker backends compose — per-task
        otherwise.  The round's transport is accounted either way (lazy
        backends charge each *member's* dense states, pool backends the
        real pipe bytes), added to the simulation totals, and returned
        with the per-task results in task order.

        The four unlearning protocols route their inner rounds through
        this (their mixed batches group per task kind: eligible cohorts
        fuse, the rest run per-task in the same batch).
        """
        runner = self.backend if runner is None else runner
        tasks = list(tasks)
        if self.vectorize and tasks:
            from .vectorized import backend_worker_count, plan_cohort, scatter_results

            plan = plan_cohort(
                tasks,
                arch_probe=self._arch_probe,
                workers=backend_worker_count(runner),
                shared_basis=shared_basis,
            )
            stats = self._vectorize_stats
            for reason in plan.fallback_reasons:
                self._record_fallback(reason, count_round=False)
            if plan.fused_groups:
                stats["rounds_vectorized"] += 1
                chunk_tally: Dict[int, int] = stats["chunks"]
                for count in plan.chunk_counts:
                    chunk_tally[count] = chunk_tally.get(count, 0) + 1
                unit_results = runner.run_tasks(plan.units)
                results = scatter_results(plan, unit_results)
                # Accounting runs against the *original* tasks: the
                # simulated federation still broadcast to every member
                # and received every member's return (lazy backends
                # charge per-member dense states — byte-identical to the
                # per-client path; a pool reports the real pipe bytes of
                # the chunked batch it just ran).
                round_stats = account_model_traffic(runner, tasks, results)
                self.transport.add(round_stats)
                return results, round_stats
            stats["rounds_fallback"] += 1
        results = runner.run_tasks(tasks)
        round_stats = account_model_traffic(runner, tasks, results)
        self.transport.add(round_stats)
        return results, round_stats

    def _arch_probe(self, model_factory) -> Optional[str]:
        """Cached :func:`~repro.nn.vmap.stackable_reason` per factory."""
        from ..nn.vmap import stackable_reason

        try:
            cached = self._arch_reasons.get(model_factory)
        except TypeError:  # unhashable factory: probe uncached
            return stackable_reason(model_factory()) or None
        if cached is None:
            cached = stackable_reason(model_factory()) or ""
            self._arch_reasons[model_factory] = cached
        return cached or None

    def cohort_fallback_reason(self, tasks) -> Optional[str]:
        """Why this task batch cannot vectorize (``None`` = eligible)."""
        from .vectorized import cohort_fallback_reason

        return cohort_fallback_reason(tasks, self._arch_probe(self.model_factory))

    def _record_fallback(self, reason: str, count_round: bool = True) -> None:
        stats = self._vectorize_stats
        reasons: Dict[str, int] = stats["fallback_reasons"]
        if reason not in reasons:
            # Once per distinct reason — a silent fallback would make the
            # vectorized benchmark numbers unreproducible.
            logger.warning(
                "vectorize=True fell back to per-client execution: %s", reason
            )
        reasons[reason] = reasons.get(reason, 0) + 1
        if count_round:
            stats["rounds_fallback"] += 1

    def vectorize_report(self) -> dict:
        """How the opt-in vectorized path behaved across this simulation:
        rounds taken vectorized, rounds fallen back, the distinct
        fallback reasons with their counts, and the stack-chunk counts
        vectorized rounds were sharded into."""
        stats = self._vectorize_stats
        return {
            "requested": self.vectorize,
            "rounds_vectorized": stats["rounds_vectorized"],
            "rounds_fallback": stats["rounds_fallback"],
            "fallback_reasons": dict(stats["fallback_reasons"]),
            "chunks": dict(stats["chunks"]),
        }

    def transport_report(self) -> dict:
        """Cumulative model traffic of this simulation (both directions),
        plus the engine's totals when running async."""
        report = {"codec": self.codec, **self.transport.as_dict()}
        return report

    def run(
        self,
        num_rounds: int,
        record_client_metrics: bool = False,
        round_callback: Optional[Callable[[RoundRecord], None]] = None,
    ) -> SimulationHistory:
        """Run ``num_rounds`` rounds, recording global metrics each round."""
        if num_rounds <= 0:
            raise ValueError(f"num_rounds must be positive, got {num_rounds}")
        history = SimulationHistory()
        for round_index in range(num_rounds):
            record = self.run_round(round_index, record_client_metrics)
            history.rounds.append(record)
            if round_callback is not None:
                round_callback(record)
        if self._engine is not None:
            # Leave no orphaned work on a (possibly shared) pool between
            # runs; abandoned clients redispatch fresh next run.
            self._engine.abandon_inflight()
        return history

    def global_model(self) -> Module:
        """A fresh model loaded with the current global parameters."""
        model = self.model_factory()
        model.load_state_dict(self.server.global_state)
        return model

"""``repro.federated`` — the federated-learning substrate.

Clients, server, aggregation strategies (FedAvg, the paper's
adaptive-weight extension, and FedBuff-style buffered staleness-weighted
folding) and the round simulator — synchronous barrier loop by default,
event-driven buffered-async engine (:mod:`.engine`) on opt-in — plus the
hardened-deployment substrates: per-round update retention for the
update-adjustment unlearning family (:mod:`.history`), pairwise-masking
secure aggregation with dropout recovery (:mod:`.secure_agg`), top-k /
quantization upload compression with error feedback (:mod:`.compression`),
client sampling, dropout injection and straggler accounting
(:mod:`.sampling`), communication/compute cost metering
(:mod:`.metering`), and client-vectorized execution — K homogeneous
clients stacked into one batched forward/backward per round-step
(:mod:`.vectorized`).
"""

from . import state_math
from .aggregation import (
    AdaptiveWeightAggregator,
    Aggregator,
    BufferedAggregator,
    BufferedUpdate,
    ClientUpdate,
    FedAvgAggregator,
)
from .churn import ChurnEvent, ChurnSchedule, ChurnSimulation
from .client import Client
from .engine import (
    AsyncRoundConfig,
    BufferedRoundEngine,
    ConstantLatency,
    LatencyModel,
    SeededLatency,
)
from .compression import (
    CompressedState,
    Compressor,
    ErrorFeedback,
    IdentityCompressor,
    QuantizationCompressor,
    TopKCompressor,
)
from .history import (
    RoundHistoryStore,
    RoundSnapshot,
    StorageReport,
    attach_history,
)
from .metering import CostMeter, CostReport, MeteredSimulationProxy, state_bytes
from .sampling import (
    ClientSampler,
    DropoutInjector,
    FullParticipation,
    ParticipationLog,
    StragglerAwareSampler,
    UniformSampler,
    WeightedSampler,
)
from .secure_agg import MaskedUpdate, SecureAggregationRound, pairwise_seed
from .server import Server
from .simulation import (
    FederatedSimulation,
    RoundRecord,
    SimulationHistory,
    make_aggregator,
)
from .vectorized import (
    VectorizedCohort,
    VectorizedTrainTask,
    cohort_fallback_reason,
    make_vectorized_task,
)

__all__ = [
    "state_math",
    "Client",
    "RoundHistoryStore",
    "RoundSnapshot",
    "StorageReport",
    "attach_history",
    "CompressedState",
    "Compressor",
    "ErrorFeedback",
    "IdentityCompressor",
    "QuantizationCompressor",
    "TopKCompressor",
    "CostMeter",
    "CostReport",
    "MeteredSimulationProxy",
    "state_bytes",
    "ClientSampler",
    "DropoutInjector",
    "FullParticipation",
    "ParticipationLog",
    "StragglerAwareSampler",
    "UniformSampler",
    "WeightedSampler",
    "AsyncRoundConfig",
    "BufferedAggregator",
    "BufferedRoundEngine",
    "BufferedUpdate",
    "ConstantLatency",
    "LatencyModel",
    "SeededLatency",
    "MaskedUpdate",
    "SecureAggregationRound",
    "pairwise_seed",
    "ChurnEvent",
    "ChurnSchedule",
    "ChurnSimulation",
    "Server",
    "ClientUpdate",
    "Aggregator",
    "FedAvgAggregator",
    "AdaptiveWeightAggregator",
    "FederatedSimulation",
    "SimulationHistory",
    "RoundRecord",
    "make_aggregator",
    "VectorizedCohort",
    "VectorizedTrainTask",
    "cohort_fallback_reason",
    "make_vectorized_task",
]

"""Server-side round history for update-adjustment unlearning.

The model-update-adjustment family of federated unlearning methods
(FedEraser, Liu et al. [24]; FedRecovery, Zhang et al. [23]) avoids full
retraining by *replaying* or *subtracting* the contributions a client made
over past rounds. That requires the server to retain per-round, per-client
model updates — exactly the "retention of additional information" cost the
paper's Related Work section attributes to this family.

:class:`RoundHistoryStore` is that retention substrate. It records, per
round, the global state the round started from and every client's uploaded
state, with an optional retention interval (FedEraser only stores every
``Δt``-th round to bound storage) and an exact storage-cost accounting so
experiments can report the memory price of update adjustment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from . import state_math
from .aggregation import ClientUpdate
from .state_math import StateDict


def _copy_state(state: StateDict) -> StateDict:
    return {key: value.copy() for key, value in state.items()}


@dataclass
class RoundSnapshot:
    """Everything the server retained about one FL round."""

    round_index: int
    global_before: StateDict
    client_states: Dict[int, StateDict]
    client_sizes: Dict[int, int]
    global_after: Optional[StateDict] = None

    @property
    def client_ids(self) -> List[int]:
        return sorted(self.client_states)

    def client_update(self, client_id: int) -> StateDict:
        """The client's *delta* for this round: uploaded − broadcast."""
        if client_id not in self.client_states:
            raise KeyError(
                f"client {client_id} did not participate in round "
                f"{self.round_index}; participants: {self.client_ids}"
            )
        return state_math.subtract(self.client_states[client_id], self.global_before)


@dataclass
class StorageReport:
    """Byte-level accounting of what the store retains."""

    num_rounds_stored: int
    num_client_states: int
    bytes_client_states: int
    bytes_global_states: int

    @property
    def total_bytes(self) -> int:
        return self.bytes_client_states + self.bytes_global_states


class RoundHistoryStore:
    """Retains per-round client uploads for later unlearning.

    Parameters
    ----------
    retention_interval:
        Store only rounds where ``round_index % retention_interval == 0``
        (FedEraser's Δt knob). 1 keeps every round.
    """

    def __init__(self, retention_interval: int = 1) -> None:
        if retention_interval < 1:
            raise ValueError(
                f"retention_interval must be >= 1, got {retention_interval}"
            )
        self.retention_interval = retention_interval
        self._snapshots: List[RoundSnapshot] = []

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_round(
        self,
        round_index: int,
        global_before: StateDict,
        updates: Sequence[ClientUpdate],
        global_after: Optional[StateDict] = None,
    ) -> bool:
        """Record one round if the retention policy keeps it.

        Returns True when the round was stored. Raises if a round with a
        smaller-or-equal index was already recorded (history must be
        strictly ordered) or if two updates share a client id.
        """
        if self._snapshots and round_index <= self._snapshots[-1].round_index:
            raise ValueError(
                f"round {round_index} recorded out of order; last stored "
                f"round is {self._snapshots[-1].round_index}"
            )
        if round_index % self.retention_interval != 0:
            return False
        if not updates:
            raise ValueError("cannot record a round with no client updates")
        client_states: Dict[int, StateDict] = {}
        client_sizes: Dict[int, int] = {}
        for update in updates:
            if update.client_id in client_states:
                raise ValueError(f"duplicate client id {update.client_id} in round")
            client_states[update.client_id] = _copy_state(update.state)
            client_sizes[update.client_id] = update.num_samples
        self._snapshots.append(
            RoundSnapshot(
                round_index=round_index,
                global_before=_copy_state(global_before),
                client_states=client_states,
                client_sizes=client_sizes,
                global_after=None if global_after is None else _copy_state(global_after),
            )
        )
        return True

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._snapshots)

    @property
    def snapshots(self) -> List[RoundSnapshot]:
        return list(self._snapshots)

    @property
    def stored_round_indices(self) -> List[int]:
        return [snapshot.round_index for snapshot in self._snapshots]

    def snapshot_at(self, round_index: int) -> RoundSnapshot:
        for snapshot in self._snapshots:
            if snapshot.round_index == round_index:
                return snapshot
        raise KeyError(
            f"round {round_index} not stored; "
            f"stored rounds: {self.stored_round_indices}"
        )

    def rounds_with_client(self, client_id: int) -> List[RoundSnapshot]:
        """Every stored round the client participated in."""
        return [s for s in self._snapshots if client_id in s.client_states]

    def storage_report(self) -> StorageReport:
        """Exact byte cost of the retained history."""
        bytes_clients = 0
        bytes_globals = 0
        num_states = 0
        for snapshot in self._snapshots:
            for state in snapshot.client_states.values():
                num_states += 1
                bytes_clients += sum(array.nbytes for array in state.values())
            bytes_globals += sum(
                array.nbytes for array in snapshot.global_before.values()
            )
            if snapshot.global_after is not None:
                bytes_globals += sum(
                    array.nbytes for array in snapshot.global_after.values()
                )
        return StorageReport(
            num_rounds_stored=len(self._snapshots),
            num_client_states=num_states,
            bytes_client_states=bytes_clients,
            bytes_global_states=bytes_globals,
        )

    def clear(self) -> None:
        """Drop all retained history (e.g. after unlearning completes)."""
        self._snapshots.clear()


class RecordingSimulationMixin:
    """Helper that wires a :class:`RoundHistoryStore` into a simulation.

    Use :func:`attach_history` instead of subclassing: it monkey-patches a
    bound ``run_round`` that records every round, keeping
    :class:`~repro.federated.simulation.FederatedSimulation` itself free of
    retention concerns (most FL deployments must *not* retain updates).
    """


def attach_history(simulation, store: RoundHistoryStore):
    """Record every future round of ``simulation`` into ``store``.

    Returns the store for chaining. The patch captures the global state
    before aggregation and every *participating* client's upload after
    local training (with a sampler, non-participants trained nothing this
    round and are not recorded).

    Works on both round paths: the synchronous barrier loop (participants
    = the sampled cohort) and the event-driven engine
    (:mod:`repro.federated.engine`), where ``last_participants`` holds
    exactly the clients whose updates were *folded* that round — dropped
    stragglers and stale-discarded updates contributed nothing to the new
    global, so retaining them would let update-adjustment unlearning
    subtract contributions that were never added.  An async round whose
    buffer came up empty (every arrival discarded as stale) aggregated
    nothing and is skipped rather than recorded as an empty round.
    """
    original_run_round = simulation.run_round

    def run_round_with_history(round_index: int, record_client_metrics: bool = False):
        global_before = simulation.server.global_state
        record = original_run_round(round_index, record_client_metrics)
        updates = [client.upload() for client in simulation.last_participants]
        if updates:
            store.record_round(
                round_index,
                global_before,
                updates,
                global_after=simulation.server.global_state,
            )
        return record

    simulation.run_round = run_round_with_history
    return store

"""Federated-learning client: local data, local model, local training."""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..data.dataset import ArrayDataset
from ..nn.module import Module
from ..runtime.task import TrainResult, TrainTask, capture_rng
from ..training.config import TrainConfig, TrainHistory
from ..training.trainer import train
from .aggregation import ClientUpdate
from .state_math import StateDict


class Client:
    """One FL participant holding a private local dataset.

    The client never ships raw data — only model states move between the
    client and the server, matching the paper's threat model (a server that
    must not see samples or per-step gradients).
    """

    def __init__(
        self,
        client_id: int,
        dataset: ArrayDataset,
        model: Module,
        rng: np.random.Generator,
    ) -> None:
        if len(dataset) == 0:
            raise ValueError(f"client {client_id} has an empty dataset")
        self.client_id = client_id
        self.dataset = dataset
        self.model = model
        self.rng = rng
        self.forget_indices: Optional[np.ndarray] = None
        # Error-feedback residual carried between rounds (``ef:*`` update
        # codecs only): what the previous round's lossy compression
        # dropped, added back before the next compression.  Client-side
        # state — it never travels to the server.
        self.update_residual: Optional[StateDict] = None

    # ------------------------------------------------------------------
    # Server interaction
    # ------------------------------------------------------------------
    def receive_global(self, state: StateDict) -> None:
        """Install the server's current global parameters."""
        self.model.load_state_dict(state)

    def upload(self) -> ClientUpdate:
        """Package the local model for aggregation."""
        return ClientUpdate(
            state=self.model.state_dict(),
            num_samples=self.active_size,
            client_id=self.client_id,
        )

    # ------------------------------------------------------------------
    # Deletion requests
    # ------------------------------------------------------------------
    def request_deletion(self, indices: np.ndarray) -> None:
        """Mark local samples (by local index) for removal — D_f^c."""
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size == 0:
            raise ValueError("deletion request with no indices")
        if indices.min() < 0 or indices.max() >= len(self.dataset):
            raise ValueError("deletion indices out of range")
        if indices.size >= len(self.dataset):
            raise ValueError("cannot delete the client's entire dataset")
        self.forget_indices = np.unique(indices)

    @property
    def has_pending_deletion(self) -> bool:
        return self.forget_indices is not None

    @property
    def forget_set(self) -> Optional[ArrayDataset]:
        """D_f^c — the data the user asked to remove."""
        if self.forget_indices is None:
            return None
        return self.dataset.subset(self.forget_indices)

    @property
    def retain_set(self) -> ArrayDataset:
        """D_r^c — the remaining data (whole dataset if nothing pending)."""
        if self.forget_indices is None:
            return self.dataset
        return self.dataset.remove(self.forget_indices)

    @property
    def retain_indices(self) -> Optional[np.ndarray]:
        """Index selection of the retain set into ``dataset`` (``None``
        when nothing is pending, i.e. everything is retained)."""
        if self.forget_indices is None:
            return None
        return self.dataset.keep_indices(self.forget_indices)

    @property
    def active_size(self) -> int:
        """``len(active_dataset)`` without materialising the subset."""
        if self.forget_indices is None:
            return len(self.dataset)
        return len(self.dataset) - len(self.forget_indices)

    @property
    def active_dataset(self) -> ArrayDataset:
        """The data the client may legally train on right now."""
        return self.retain_set

    def finalize_deletion(self) -> None:
        """Physically drop the forget set after unlearning completed.

        A shared-memory dataset stays shared: the survivors are re-housed
        in a fresh block, so later rounds keep their zero-copy fan-out
        instead of silently regressing to by-value pickling.
        """
        if self.forget_indices is None:
            return
        from ..data.dataset import SharedArrayDataset

        survivors = self.dataset.remove(self.forget_indices)
        if isinstance(self.dataset, SharedArrayDataset):
            survivors = survivors.share()
        self.dataset = survivors
        self.forget_indices = None

    # ------------------------------------------------------------------
    # Local work
    # ------------------------------------------------------------------
    def local_train(self, config: TrainConfig) -> TrainHistory:
        """Algorithm 1 ``LocalTraining``: plain SGD on the active data."""
        return train(self.model, self.active_dataset, config, self.rng)

    # ------------------------------------------------------------------
    # Runtime task emission (see repro.runtime)
    # ------------------------------------------------------------------
    def make_train_task(
        self,
        config: TrainConfig,
        model_factory: Callable[[], Module],
        codec: str = "raw",
        model_version: Optional[str] = None,
    ) -> TrainTask:
        """Package this client's next local-training run as a pure task.

        The task snapshots the client's model state and exact RNG position,
        so running it on any backend reproduces :meth:`local_train` bit for
        bit — provided :meth:`absorb_train_result` is called afterwards to
        advance this client past the work the task performed.

        While a deletion is pending, the task carries the full local
        dataset plus the retain-*indices* rather than a materialised
        retain copy: the executing worker slices out exactly D_r^c, so
        training matches :attr:`active_dataset` array-for-array, but the
        parent never pays a per-task copy (and a shared-memory dataset
        ships as a handle).

        ``codec`` selects the :mod:`~repro.runtime.codec` update codec
        the task's return travels under (``"raw"`` keeps the historical
        dense-state return, bit for bit); the task's ``model_state``
        doubles as the encode basis.  ``model_version`` may carry the
        precomputed content hash of the state this client just received
        — valid exactly because the model is untouched between
        :meth:`receive_global` and this snapshot.
        """
        return TrainTask(
            task_id=self.client_id,
            model_factory=model_factory,
            dataset=self.dataset,
            config=config,
            rng_state=capture_rng(self.rng),
            model_state=self.model.state_dict(),
            indices=self.retain_indices,
            codec=codec,
            model_version=model_version,
            residual=self.update_residual,
        )

    def absorb_train_result(
        self, result: TrainResult, basis: Optional[StateDict] = None
    ) -> TrainHistory:
        """Install a finished task's model state and advanced RNG position.

        A codec-encoded result is decoded against ``basis`` — the state
        this client received at dispatch.  When omitted, the client's own
        current model is the basis, which is correct on every standard
        path: the model is untouched between :meth:`make_train_task` and
        the absorb, so it still holds exactly what the task trained from.
        """
        if result.task_id != self.client_id:
            raise ValueError(
                f"client {self.client_id} cannot absorb result for task "
                f"{result.task_id!r}"
            )
        state = result.state
        if state is None:
            state = result.resolve_state(
                basis if basis is not None else self.model.state_dict()
            )
        self.model.load_state_dict(state)
        self.rng.bit_generator.state = result.rng_state
        if result.residual is not None:
            self.update_residual = result.residual
        return result.history

"""Communication and compute cost accounting for FL / unlearning runs.

The paper's headline claim is *efficiency* — Goldfish unlearns in fewer
epochs than retraining. This module turns that into measurable systems
quantities so the efficiency experiments can report them directly:

* **bytes** moved server→client (broadcasts) and client→server (uploads),
  from the actual state-dict sizes (or compressed wire sizes);
* **samples processed** — the substrate-independent compute proxy
  (epochs × dataset size), which is what separates Goldfish's early-
  terminated distillation from B1's full retraining;
* **wall-clock** via perf_counter segments.

:class:`CostMeter` is a plain accumulator; :func:`state_bytes` prices a
model state the way the wire would see it (float32).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional

from .state_math import StateDict

_WIRE_FLOAT_BYTES = 4


def state_bytes(state: StateDict) -> int:
    """Wire size of a dense float32 encoding of ``state``."""
    return sum(value.size * _WIRE_FLOAT_BYTES for value in state.values())


@dataclass
class CostReport:
    """Frozen snapshot of a meter, for result tables."""

    upload_bytes: int
    download_bytes: int
    samples_processed: int
    local_epochs: int
    rounds: int
    wall_clock_seconds: float

    @property
    def total_bytes(self) -> int:
        return self.upload_bytes + self.download_bytes

    def as_dict(self) -> Dict[str, float]:
        return {
            "upload_bytes": self.upload_bytes,
            "download_bytes": self.download_bytes,
            "total_bytes": self.total_bytes,
            "samples_processed": self.samples_processed,
            "local_epochs": self.local_epochs,
            "rounds": self.rounds,
            "wall_clock_seconds": self.wall_clock_seconds,
        }


class CostMeter:
    """Accumulates communication, compute and time costs of one run."""

    def __init__(self, label: str = "") -> None:
        self.label = label
        self.upload_bytes = 0
        self.download_bytes = 0
        self.samples_processed = 0
        self.local_epochs = 0
        self.rounds = 0
        self._wall_clock = 0.0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_upload(self, num_bytes: int) -> None:
        self._check_non_negative(num_bytes)
        self.upload_bytes += num_bytes

    def record_upload_state(self, state: StateDict) -> None:
        self.upload_bytes += state_bytes(state)

    def record_download(self, num_bytes: int) -> None:
        self._check_non_negative(num_bytes)
        self.download_bytes += num_bytes

    def record_broadcast(self, state: StateDict, num_clients: int) -> None:
        """A server→all-clients broadcast of the global state."""
        if num_clients < 0:
            raise ValueError(f"num_clients must be non-negative, got {num_clients}")
        self.download_bytes += state_bytes(state) * num_clients

    def record_training(self, num_samples: int, epochs: int) -> None:
        """Local training of ``epochs`` passes over ``num_samples``."""
        self._check_non_negative(num_samples)
        self._check_non_negative(epochs)
        self.samples_processed += num_samples * epochs
        self.local_epochs += epochs

    def record_round(self) -> None:
        self.rounds += 1

    @contextmanager
    def time_block(self) -> Iterator[None]:
        """Measure a wall-clock segment: ``with meter.time_block(): ...``"""
        start = time.perf_counter()
        try:
            yield
        finally:
            self._wall_clock += time.perf_counter() - start

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def wall_clock_seconds(self) -> float:
        return self._wall_clock

    def report(self) -> CostReport:
        return CostReport(
            upload_bytes=self.upload_bytes,
            download_bytes=self.download_bytes,
            samples_processed=self.samples_processed,
            local_epochs=self.local_epochs,
            rounds=self.rounds,
            wall_clock_seconds=self._wall_clock,
        )

    def merge(self, other: "CostMeter") -> None:
        """Fold another meter's totals into this one."""
        self.upload_bytes += other.upload_bytes
        self.download_bytes += other.download_bytes
        self.samples_processed += other.samples_processed
        self.local_epochs += other.local_epochs
        self.rounds += other.rounds
        self._wall_clock += other._wall_clock

    @staticmethod
    def _check_non_negative(value: int) -> None:
        if value < 0:
            raise ValueError(f"cost increments must be non-negative, got {value}")


class MeteredSimulationProxy:
    """Wraps a :class:`~repro.federated.simulation.FederatedSimulation`
    so every round's traffic and local compute land in a meter.

    Usage::

        metered = MeteredSimulationProxy(simulation)
        metered.run_round(0)
        metered.meter.report()
    """

    def __init__(self, simulation, meter: Optional[CostMeter] = None) -> None:
        self.simulation = simulation
        self.meter = meter if meter is not None else CostMeter()

    def run_round(self, round_index: int, record_client_metrics: bool = False):
        sim = self.simulation
        if getattr(sim, "async_config", None) is not None:
            return self._run_round_async(sim, round_index, record_client_metrics)
        if getattr(sim, "codec", "raw") != "raw":
            return self._run_round_encoded(sim, round_index, record_client_metrics)
        with self.meter.time_block():
            state = sim.server.global_state
            self.meter.record_broadcast(state, len(sim.clients))
            record = sim.run_round(round_index, record_client_metrics)
            for client in sim.clients:
                self.meter.record_upload_state(client.model.state_dict())
                self.meter.record_training(
                    len(client.active_dataset), sim.train_config.epochs
                )
            self.meter.record_round()
        return record

    def _run_round_encoded(self, sim, round_index: int, record_client_metrics: bool):
        """Non-raw codecs: the wire no longer carries dense states, so the
        float32 pricing above would charge traffic that never moved.  The
        simulation accounts the actual transport per round
        (:class:`~repro.federated.simulation.RoundRecord` byte fields);
        record exactly that."""
        with self.meter.time_block():
            record = sim.run_round(round_index, record_client_metrics)
            self.meter.record_download(record.bytes_down)
            self.meter.record_upload(record.bytes_up)
            for client in sim.clients:
                self.meter.record_training(
                    len(client.active_dataset), sim.train_config.epochs
                )
            self.meter.record_round()
        return record

    def _run_round_async(self, sim, round_index: int, record_client_metrics: bool):
        """Event-driven rounds meter per *event*, not per cohort.

        The synchronous accounting above (broadcast to everyone, upload
        from everyone) would overstate an async round: stragglers dropped
        before dispatch received no broadcast, clients still in flight
        uploaded nothing yet, and stale-discarded updates were uploaded
        but never folded.  The engine records the truth itself — one
        download per actual dispatch, one upload + local-training charge
        per folded update — through the meter handle installed here.
        """
        engine = sim.engine()
        engine.meter = self.meter
        with self.meter.time_block():
            record = sim.run_round(round_index, record_client_metrics)
            self.meter.record_round()
        return record

    def run(self, num_rounds: int):
        if num_rounds <= 0:
            raise ValueError(f"num_rounds must be positive, got {num_rounds}")
        records = []
        for round_index in range(num_rounds):
            records.append(self.run_round(round_index))
        return records

"""Differential-privacy primitives used by unlearning certification.

The unlearning literature the paper builds on measures forgetting with
(ε, δ)-indistinguishability between the unlearned and the retrained model
(Ginart et al. [10]; FedRecovery [23] realises it with calibrated Gaussian
noise). This package provides the standard machinery:

* :mod:`repro.privacy.dp` — L2 clipping, the Gaussian mechanism, and a
  zCDP-based privacy accountant for composing noise additions.
"""

from .dp import (
    GaussianMechanism,
    PrivacyAccountant,
    add_gaussian_noise,
    clip_state_by_l2,
    clip_vector_by_l2,
    gaussian_sigma,
    rho_to_epsilon,
    zcdp_rho,
)

__all__ = [
    "GaussianMechanism",
    "PrivacyAccountant",
    "add_gaussian_noise",
    "clip_state_by_l2",
    "clip_vector_by_l2",
    "gaussian_sigma",
    "rho_to_epsilon",
    "zcdp_rho",
]

"""Gaussian mechanism, L2 clipping and zCDP accounting.

Implements the textbook components needed for DP-style unlearning
certification:

* **Clipping** bounds the L2 sensitivity of a released vector/state.
* The **Gaussian mechanism** (Dwork & Roth) adds ``N(0, σ²)`` noise with
  ``σ = Δ₂ · sqrt(2 ln(1.25/δ)) / ε`` for (ε, δ)-DP at sensitivity Δ₂.
* **zCDP accounting** (Bun & Steinke 2016): one Gaussian release at scale
  σ and sensitivity Δ₂ costs ``ρ = Δ₂² / (2σ²)``; ρ composes additively and
  converts to (ε, δ) via ``ε = ρ + 2·sqrt(ρ · ln(1/δ))``.

These are exact formulas, not simulations — the accountant's outputs are
valid DP guarantees for the mechanisms as implemented.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

StateDict = Dict[str, np.ndarray]


# ----------------------------------------------------------------------
# Clipping (sensitivity control)
# ----------------------------------------------------------------------
def clip_vector_by_l2(vector: np.ndarray, max_norm: float) -> np.ndarray:
    """Scale ``vector`` down to L2 norm ``max_norm`` if it exceeds it."""
    if max_norm <= 0:
        raise ValueError(f"max_norm must be positive, got {max_norm}")
    norm = float(np.linalg.norm(vector))
    if norm <= max_norm or norm == 0.0:
        return vector.copy()
    return vector * (max_norm / norm)


def clip_state_by_l2(state: StateDict, max_norm: float) -> StateDict:
    """Clip a model state treated as one concatenated parameter vector."""
    if max_norm <= 0:
        raise ValueError(f"max_norm must be positive, got {max_norm}")
    total_sq = sum(float((value ** 2).sum()) for value in state.values())
    norm = math.sqrt(total_sq)
    if norm <= max_norm or norm == 0.0:
        return {key: value.copy() for key, value in state.items()}
    factor = max_norm / norm
    return {key: value * factor for key, value in state.items()}


# ----------------------------------------------------------------------
# Gaussian mechanism
# ----------------------------------------------------------------------
def gaussian_sigma(epsilon: float, delta: float, sensitivity: float) -> float:
    """Noise scale of the classic Gaussian mechanism.

    ``σ = Δ₂ · sqrt(2 ln(1.25/δ)) / ε`` — valid for ε ∈ (0, 1]; for larger
    ε this remains a (conservative) upper bound and we allow it with the
    caveat documented here.
    """
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    if not 0 < delta < 1:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    if sensitivity < 0:
        raise ValueError(f"sensitivity must be non-negative, got {sensitivity}")
    return sensitivity * math.sqrt(2.0 * math.log(1.25 / delta)) / epsilon


def add_gaussian_noise(
    state: StateDict, sigma: float, rng: np.random.Generator
) -> StateDict:
    """Add iid ``N(0, σ²)`` noise to every parameter of ``state``."""
    if sigma < 0:
        raise ValueError(f"sigma must be non-negative, got {sigma}")
    if sigma == 0.0:
        return {key: value.copy() for key, value in state.items()}
    return {
        key: value + rng.normal(0.0, sigma, size=value.shape).astype(value.dtype)
        for key, value in state.items()
    }


# ----------------------------------------------------------------------
# zCDP accounting
# ----------------------------------------------------------------------
def zcdp_rho(sensitivity: float, sigma: float) -> float:
    """zCDP cost ρ of one Gaussian release: ``Δ₂² / (2σ²)``."""
    if sensitivity < 0:
        raise ValueError(f"sensitivity must be non-negative, got {sensitivity}")
    if sigma <= 0:
        raise ValueError(f"sigma must be positive, got {sigma}")
    return (sensitivity ** 2) / (2.0 * sigma ** 2)


def rho_to_epsilon(rho: float, delta: float) -> float:
    """Convert accumulated zCDP ρ to ε at the given δ."""
    if rho < 0:
        raise ValueError(f"rho must be non-negative, got {rho}")
    if not 0 < delta < 1:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    return rho + 2.0 * math.sqrt(rho * math.log(1.0 / delta))


@dataclass(frozen=True)
class GaussianMechanism:
    """A configured Gaussian release: clip to ``max_norm``, add noise.

    ``sigma`` may be given directly or derived from an (ε, δ) target via
    :meth:`for_budget`.
    """

    max_norm: float
    sigma: float

    def __post_init__(self) -> None:
        if self.max_norm <= 0:
            raise ValueError(f"max_norm must be positive, got {self.max_norm}")
        if self.sigma < 0:
            raise ValueError(f"sigma must be non-negative, got {self.sigma}")

    @classmethod
    def for_budget(
        cls, epsilon: float, delta: float, max_norm: float
    ) -> "GaussianMechanism":
        """Mechanism achieving (ε, δ)-DP for one release at this clip norm."""
        return cls(max_norm=max_norm, sigma=gaussian_sigma(epsilon, delta, max_norm))

    def release(self, state: StateDict, rng: np.random.Generator) -> StateDict:
        """Clip then perturb ``state``; the DP-safe output."""
        return add_gaussian_noise(clip_state_by_l2(state, self.max_norm), self.sigma, rng)

    @property
    def rho(self) -> float:
        """zCDP cost of one release (0 when σ = 0 is impossible: σ > 0 required)."""
        return zcdp_rho(self.max_norm, self.sigma)


@dataclass
class PrivacyAccountant:
    """Accumulates zCDP over a sequence of Gaussian releases.

    Usage::

        accountant = PrivacyAccountant(delta=1e-5)
        accountant.spend(mechanism.rho)
        epsilon = accountant.epsilon()
    """

    delta: float
    _rhos: List[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not 0 < self.delta < 1:
            raise ValueError(f"delta must be in (0, 1), got {self.delta}")

    def spend(self, rho: float) -> None:
        if rho < 0:
            raise ValueError(f"rho must be non-negative, got {rho}")
        self._rhos.append(rho)

    @property
    def total_rho(self) -> float:
        return float(sum(self._rhos))

    @property
    def num_releases(self) -> int:
        return len(self._rhos)

    def epsilon(self) -> float:
        """Current (ε, self.delta) guarantee under zCDP composition."""
        return rho_to_epsilon(self.total_rho, self.delta)

"""Error feedback in the update-codec layer (``ef:<lossy-spec>``).

Wiring :class:`repro.federated.compression.ErrorFeedback` into the
transport codecs: the wire format stays the inner codec's, the residual
is client-side state threaded through ``TrainTask.residual`` /
``TrainResult.residual``, and accumulated feedback pulls lossy training
back toward the raw trajectory.
"""

import numpy as np
import pytest

from repro.data import FederatedDataset
from repro.federated import FedAvgAggregator, FederatedSimulation
from repro.nn.models import RegistryModelFactory
from repro.runtime.codec import ErrorFeedbackCodec, dense_nbytes, get_codec
from repro.training import TrainConfig

from ..conftest import make_blob_federation


def make_state(seed=0):
    rng = np.random.default_rng(seed)
    return {
        "layer0.weight": rng.normal(0.0, 0.5, size=(16, 9)),
        "layer0.bias": rng.normal(0.0, 0.5, size=16),
        "counter": np.array([7], dtype=np.int64),  # integer buffer
    }


def drift(state, scale, seed):
    rng = np.random.default_rng(seed)
    out = {}
    for key, value in state.items():
        if np.issubdtype(value.dtype, np.floating):
            out[key] = value + rng.normal(0.0, scale, size=value.shape)
        else:
            out[key] = value.copy()
    return out


class TestRegistry:
    def test_ef_wraps_lossy_codecs(self):
        codec = get_codec("ef:topk:0.1")
        assert isinstance(codec, ErrorFeedbackCodec)
        assert codec.spec == "ef:topk:0.1"
        assert isinstance(get_codec("ef:quant:8"), ErrorFeedbackCodec)

    def test_ef_needs_an_argument(self):
        with pytest.raises(ValueError, match="ef"):
            get_codec("ef")

    @pytest.mark.parametrize("inner", ["raw", "delta"])
    def test_lossless_inner_rejected(self, inner):
        with pytest.raises(ValueError, match="lossy"):
            get_codec(f"ef:{inner}")


class TestEncodeDecode:
    def test_residual_free_encode_equals_inner_codec(self):
        basis = make_state(0)
        state = drift(basis, 1e-2, seed=1)
        ef = get_codec("ef:topk:0.25")
        inner = get_codec("topk:0.25")
        from_ef = ef.decode(ef.encode(state, basis), basis)
        from_inner = inner.decode(inner.encode(state, basis), basis)
        assert set(from_ef) == set(from_inner)
        for key in from_ef:
            np.testing.assert_array_equal(from_ef[key], from_inner[key])

    def test_integer_buffers_travel_exact(self):
        basis = make_state(0)
        state = drift(basis, 1e-2, seed=2)
        state["counter"] = state["counter"] + 3
        ef = get_codec("ef:topk:0.25")
        decoded = ef.decode(ef.encode(state, basis), basis)
        np.testing.assert_array_equal(decoded["counter"], state["counter"])
        assert decoded["counter"].dtype == np.int64

    def test_feedback_flushes_persistently_dropped_mass(self):
        """A persistent small-coordinate signal: plain top-k drops the
        same coordinates every round (error grows without bound); with
        feedback their residual accumulates until it crosses the top-k
        threshold and is flushed, so the decoded trajectory tracks the
        true one."""
        basis = make_state(0)
        step = {
            key: np.random.default_rng(40).normal(0.0, 1e-2, size=value.shape)
            for key, value in basis.items()
            if np.issubdtype(value.dtype, np.floating)
        }

        def advance(state):
            out = {k: v + step[k] if k in step else v.copy()
                   for k, v in state.items()}
            return out

        ef = get_codec("ef:topk:0.1")
        plain = get_codec("topk:0.1")
        true_state = basis
        ef_decoded, plain_decoded = basis, basis
        residual = None
        for _ in range(6):
            true_state = advance(true_state)
            ef_target = {
                key: ef_decoded[key] + step.get(key, 0) for key in basis
            }
            encoded, residual = ef.encode_with_residual(
                ef_target, ef_decoded, residual
            )
            ef_decoded = ef.decode(encoded, ef_decoded)
            plain_target = {
                key: plain_decoded[key] + step.get(key, 0) for key in basis
            }
            plain_decoded = plain.decode(
                plain.encode(plain_target, plain_decoded), plain_decoded
            )
        assert residual is not None and set(residual) <= set(basis)
        for key in step:
            ef_err = np.abs(ef_decoded[key] - true_state[key]).sum()
            plain_err = np.abs(plain_decoded[key] - true_state[key]).sum()
            assert ef_err < plain_err

    def test_structure_mismatch_resets_feedback_silently(self):
        basis = make_state(0)
        state = drift(basis, 1e-2, seed=5)
        ef = get_codec("ef:topk:0.25")
        stale = {"no.such.key": np.ones(4)}
        encoded, residual = ef.encode_with_residual(state, basis, stale)
        fresh, _ = ef.encode_with_residual(state, basis, None)
        decoded = ef.decode(encoded, basis)
        fresh_decoded = ef.decode(fresh, basis)
        for key in decoded:
            np.testing.assert_array_equal(decoded[key], fresh_decoded[key])
        assert residual is not None and set(stale) != set(residual)

    def test_wire_bytes_match_the_inner_codec(self):
        basis = make_state(0)
        state = drift(basis, 1e-2, seed=6)
        ef = get_codec("ef:quant:8").encode(state, basis)
        inner = get_codec("quant:8").encode(state, basis)
        assert ef.nbytes == inner.nbytes
        assert ef.nbytes < dense_nbytes(state)


FACTORY = RegistryModelFactory(name="mlp", num_classes=3, in_channels=1, image_size=4)
ROUNDS = 4


def run_fed(codec):
    clients, test = make_blob_federation(5, per_client=24, test_size=48, seed=0)
    fed = FederatedDataset(client_datasets=clients, test_set=test)
    sim = FederatedSimulation(
        FACTORY, fed, FedAvgAggregator(),
        TrainConfig(epochs=1, batch_size=8, learning_rate=0.1),
        seed=0, codec=codec,
    )
    history = sim.run(ROUNDS)
    return sim, history


class TestClientPlumbing:
    def test_residual_lives_on_the_client_between_rounds(self):
        sim, _ = run_fed("ef:topk:0.2")
        for client in sim.clients:
            assert client.update_residual is not None
            model_keys = set(client.model.state_dict())
            assert set(client.update_residual) <= model_keys

    def test_raw_clients_carry_no_residual(self):
        sim, _ = run_fed("raw")
        assert all(client.update_residual is None for client in sim.clients)

    def test_off_by_default_and_deterministic(self):
        _, first = run_fed("ef:topk:0.2")
        _, second = run_fed("ef:topk:0.2")
        assert first.accuracies == second.accuracies

    def test_ef_diverges_from_plain_topk_once_feedback_engages(self):
        # Round 1 is residual-free (identical to plain top-k); from round
        # 2 the carried residual changes which coordinates survive.
        ef_sim, _ = run_fed("ef:topk:0.2")
        plain_sim, _ = run_fed("topk:0.2")
        ef_state = ef_sim.server.global_state
        plain_state = plain_sim.server.global_state
        assert any(
            not np.array_equal(ef_state[key], plain_state[key])
            for key in ef_state
        )

    def test_feedback_closes_the_gap_toward_raw(self):
        """The paper-standard EF property: accumulated feedback pulls the
        lossy trajectory back toward the uncompressed one."""
        raw_sim, raw_history = run_fed("raw")
        ef_sim, ef_history = run_fed("ef:topk:0.2")
        plain_sim, plain_history = run_fed("topk:0.2")
        raw_state = raw_sim.server.global_state

        def distance(state):
            return sum(
                float(np.abs(state[key] - raw_state[key]).sum())
                for key in raw_state
            )

        assert distance(ef_sim.server.global_state) < distance(
            plain_sim.server.global_state
        )
        raw_acc = raw_history.final_accuracy
        assert abs(ef_history.final_accuracy - raw_acc) <= abs(
            plain_history.final_accuracy - raw_acc
        )

"""The transport codec layer: versions, broadcast wire forms, update codecs."""

import numpy as np
import pytest

from repro.runtime.codec import (
    BroadcastDelta,
    BroadcastFull,
    BroadcastRef,
    DeltaCodec,
    QuantCodec,
    RawCodec,
    TopKCodec,
    available_codecs,
    decode_broadcast,
    dense_nbytes,
    encode_broadcast,
    get_codec,
    same_structure,
    state_version,
)


def make_state(seed=0, dtype=np.float64):
    rng = np.random.default_rng(seed)
    return {
        "layer0.weight": rng.normal(0.0, 0.5, size=(16, 9)).astype(dtype),
        "layer0.bias": rng.normal(0.0, 0.5, size=16).astype(dtype),
        "head.weight": rng.normal(0.0, 0.5, size=(3, 16)).astype(dtype),
        "counter": np.array([7], dtype=np.int64),  # integer buffer
    }


def nearby_state(state, scale=1e-3, seed=9):
    rng = np.random.default_rng(seed)
    out = {}
    for key, value in state.items():
        if np.issubdtype(value.dtype, np.floating):
            out[key] = value + rng.normal(0.0, scale, size=value.shape).astype(
                value.dtype
            )
        else:
            out[key] = value.copy()
    return out


def assert_states_equal(a, b):
    assert set(a) == set(b)
    for key in a:
        assert a[key].dtype == b[key].dtype
        np.testing.assert_array_equal(a[key], b[key])


class TestStateVersion:
    def test_identical_content_identical_version(self):
        a = make_state(0)
        b = {key: value.copy() for key, value in make_state(0).items()}
        assert state_version(a) == state_version(b)

    def test_any_bit_flip_changes_version(self):
        a = make_state(0)
        b = {key: value.copy() for key, value in a.items()}
        b["layer0.bias"][3] += 1e-12
        assert state_version(a) != state_version(b)

    def test_structure_participates(self):
        a = make_state(0)
        renamed = {("x" + key): value for key, value in a.items()}
        assert state_version(a) != state_version(renamed)
        assert not same_structure(a, renamed)


class TestBroadcastWire:
    def test_cold_cache_ships_full(self):
        state = make_state(1)
        wire = encode_broadcast(state, state_version(state), None, None)
        assert isinstance(wire, BroadcastFull)
        decoded, version = decode_broadcast(wire, None, None)
        assert_states_equal(decoded, state)
        assert version == state_version(state)

    def test_same_version_ships_ref(self):
        state = make_state(1)
        version = state_version(state)
        wire = encode_broadcast(state, version, version, state)
        assert isinstance(wire, BroadcastRef)
        assert wire.nbytes < 64
        decoded, _ = decode_broadcast(wire, version, state)
        assert_states_equal(decoded, state)

    def test_warm_cache_ships_lossless_delta(self):
        base = make_state(1)
        state = nearby_state(base, scale=1e-6)
        wire = encode_broadcast(
            state, state_version(state), state_version(base), base
        )
        assert isinstance(wire, BroadcastDelta)
        assert wire.nbytes < dense_nbytes(state)
        decoded, _ = decode_broadcast(wire, state_version(base), base)
        assert_states_equal(decoded, state)  # bitwise, by construction

    def test_unrelated_states_fall_back_to_full(self):
        # Incompressible XOR (independent random states) must not ship a
        # delta bigger than the dense payload.
        base = make_state(1)
        state = make_state(2)
        wire = encode_broadcast(
            state, state_version(state), state_version(base), base
        )
        decoded, _ = decode_broadcast(
            wire, state_version(base), base
        )
        assert_states_equal(decoded, state)

    def test_structure_change_ships_full(self):
        base = make_state(1)
        state = {"other": np.zeros(4)}
        wire = encode_broadcast(
            state, state_version(state), state_version(base), base
        )
        assert isinstance(wire, BroadcastFull)

    def test_ref_against_wrong_cache_raises(self):
        state = make_state(1)
        wire = BroadcastRef(version="deadbeef")
        with pytest.raises(ValueError):
            decode_broadcast(wire, "cafebabe", state)

    def test_delta_against_wrong_base_raises(self):
        base = make_state(1)
        state = nearby_state(base)
        wire = encode_broadcast(
            state, state_version(state), state_version(base), base
        )
        assert isinstance(wire, BroadcastDelta)
        with pytest.raises(ValueError):
            decode_broadcast(wire, "cafebabe", base)


class TestRegistry:
    def test_families_registered(self):
        assert set(available_codecs()) >= {"raw", "delta", "topk", "quant"}

    def test_specs_resolve_and_cache(self):
        assert isinstance(get_codec("raw"), RawCodec)
        assert isinstance(get_codec("delta"), DeltaCodec)
        topk = get_codec("topk:0.1")
        assert isinstance(topk, TopKCodec) and topk.fraction == 0.1
        quant = get_codec("quant:8")
        assert isinstance(quant, QuantCodec) and quant.num_bits == 8
        assert get_codec("quant:8") is quant  # shared instance per spec

    @pytest.mark.parametrize(
        "spec", ["", "nope", "topk", "quant", "raw:1", "delta:x", "topk:2.0", "quant:0"]
    )
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            get_codec(spec)


class TestLosslessCodecs:
    @pytest.mark.parametrize("spec", ["raw", "delta"])
    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_bitwise_roundtrip(self, spec, dtype):
        codec = get_codec(spec)
        assert codec.lossless
        basis = make_state(3, dtype=dtype)
        state = nearby_state(basis, scale=1e-4, seed=4)
        encoded = codec.encode(state, basis)
        assert encoded.codec == spec
        decoded = codec.decode(encoded, basis)
        assert_states_equal(decoded, state)

    def test_delta_beats_raw_on_nearby_states(self):
        basis = make_state(3)
        state = nearby_state(basis, scale=1e-8, seed=4)
        raw_bytes = get_codec("raw").encode(state, basis).nbytes
        delta_bytes = get_codec("delta").encode(state, basis).nbytes
        assert delta_bytes < raw_bytes

    def test_delta_never_exceeds_dense(self):
        basis = make_state(3)
        state = make_state(4)  # unrelated: incompressible XOR
        encoded = get_codec("delta").encode(state, basis)
        assert encoded.nbytes <= dense_nbytes(state)
        assert_states_equal(get_codec("delta").decode(encoded, basis), state)


class TestLossyCodecs:
    @pytest.mark.parametrize("spec", ["topk:0.1", "quant:8"])
    def test_deterministic_and_smaller(self, spec):
        codec = get_codec(spec)
        assert not codec.lossless
        basis = make_state(5)
        state = nearby_state(basis, scale=1e-2, seed=6)
        first, first_bytes = codec.roundtrip(state, basis)
        second, second_bytes = codec.roundtrip(state, basis)
        assert first_bytes == second_bytes
        assert_states_equal(first, second)  # pure function of the input
        assert first_bytes < dense_nbytes(state)

    @pytest.mark.parametrize("spec", ["topk:0.1", "quant:8"])
    def test_integer_buffers_survive_exactly(self, spec):
        codec = get_codec(spec)
        basis = make_state(5)
        state = nearby_state(basis, scale=1e-2, seed=6)
        decoded, _ = codec.roundtrip(state, basis)
        np.testing.assert_array_equal(decoded["counter"], state["counter"])
        assert decoded["counter"].dtype == state["counter"].dtype

    @pytest.mark.parametrize("spec", ["topk:0.1", "quant:8"])
    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_preserves_dtype_and_approximates(self, spec, dtype):
        codec = get_codec(spec)
        basis = make_state(5, dtype=dtype)
        state = nearby_state(basis, scale=1e-2, seed=6)
        decoded, _ = codec.roundtrip(state, basis)
        for key, value in decoded.items():
            assert value.dtype == state[key].dtype
        # The reconstruction tracks the true update direction.
        for key in ("layer0.weight", "head.weight"):
            err = float(np.abs(decoded[key] - state[key]).max())
            assert err <= float(np.abs(state[key] - basis[key]).max()) + 1e-12

    def test_quant_low_bit_ships_narrow_codes(self):
        codec = get_codec("quant:4")
        basis = make_state(5)
        state = nearby_state(basis, scale=1e-2, seed=6)
        compressed, _ = codec.encode(state, basis).payload
        for entry in compressed.payload.values():
            assert entry["codes"].dtype == np.uint8

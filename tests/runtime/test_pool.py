"""The persistent worker pool: parity, reuse, specs, death recovery.

The pool's contract is that of every other backend — bit-identical
results — plus three properties of its own: the workers *persist* across
``run_tasks`` calls (that is the perf win), batches can be interleaved
through ``submit``/``drain``, and a worker dying mid-task is repaired
(respawn + resubmit) instead of hanging or corrupting the batch.
"""

import multiprocessing
import os

import numpy as np
import pytest

from repro.data.dataset import FederatedDataset
from repro.federated import FedAvgAggregator, FederatedSimulation
from repro.nn.models import MLP, RegistryModelFactory
from repro.runtime import (
    BACKEND_ENV_VAR,
    BackendError,
    PoolBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    TrainTask,
    WorkerPool,
    capture_rng,
    get_backend,
    parse_backend_spec,
)
from repro.training import TrainConfig
from repro.unlearning import SisaConfig, SisaEnsemble

from ..conftest import make_blob_federation, make_blobs

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

FACTORY = RegistryModelFactory(name="mlp", num_classes=3, in_channels=1, image_size=4)
CONFIG = TrainConfig(epochs=1, batch_size=8, learning_rate=0.05)


def make_task(task_id=0, seed=0, epochs=1):
    return TrainTask(
        task_id=task_id,
        model_factory=FACTORY,
        dataset=make_blobs(num_samples=24, num_classes=3, shape=(1, 4, 4), seed=seed),
        config=TrainConfig(epochs=epochs, batch_size=8, learning_rate=0.05),
        rng_state=capture_rng(np.random.default_rng(seed)),
    )


def assert_results_equal(a, b):
    assert a.task_id == b.task_id
    assert a.rng_state == b.rng_state
    for key in a.state:
        np.testing.assert_array_equal(a.state[key], b.state[key])


@pytest.fixture
def pool():
    backend = PoolBackend(max_workers=2)
    yield backend
    backend.close()


class _DieOnce:
    """Kills its first worker, succeeds on the retry (sentinel on disk)."""

    task_id = "die-once"

    def __init__(self, sentinel_path):
        self.sentinel_path = sentinel_path

    def run(self):
        if not os.path.exists(self.sentinel_path):
            with open(self.sentinel_path, "w"):
                pass
            os._exit(13)
        return "survived"


class _DieAlways:
    task_id = "die-always"

    def run(self):
        os._exit(13)


class _Explode:
    task_id = "boom"

    def run(self):
        raise RuntimeError("intentional failure")


class TestSpecs:
    def test_pool_spec_resolves_and_is_shared(self):
        first = get_backend("pool:3")
        try:
            assert isinstance(first, PoolBackend)
            assert first.max_workers == 3
            # Same spec → same warm pool, everywhere in the process.
            assert get_backend("pool:3") is first
            assert get_backend("pool") is not first  # different size key
        finally:
            first.close()
            get_backend("pool").close()

    def test_direct_instances_are_private(self):
        a, b = PoolBackend(max_workers=2), PoolBackend(max_workers=2)
        assert a.pool is not b.pool
        a.close()
        b.close()

    @pytest.mark.parametrize(
        "spec,cls,workers",
        [
            ("process:4", ProcessBackend, 4),
            ("thread:2", ThreadBackend, 2),
            ("fork:8", ProcessBackend, 8),
        ],
    )
    def test_worker_counts_in_specs(self, spec, cls, workers):
        backend = get_backend(spec)
        assert isinstance(backend, cls)
        assert backend.max_workers == workers

    @pytest.mark.parametrize("spec", ["process:0", "process:x", "serial:2"])
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            get_backend(spec)

    def test_parse_backend_spec(self):
        assert parse_backend_spec("pool:8") == ("pool", 8, {})
        assert parse_backend_spec("Serial") == ("serial", None, {})

    def test_parse_backend_spec_options(self):
        assert parse_backend_spec("pool:8:retries=2") == (
            "pool",
            8,
            {"retries": 2},
        )
        # Options compose without a worker count, in either position.
        assert parse_backend_spec("pool:retries=0") == (
            "pool",
            None,
            {"retries": 0},
        )
        with pytest.raises(ValueError, match="does not support option"):
            parse_backend_spec("process:4:retries=2")
        with pytest.raises(ValueError, match="does not support option"):
            parse_backend_spec("pool:8:reties=2")  # typo'd key
        with pytest.raises(ValueError, match="expected an integer"):
            parse_backend_spec("pool:8:retries=two")
        with pytest.raises(ValueError, match="retries must be >= 0"):
            parse_backend_spec("pool:8:retries=-1")
        with pytest.raises(ValueError, match="two worker counts"):
            parse_backend_spec("pool:8:4")

    def test_retries_option_reaches_pool_and_keys_cache(self):
        patient = get_backend("pool:2:retries=3")
        default = get_backend("pool:2")
        try:
            assert patient.max_task_retries == 3
            # Different death budgets must not share a pool.
            assert patient is not default
            assert get_backend("pool:2:retries=3") is patient
        finally:
            patient.close()
            default.close()

    def test_parse_rejects_unknown_name_eagerly(self):
        # The CLI relies on parse-time validation to fail before any
        # dataset synthesis or training starts.
        with pytest.raises(ValueError, match="unknown backend"):
            parse_backend_spec("porcess:8")
        with pytest.raises(ValueError, match="worker count"):
            parse_backend_spec("serial:4")
        with pytest.raises(ValueError, match="worker count"):
            parse_backend_spec("pool:")  # lost digit, not "no count"

    def test_env_override_applies_when_spec_is_none(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "thread:3")
        backend = get_backend(None)
        assert isinstance(backend, ThreadBackend)
        assert backend.max_workers == 3

    def test_env_override_empty_means_serial(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "")
        assert isinstance(get_backend(None), SerialBackend)

    def test_explicit_spec_beats_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "thread")
        assert isinstance(get_backend("serial"), SerialBackend)


@pytest.mark.skipif(not HAS_FORK, reason="fork start method unavailable")
class TestPoolExecution:
    def test_bitwise_parity_with_serial(self, pool):
        tasks = [make_task(task_id=i, seed=i) for i in range(5)]
        serial = SerialBackend().run_tasks(tasks)
        pooled = pool.run_tasks(tasks)
        for a, b in zip(serial, pooled):
            assert_results_equal(a, b)

    def test_workers_persist_across_calls(self, pool):
        tasks = [make_task(task_id=i, seed=i) for i in range(4)]
        pool.run_tasks(tasks)
        first_pids = pool.pool.worker_pids()
        assert len(first_pids) == 2
        for _ in range(3):
            pool.run_tasks(tasks)
        assert pool.pool.worker_pids() == first_pids

    def test_results_keep_submission_order(self, pool):
        tasks = [make_task(task_id=i, seed=i, epochs=1 + (i % 3)) for i in range(6)]
        results = pool.run_tasks(tasks)
        assert [r.task_id for r in results] == list(range(6))

    def test_submit_drain_interleaved_batches(self, pool):
        tasks = [make_task(task_id=i, seed=i) for i in range(5)]
        first = pool.submit(tasks[:2])
        second = pool.submit(tasks[2:])
        # Drain out of order: batches share the workers but not results.
        late = pool.drain(second)
        early = pool.drain(first)
        assert [r.task_id for r in early] == [0, 1]
        assert [r.task_id for r in late] == [2, 3, 4]

    def test_drain_unknown_ticket_rejected(self, pool):
        with pytest.raises(ValueError, match="ticket"):
            pool.drain(999)

    def test_poll_reports_completion_without_blocking(self, pool):
        import time

        ticket = pool.submit([make_task(task_id=0)])
        # poll() makes progress and eventually reports done; drain() then
        # returns instantly with the same results it always would.
        deadline = time.monotonic() + 30.0
        while not pool.poll(ticket):
            if time.monotonic() > deadline:
                pytest.fail("batch never completed under poll()")
            time.sleep(0.001)
        assert [r.task_id for r in pool.drain(ticket)] == [0]

    def test_poll_unknown_ticket_rejected(self, pool):
        with pytest.raises(ValueError, match="ticket"):
            pool.poll(123)

    def test_outstanding_tickets_tracked(self, pool):
        first = pool.submit([make_task(task_id=0)])
        second = pool.submit([make_task(task_id=1, seed=1)])
        assert pool.outstanding_tickets == [first, second]
        pool.drain(first)
        assert pool.outstanding_tickets == [second]
        pool.drain(second)
        assert pool.outstanding_tickets == []

    def test_empty_batch(self, pool):
        assert pool.run_tasks([]) == []

    def test_close_fails_outstanding_batches_instead_of_hanging(self, pool):
        ticket = pool.submit([make_task(task_id=i, seed=i) for i in range(4)])
        pool.close()
        with pytest.raises(BackendError, match="closed"):
            pool.drain(ticket)
        # And the pool is usable again afterwards.
        assert pool.run_tasks([make_task(7, seed=7)])[0].task_id == 7

    def test_pool_restarts_after_close(self, pool):
        tasks = [make_task(task_id=i, seed=i) for i in range(3)]
        expected = SerialBackend().run_tasks(tasks)
        pool.run_tasks(tasks)
        pool.close()
        assert not pool.pool.running
        for a, b in zip(expected, pool.run_tasks(tasks)):
            assert_results_equal(a, b)


@pytest.mark.skipif(not HAS_FORK, reason="fork start method unavailable")
class TestPoolFaults:
    def test_task_exception_fails_batch_but_not_pool(self, pool):
        with pytest.raises(BackendError, match="intentional failure"):
            pool.run_tasks([make_task(0), _Explode(), make_task(2)])
        # The pool survives a failed batch.
        results = pool.run_tasks([make_task(5, seed=5)])
        assert results[0].task_id == 5

    def test_worker_death_respawns_and_resubmits(self, pool, tmp_path):
        sentinel = str(tmp_path / "died-once")
        tasks = [_DieOnce(sentinel), make_task(1, seed=1)]
        pool.run_tasks([make_task(0), make_task(3, seed=3)])  # warm the pool
        before = pool.pool.worker_pids()
        results = pool.run_tasks(tasks)
        assert results[0] == "survived"
        assert results[1].task_id == 1
        # Exactly the killed worker was replaced.
        after = pool.pool.worker_pids()
        assert len(after) == len(before)
        assert after != before

    def test_worker_death_between_submit_and_drain_interleaved_tickets(self, pool):
        """Regression: a worker killed while *two* tickets are outstanding.

        The pool's death repair (respawn + resubmit) must restore every
        lost task to its own batch slot: after the kill, each ticket must
        still drain to its exact submission order with results
        bit-identical to serial — the interleaving must not let a
        resubmitted task's result land in the other ticket or shift
        positions within its own.
        """
        first_tasks = [make_task(task_id=i, seed=i, epochs=2) for i in range(3)]
        second_tasks = [
            make_task(task_id=10 + i, seed=10 + i, epochs=2) for i in range(3)
        ]
        expected_first = SerialBackend().run_tasks(first_tasks)
        expected_second = SerialBackend().run_tasks(second_tasks)

        pool.run_tasks([make_task(0)])  # warm the workers
        first = pool.submit(first_tasks)
        second = pool.submit(second_tasks)
        # Kill one worker while both tickets have tasks outstanding.
        victim = pool.pool.worker_pids()[0]
        os.kill(victim, 9)
        late = pool.drain(second)
        early = pool.drain(first)
        assert [r.task_id for r in early] == [0, 1, 2]
        assert [r.task_id for r in late] == [10, 11, 12]
        for got, want in zip(early, expected_first):
            assert_results_equal(got, want)
        for got, want in zip(late, expected_second):
            assert_results_equal(got, want)
        # The dead worker was replaced, not leaked.
        assert len(pool.pool.worker_pids()) == len(set(pool.pool.worker_pids()))
        assert victim not in pool.pool.worker_pids()

    def test_repeatedly_dying_task_fails_batch(self, pool):
        with pytest.raises(BackendError, match="died"):
            pool.run_tasks([_DieAlways(), make_task(1, seed=1)])
        # And the pool is still serviceable afterwards.
        assert pool.run_tasks([make_task(2, seed=2)])[0].task_id == 2

    def test_mid_experiment_worker_death_keeps_rounds_identical(self, tmp_path):
        """A worker killed between federated rounds must not change any
        number: the respawned worker picks up tasks that carry their own
        state, so the run is still bit-identical to serial."""
        def build(backend):
            clients, test = make_blob_federation(
                num_clients=4, per_client=24, test_size=24, seed=3
            )
            fed = FederatedDataset(client_datasets=clients, test_set=test)
            return FederatedSimulation(
                FACTORY, fed, FedAvgAggregator(), CONFIG, seed=3, backend=backend
            )

        serial = build(None)
        h_serial = serial.run(3)

        backend = PoolBackend(max_workers=2)
        try:
            pooled = build(backend)
            record0 = pooled.run_round(0)
            # Simulate an external kill (OOM reaper, preemption) between
            # rounds, then keep going.
            victim = backend.pool.worker_pids()[0]
            os.kill(victim, 9)
            record1 = pooled.run_round(1)
            record2 = pooled.run_round(2)
            accuracies = [
                r.global_accuracy for r in (record0, record1, record2)
            ]
            assert accuracies == h_serial.accuracies
            for key in serial.server.global_state:
                np.testing.assert_array_equal(
                    serial.server.global_state[key],
                    pooled.server.global_state[key],
                )
        finally:
            backend.close()


@pytest.mark.skipif(not HAS_FORK, reason="fork start method unavailable")
class TestPoolParityAcrossSites:
    """Pool vs fork-per-call vs serial on the real fan-out sites."""

    SISA = SisaConfig(
        num_shards=3, num_slices=3, epochs_per_slice=1, batch_size=8,
        learning_rate=0.08,
    )

    def run_federated(self, backend):
        clients, test = make_blob_federation(
            num_clients=4, per_client=24, test_size=24, seed=7
        )
        fed = FederatedDataset(client_datasets=clients, test_set=test)
        sim = FederatedSimulation(
            FACTORY, fed, FedAvgAggregator(), CONFIG, seed=7, backend=backend
        )
        history = sim.run(3)
        return sim, history

    def test_federated_rounds_identical_across_pool_fork_serial(self):
        serial_sim, serial_history = self.run_federated(None)
        fork_sim, fork_history = self.run_federated("process")
        backend = PoolBackend(max_workers=2)
        try:
            pool_sim, pool_history = self.run_federated(backend)
        finally:
            backend.close()
        assert serial_history.accuracies == fork_history.accuracies
        assert serial_history.accuracies == pool_history.accuracies
        for key in serial_sim.server.global_state:
            np.testing.assert_array_equal(
                serial_sim.server.global_state[key],
                pool_sim.server.global_state[key],
            )
            np.testing.assert_array_equal(
                serial_sim.server.global_state[key],
                fork_sim.server.global_state[key],
            )
        for a, b in zip(serial_sim.clients, pool_sim.clients):
            assert a.rng.bit_generator.state == b.rng.bit_generator.state

    def run_sisa(self, backend):
        dataset = make_blobs(num_samples=54, num_classes=3, shape=(1, 4, 4))
        ensemble = SisaEnsemble(
            FACTORY, dataset, self.SISA, seed=0, backend=backend
        )
        ensemble.fit()
        targets = [
            int(ensemble._shards[0].slice_indices[1][0]),
            int(ensemble._shards[2].slice_indices[2][0]),
        ]
        report = ensemble.delete(targets)
        return ensemble, report

    def test_sisa_fit_and_delete_identical_across_pool_fork_serial(self):
        serial_ensemble, serial_report = self.run_sisa(None)
        fork_ensemble, _ = self.run_sisa("process")
        backend = PoolBackend(max_workers=2)
        try:
            pool_ensemble, pool_report = self.run_sisa(backend)
        finally:
            backend.close()
        assert serial_report.shards_affected == pool_report.shards_affected
        assert serial_report.slices_retrained == pool_report.slices_retrained
        for reference, candidate in (
            (serial_ensemble, fork_ensemble),
            (serial_ensemble, pool_ensemble),
        ):
            for a, b in zip(reference._shards, candidate._shards):
                assert a.rng_state == b.rng_state
                for key, value in a.model.state_dict().items():
                    np.testing.assert_array_equal(value, b.model.state_dict()[key])

    def test_one_pool_serves_federated_and_sisa_back_to_back(self):
        """The ROADMAP promise: simulation, ensemble and protocols reuse
        one warm pool instead of each forking their own workers."""
        backend = PoolBackend(max_workers=2)
        try:
            sim, _ = self.run_federated(backend)
            pids_after_federated = backend.pool.worker_pids()
            ensemble, _ = self.run_sisa(backend)
            assert backend.pool.worker_pids() == pids_after_federated
        finally:
            backend.close()


class TestWorkerPoolValidation:
    def test_bad_worker_count(self):
        with pytest.raises(ValueError):
            WorkerPool(max_workers=0)

    def test_bad_retry_count(self):
        with pytest.raises(ValueError):
            WorkerPool(max_task_retries=-1)

    def test_context_manager_closes(self):
        with WorkerPool(max_workers=2) as pool:
            pool.run_tasks([make_task(0), make_task(1, seed=1)])
            assert pool.running
        assert not pool.running

"""Backend layer: resolution, ordering, errors, and cross-backend parity."""

import multiprocessing

import numpy as np
import pytest

from repro.nn.models import MLP
from repro.runtime import (
    Backend,
    BackendError,
    ChainStage,
    ChainTask,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    TrainTask,
    capture_rng,
    get_backend,
)
from repro.training import TrainConfig

from ..conftest import make_blobs

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()


def module_factory():
    return MLP(16, 3, np.random.default_rng(11))


def make_task(task_id=0, epochs=1, seed=0):
    return TrainTask(
        task_id=task_id,
        model_factory=module_factory,
        dataset=make_blobs(num_samples=24, num_classes=3, shape=(1, 4, 4), seed=seed),
        config=TrainConfig(epochs=epochs, batch_size=8, learning_rate=0.05),
        rng_state=capture_rng(np.random.default_rng(seed)),
    )


class TestGetBackend:
    def test_none_is_serial(self):
        assert isinstance(get_backend(None), SerialBackend)

    @pytest.mark.parametrize(
        "name,cls",
        [
            ("serial", SerialBackend),
            ("thread", ThreadBackend),
            ("threads", ThreadBackend),
            ("process", ProcessBackend),
            ("fork", ProcessBackend),
        ],
    )
    def test_names(self, name, cls):
        assert isinstance(get_backend(name), cls)

    def test_instance_passthrough(self):
        backend = ThreadBackend(max_workers=3)
        assert get_backend(backend) is backend

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            get_backend("gpu")

    def test_bad_type_rejected(self):
        with pytest.raises(TypeError):
            get_backend(42)

    def test_bad_worker_counts_rejected(self):
        with pytest.raises(ValueError):
            ThreadBackend(max_workers=0)
        with pytest.raises(ValueError):
            ProcessBackend(max_workers=0)


class TestExecution:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_empty_task_list(self, backend):
        assert get_backend(backend).run_tasks([]) == []

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_results_keep_submission_order(self, backend):
        # Different epoch counts => different durations; order must hold.
        tasks = [make_task(task_id=i, epochs=1 + (i % 3), seed=i) for i in range(6)]
        results = get_backend(backend).run_tasks(tasks)
        assert [r.task_id for r in results] == list(range(6))
        for task, result in zip(tasks, results):
            assert len(result.history) == task.config.epochs

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_parallel_matches_serial_bitwise(self, backend):
        tasks = [make_task(task_id=i, seed=i) for i in range(5)]
        serial = SerialBackend().run_tasks(tasks)
        parallel = get_backend(backend).run_tasks(tasks)
        for a, b in zip(serial, parallel):
            assert a.rng_state == b.rng_state
            assert a.history.losses == b.history.losses
            assert sorted(a.state) == sorted(b.state)
            for key in a.state:
                np.testing.assert_array_equal(a.state[key], b.state[key])

    @pytest.mark.skipif(not HAS_FORK, reason="fork start method unavailable")
    def test_process_backend_accepts_closure_factories(self):
        # Closures don't pickle; the fork backend inherits them instead.
        closure_factory = lambda: MLP(16, 3, np.random.default_rng(5))  # noqa: E731
        tasks = []
        for i in range(3):
            task = make_task(task_id=i, seed=i)
            task.model_factory = closure_factory
            tasks.append(task)
        serial = SerialBackend().run_tasks(tasks)
        forked = ProcessBackend(max_workers=2).run_tasks(tasks)
        for a, b in zip(serial, forked):
            for key in a.state:
                np.testing.assert_array_equal(a.state[key], b.state[key])


class _ExplodingTask:
    task_id = "boom"

    def run(self):
        raise RuntimeError("intentional failure")


class TestErrors:
    def test_serial_propagates(self):
        with pytest.raises(RuntimeError, match="intentional failure"):
            SerialBackend().run_tasks([_ExplodingTask(), _ExplodingTask()])

    def test_thread_propagates(self):
        with pytest.raises(RuntimeError, match="intentional failure"):
            ThreadBackend().run_tasks([_ExplodingTask(), _ExplodingTask()])

    @pytest.mark.skipif(not HAS_FORK, reason="fork start method unavailable")
    def test_process_wraps_in_backend_error(self):
        with pytest.raises(BackendError, match="intentional failure"):
            ProcessBackend(max_workers=2).run_tasks(
                [_ExplodingTask(), _ExplodingTask()]
            )

    @pytest.mark.skipif(not HAS_FORK, reason="fork start method unavailable")
    def test_process_healthy_tasks_still_complete_alongside_failure(self):
        with pytest.raises(BackendError):
            ProcessBackend(max_workers=2).run_tasks(
                [make_task(0), _ExplodingTask(), make_task(2)]
            )


class TestChainTask:
    DATA = make_blobs(num_samples=24, num_classes=3, shape=(1, 4, 4))
    ALL = np.arange(24)

    def chain(self, stages):
        return ChainTask(
            task_id="chain",
            model_factory=module_factory,
            dataset=self.DATA,
            stages=stages,
            config=TrainConfig(epochs=1, batch_size=8, learning_rate=0.05),
            rng_state=capture_rng(np.random.default_rng(3)),
        )

    def test_checkpoints_every_stage_and_counts_steps(self):
        result = self.chain(
            [ChainStage(0, self.ALL), ChainStage(1, None), ChainStage(2, self.ALL)]
        ).run()
        assert sorted(result.checkpoints) == [0, 1, 2]
        assert result.steps == 2  # the None stage checkpoints without training
        # Stage 1 trains nothing: its checkpoint equals stage 0's exactly.
        for key in result.checkpoints[0]:
            np.testing.assert_array_equal(
                result.checkpoints[0][key], result.checkpoints[1][key]
            )
        assert sorted(result.final_state) == sorted(result.checkpoints[2])
        for key in result.final_state:
            np.testing.assert_array_equal(
                result.final_state[key], result.checkpoints[2][key]
            )

    def test_empty_indices_are_checkpoint_only(self):
        result = self.chain(
            [ChainStage(0, self.ALL), ChainStage(1, np.array([], dtype=np.int64))]
        ).run()
        assert result.steps == 1
        for key in result.checkpoints[0]:
            np.testing.assert_array_equal(
                result.checkpoints[0][key], result.checkpoints[1][key]
            )

    def test_init_state_resumes(self):
        full = self.chain([ChainStage(0, self.ALL), ChainStage(1, self.ALL)]).run()
        resumed_task = self.chain([ChainStage(1, self.ALL)])
        resumed_task.init_state = full.checkpoints[0]
        # Replay stage 1 with the RNG positioned where stage 0 left it.
        resumed_task.rng_state = self.chain([ChainStage(0, self.ALL)]).run().rng_state
        resumed = resumed_task.run()
        for key in full.final_state:
            np.testing.assert_array_equal(
                full.final_state[key], resumed.final_state[key]
            )


class TestBackendProtocol:
    def test_custom_backend_instances_plug_in(self):
        class CountingBackend(Backend):
            name = "counting"

            def __init__(self):
                self.calls = 0

            def run_tasks(self, tasks):
                self.calls += 1
                return [task.run() for task in tasks]

        backend = CountingBackend()
        results = get_backend(backend).run_tasks([make_task(0), make_task(1)])
        assert backend.calls == 1
        assert len(results) == 2

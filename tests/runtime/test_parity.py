"""Serial/thread/process parity across every refactored fan-out site.

These are the acceptance tests for the runtime layer: the serial backend
must be bit-identical to the historical inline loops, and the parallel
backends must be bit-identical to serial — so parallelism is purely a
wall-clock optimisation.
"""

import numpy as np
import pytest

from repro.federated import FedAvgAggregator, FederatedSimulation
from repro.nn.models import MLP
from repro.training import TrainConfig
from repro.unlearning import (
    EarlyStopConfig,
    GoldfishConfig,
    GoldfishLossConfig,
    IncompetentTeacherConfig,
    ShardedClientTrainer,
    SisaConfig,
    SisaEnsemble,
    federated_goldfish,
    federated_incompetent_teacher,
    federated_rapid_retrain,
    federated_retrain,
)

from ..conftest import make_blob_federation, make_blobs

BACKENDS = ["serial", "thread", "process"]


def factory():
    return MLP(16, 3, np.random.default_rng(7))


CONFIG = TrainConfig(epochs=2, batch_size=10, learning_rate=0.05)


def assert_states_equal(a, b):
    assert sorted(a) == sorted(b)
    for key in a:
        np.testing.assert_array_equal(a[key], b[key])


def make_sim(backend=None, seed=3):
    from repro.data.dataset import FederatedDataset

    clients, test = make_blob_federation(
        num_clients=4, per_client=24, test_size=24, seed=seed
    )
    fed = FederatedDataset(client_datasets=clients, test_set=test)
    return FederatedSimulation(
        factory, fed, FedAvgAggregator(), CONFIG, seed=seed, backend=backend
    )


class TestSimulationParity:
    def test_serial_matches_legacy_inline_loop(self):
        """The task path under the serial backend reproduces the historical
        broadcast → client.local_train → upload loop bit for bit."""
        new = make_sim()
        legacy = make_sim()
        history = new.run(2)

        for round_index in range(2):
            participants = legacy.round_participants(round_index)
            legacy.server.broadcast(participants)
            updates = []
            for client in participants:
                client.local_train(CONFIG)
                updates.append(client.upload())
            legacy.server.aggregate(updates)

        assert_states_equal(new.server.global_state, legacy.server.global_state)
        # Client-side replicas and RNG positions advanced identically too.
        for a, b in zip(new.clients, legacy.clients):
            assert_states_equal(a.model.state_dict(), b.model.state_dict())
            assert a.rng.bit_generator.state == b.rng.bit_generator.state
        assert len(history) == 2

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_parallel_rounds_bit_identical_to_serial(self, backend):
        serial = make_sim(backend=None)
        parallel = make_sim(backend=backend)
        h_serial = serial.run(2)
        h_parallel = parallel.run(2)
        assert h_serial.accuracies == h_parallel.accuracies
        assert_states_equal(serial.server.global_state, parallel.server.global_state)
        for a, b in zip(serial.clients, parallel.clients):
            assert a.rng.bit_generator.state == b.rng.bit_generator.state


class TestSisaParity:
    SISA = SisaConfig(
        num_shards=3, num_slices=3, epochs_per_slice=1, batch_size=8,
        learning_rate=0.08,
    )

    def run_fit_delete(self, backend):
        dataset = make_blobs(num_samples=54, num_classes=3, shape=(1, 4, 4))
        ensemble = SisaEnsemble(factory, dataset, self.SISA, seed=0, backend=backend)
        ensemble.fit()
        # Deletion spanning two shards: both retrain chains run in one
        # backend submission.
        targets = [
            int(ensemble._shards[0].slice_indices[1][0]),
            int(ensemble._shards[2].slice_indices[2][0]),
        ]
        report = ensemble.delete(targets)
        return ensemble, report

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_two_shard_deletion_identical_under_parallel_backend(self, backend):
        serial_ensemble, serial_report = self.run_fit_delete(None)
        parallel_ensemble, parallel_report = self.run_fit_delete(backend)
        assert serial_report.shards_affected == parallel_report.shards_affected
        assert serial_report.slices_retrained == parallel_report.slices_retrained
        for a, b in zip(serial_ensemble._shards, parallel_ensemble._shards):
            assert sorted(a.checkpoints) == sorted(b.checkpoints)
            for slice_index in a.checkpoints:
                assert_states_equal(
                    a.checkpoints[slice_index], b.checkpoints[slice_index]
                )
            assert_states_equal(a.model.state_dict(), b.model.state_dict())
            assert a.rng_state == b.rng_state

    def test_delete_after_save_load_matches_live_ensemble(self, tmp_path):
        """The manifest persists each shard's RNG position, so a deletion
        on a reloaded ensemble retrains bit-identically to one on the
        live ensemble."""
        dataset = make_blobs(num_samples=54, num_classes=3, shape=(1, 4, 4))
        live = SisaEnsemble(factory, dataset, self.SISA, seed=0).fit()
        live.save(str(tmp_path))
        restored = SisaEnsemble.load(str(tmp_path), factory, dataset)
        target = int(live._shards[1].slice_indices[1][0])
        live.delete([target])
        restored.delete([target])
        for a, b in zip(live._shards, restored._shards):
            assert_states_equal(a.model.state_dict(), b.model.state_dict())
            assert a.rng_state == b.rng_state

    def test_shard_of_lookup_matches_partition(self):
        dataset = make_blobs(num_samples=54, num_classes=3, shape=(1, 4, 4))
        ensemble = SisaEnsemble(factory, dataset, self.SISA, seed=1)
        for index in range(len(dataset)):
            shard_index, slice_index = ensemble.shard_of(index)
            assert index in ensemble._shards[shard_index].slice_indices[slice_index]
        with pytest.raises(KeyError):
            ensemble.shard_of(10_000)


class TestShardedTrainerParity:
    def run_trainer(self, backend):
        dataset = make_blobs(num_samples=60, num_classes=3, shape=(1, 4, 4), seed=1)
        trainer = ShardedClientTrainer(
            dataset, 3, factory, np.random.default_rng(4), backend=backend
        )
        trainer.train_all(CONFIG)
        victims = np.concatenate(
            [trainer.shard_indices[0][:2], trainer.shard_indices[2][:2]]
        )
        trainer.delete(victims, CONFIG)
        return trainer

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_train_and_multi_shard_delete_identical(self, backend):
        serial = self.run_trainer(None)
        parallel = self.run_trainer(backend)
        assert serial.num_shards == parallel.num_shards
        for a, b in zip(serial.shard_states, parallel.shard_states):
            assert_states_equal(a, b)
        assert serial.shard_rng_states == parallel.shard_rng_states


class TestProtocolParity:
    GOLDFISH = GoldfishConfig(
        loss=GoldfishLossConfig(),
        train=TrainConfig(epochs=1, batch_size=10, learning_rate=0.05),
        early_stop=EarlyStopConfig(enabled=False),
    )
    LOCAL = TrainConfig(epochs=1, batch_size=10, learning_rate=0.05)

    def pretrained_sim(self):
        sim = make_sim(seed=9)
        sim.run(1)
        sim.clients[0].request_deletion(np.arange(4))
        return sim

    def run_protocol(self, name, backend):
        sim = self.pretrained_sim()
        if name == "goldfish":
            out = federated_goldfish(sim, self.GOLDFISH, 2, backend=backend)
        elif name == "b1":
            out = federated_retrain(sim, self.LOCAL, 2, backend=backend)
        elif name == "b2":
            out = federated_rapid_retrain(sim, self.LOCAL, 2, backend=backend)
        else:
            out = federated_incompetent_teacher(
                sim, IncompetentTeacherConfig(train=self.LOCAL), 2, backend=backend
            )
        return out

    @pytest.mark.parametrize("name", ["goldfish", "b1", "b2", "b3"])
    def test_process_backend_bit_identical(self, name):
        serial = self.run_protocol(name, None)
        parallel = self.run_protocol(name, "process")
        assert serial.round_accuracies == parallel.round_accuracies
        assert serial.local_epochs_total == parallel.local_epochs_total
        assert_states_equal(
            serial.global_model.state_dict(), parallel.global_model.state_dict()
        )

"""The pool's zero-redundancy transport: framing, broadcast cache, stats.

Covers the version-addressed broadcast cache (ref / delta / full wire
forms per worker slot), the protocol-5 out-of-band pipe framing, the
per-ticket byte accounting, and the cold-cache fallback after a worker
death — each asserted bit-identical to serial execution.
"""

import multiprocessing
import os
from dataclasses import dataclass

import numpy as np
import pytest

from repro.nn.models import RegistryModelFactory
from repro.runtime import PoolBackend, SerialBackend, TrainTask, capture_rng
from repro.runtime.pool import _recv_payload, _send_payload
from repro.training import TrainConfig

from ..conftest import make_blobs

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

FACTORY = RegistryModelFactory(name="mlp", num_classes=3, in_channels=1, image_size=4)
CONFIG = TrainConfig(epochs=1, batch_size=8, learning_rate=0.05)


def make_task(task_id=0, seed=0, model_state=None, codec="raw"):
    return TrainTask(
        task_id=task_id,
        model_factory=FACTORY,
        dataset=make_blobs(num_samples=24, num_classes=3, shape=(1, 4, 4), seed=seed),
        config=CONFIG,
        rng_state=capture_rng(np.random.default_rng(seed)),
        model_state=model_state,
        codec=codec,
    )


def assert_states_equal(a, b):
    assert set(a) == set(b)
    for key in a:
        np.testing.assert_array_equal(a[key], b[key])


@pytest.fixture
def pool():
    backend = PoolBackend(max_workers=1)
    yield backend
    backend.close()


class TestPipeFraming:
    def test_roundtrip_with_out_of_band_arrays(self):
        reader, writer = multiprocessing.Pipe(duplex=False)
        payload = {
            "weights": np.arange(1000, dtype=np.float64).reshape(25, 40),
            "meta": {"round": 3, "clients": [1, 2]},
            "small": np.float32(1.5),
        }
        sent = _send_payload(writer, payload)
        received, got = _recv_payload(reader)
        assert sent == got
        assert sent >= payload["weights"].nbytes  # arrays actually travelled
        np.testing.assert_array_equal(received["weights"], payload["weights"])
        assert received["meta"] == payload["meta"]

    def test_none_sentinel_roundtrips(self):
        reader, writer = multiprocessing.Pipe(duplex=False)
        _send_payload(writer, None)
        received, _ = _recv_payload(reader)
        assert received is None


@pytest.mark.skipif(not HAS_FORK, reason="pool tests rely on fork start method")
class TestBroadcastCache:
    def test_same_version_batch_ships_one_full_then_refs(self, pool):
        state = FACTORY().state_dict()
        tasks = [make_task(i, seed=i, model_state=state) for i in range(4)]
        serial = SerialBackend().run_tasks(
            [make_task(i, seed=i, model_state=state) for i in range(4)]
        )
        ticket = pool.submit(tasks)
        results = pool.drain(ticket)
        stats = pool.pop_ticket_stats(ticket)
        assert stats.broadcast_full == 1
        assert stats.broadcast_ref == 3
        assert stats.broadcast_delta == 0
        for a, b in zip(results, serial):
            assert_states_equal(a.state, b.state)
            assert a.rng_state == b.rng_state

    def test_new_version_ships_delta_against_cached(self, pool):
        state = FACTORY().state_dict()
        pool.drain(pool.submit([make_task(0, model_state=state)]))
        nearby = {
            key: value + np.full_like(value, 1e-9) for key, value in state.items()
        }
        ticket = pool.submit([make_task(1, seed=1, model_state=nearby)])
        result = pool.drain(ticket)[0]
        stats = pool.pop_ticket_stats(ticket)
        assert stats.broadcast_delta == 1
        assert stats.broadcast_full == 0
        serial = SerialBackend().run_tasks([make_task(1, seed=1, model_state=nearby)])
        assert_states_equal(result.state, serial[0].state)

    def test_per_ticket_stats_isolated_across_interleaved_batches(self, pool):
        state = FACTORY().state_dict()
        first = pool.submit([make_task(0, model_state=state)])
        second = pool.submit([make_task(1, seed=1, model_state=state)])
        pool.drain(first)
        pool.drain(second)
        stats_one = pool.pop_ticket_stats(first)
        stats_two = pool.pop_ticket_stats(second)
        # One worker: whichever dispatched first paid the full send; the
        # other rode the cache.  Jointly exactly one full and one ref.
        assert stats_one.broadcast_full + stats_two.broadcast_full == 1
        assert stats_one.broadcast_ref + stats_two.broadcast_ref == 1
        assert stats_one.bytes_down > 0 and stats_two.bytes_down > 0
        assert pool.pop_ticket_stats(first) is None  # claimed exactly once

    def test_cumulative_transport_stats_accumulate(self, pool):
        state = FACTORY().state_dict()
        pool.run_tasks([make_task(i, seed=i, model_state=state) for i in range(3)])
        totals = pool.transport_stats
        assert totals.broadcast_full == 1
        assert totals.broadcast_ref == 2
        assert totals.bytes_down > 0
        assert totals.bytes_up > 0

    def test_tasks_without_model_state_skip_the_cache(self, pool):
        ticket = pool.submit([make_task(0, model_state=None)])
        pool.drain(ticket)
        stats = pool.pop_ticket_stats(ticket)
        assert stats.broadcast_full == 0
        assert stats.broadcast_ref == 0
        assert stats.broadcast_delta == 0


_DIE_SENTINEL = "die-once-{pid}.sentinel"


@dataclass
class _DieOnceTrainTask(TrainTask):
    """A real TrainTask whose first worker dies mid-run (then succeeds)."""

    sentinel_path: str = ""

    def run(self):
        if self.sentinel_path and not os.path.exists(self.sentinel_path):
            with open(self.sentinel_path, "w"):
                pass
            os._exit(13)
        return super().run()


@pytest.mark.skipif(not HAS_FORK, reason="pool tests rely on fork start method")
class TestWorkerDeathColdCacheFallback:
    def test_respawned_worker_takes_full_state_path_bit_identically(
        self, pool, tmp_path
    ):
        # Warm the single worker's cache with version A.
        state = FACTORY().state_dict()
        warm = pool.submit([make_task(0, model_state=state)])
        pool.drain(warm)
        pool.pop_ticket_stats(warm)
        assert pool.pool.transport_stats.broadcast_full == 1

        # Same version again — would be a bare ref — but the worker dies
        # mid-task.  The respawned worker's slot starts cold, so the
        # resubmitted task must ship the full state again.
        task = _DieOnceTrainTask(
            task_id=1,
            model_factory=FACTORY,
            dataset=make_blobs(
                num_samples=24, num_classes=3, shape=(1, 4, 4), seed=1
            ),
            config=CONFIG,
            rng_state=capture_rng(np.random.default_rng(1)),
            model_state=state,
            sentinel_path=str(tmp_path / "die-once"),
        )
        ticket = pool.submit([task])
        result = pool.drain(ticket)[0]
        stats = pool.pop_ticket_stats(ticket)
        # First dispatch rode the warm cache (ref), the post-death retry
        # went cold (full): both wire forms are accounted on this ticket.
        assert stats.broadcast_ref == 1
        assert stats.broadcast_full == 1

        serial = SerialBackend().run_tasks(
            [make_task(1, seed=1, model_state=state)]
        )[0]
        assert_states_equal(result.state, serial.state)
        assert result.rng_state == serial.rng_state

    def test_death_between_rounds_still_bit_identical_under_delta(
        self, pool, tmp_path
    ):
        # Round 1 (codec=delta) warms the cache; then the worker is killed
        # outright between rounds; round 2 must respawn, ship full state
        # cold, and still decode to the serial result bitwise.
        state = FACTORY().state_dict()
        first = pool.drain(pool.submit([make_task(0, model_state=state, codec="delta")]))
        basis = state
        decoded_pool = first[0].resolve_state(basis)
        serial_first = SerialBackend().run_tasks(
            [make_task(0, model_state=state, codec="delta")]
        )[0]
        assert_states_equal(decoded_pool, serial_first.resolve_state(basis))

        os.kill(pool.pool.worker_pids()[0], 9)

        nearby = decoded_pool
        second = pool.run_tasks(
            [make_task(1, seed=1, model_state=nearby, codec="delta")]
        )[0]
        serial_second = SerialBackend().run_tasks(
            [make_task(1, seed=1, model_state=nearby, codec="delta")]
        )[0]
        assert_states_equal(
            second.resolve_state(nearby), serial_second.resolve_state(nearby)
        )
        assert pool.pool.transport_stats.broadcast_full >= 2  # cold after kill

"""Shadow-model membership inference."""

import numpy as np
import pytest

from repro.eval import LogisticAttacker, ShadowMIA, posterior_features
from repro.nn.models import MLP
from repro.training.config import TrainConfig
from repro.training.trainer import train

from ..conftest import make_blobs


class TestPosteriorFeatures:
    def test_shapes_and_signatures(self):
        probs = np.array([[0.7, 0.2, 0.1], [0.1, 0.1, 0.8]])
        labels = np.array([0, 2])
        features = posterior_features(probs, labels)
        assert features.shape == (2, 4)
        # true prob, max prob columns
        np.testing.assert_allclose(features[:, 0], [0.7, 0.8])
        np.testing.assert_allclose(features[:, 1], [0.7, 0.8])
        # loss = -log(true prob)
        np.testing.assert_allclose(features[:, 3], -np.log([0.7, 0.8]))

    def test_confident_sample_has_lower_entropy(self):
        probs = np.array([[0.98, 0.01, 0.01], [0.34, 0.33, 0.33]])
        features = posterior_features(probs, np.array([0, 0]))
        assert features[0, 2] < features[1, 2]

    def test_validation(self):
        with pytest.raises(ValueError, match="N, C"):
            posterior_features(np.ones(3), np.zeros(3, dtype=int))
        with pytest.raises(ValueError, match="mismatch"):
            posterior_features(np.ones((3, 2)) / 2, np.zeros(2, dtype=int))


class TestLogisticAttacker:
    def test_learns_a_separable_rule(self):
        rng = np.random.default_rng(0)
        members = rng.normal(2.0, 0.5, size=(100, 4))
        nonmembers = rng.normal(-2.0, 0.5, size=(100, 4))
        features = np.concatenate([members, nonmembers])
        labels = np.concatenate([np.ones(100), np.zeros(100)])
        attacker = LogisticAttacker().fit(features, labels)
        scores = attacker.predict_proba(features)
        assert (scores[:100] > 0.5).mean() > 0.95
        assert (scores[100:] < 0.5).mean() > 0.95

    def test_unfitted_rejected(self):
        with pytest.raises(RuntimeError):
            LogisticAttacker().predict_proba(np.ones((2, 4)))

    def test_validation(self):
        with pytest.raises(ValueError):
            LogisticAttacker(learning_rate=0.0)
        with pytest.raises(ValueError):
            LogisticAttacker(num_steps=0)
        with pytest.raises(ValueError):
            LogisticAttacker(l2=-1.0)
        attacker = LogisticAttacker()
        with pytest.raises(ValueError, match="binary"):
            attacker.fit(np.ones((3, 2)), np.array([0.0, 1.0, 2.0]))
        with pytest.raises(ValueError, match="both member"):
            attacker.fit(np.ones((3, 2)), np.ones(3))

    def test_constant_feature_column_handled(self):
        features = np.zeros((10, 2))
        features[:5, 0] = 1.0
        labels = np.concatenate([np.ones(5), np.zeros(5)])
        attacker = LogisticAttacker(num_steps=200).fit(features, labels)
        scores = attacker.predict_proba(features)
        assert (scores[:5] > 0.5).all()


class TestShadowMIA:
    @pytest.fixture(scope="class")
    def attack_setup(self):
        """Target overfits one half of a blob set; attacker gets its own
        auxiliary slice of the same distribution."""
        full = make_blobs(num_samples=160, num_classes=3, shape=(1, 4, 4),
                          seed=4, separation=1.0, noise=2.0)
        auxiliary = full.subset(range(80))
        member = full.subset(range(80, 120))
        nonmember = full.subset(range(120, 160))
        factory = lambda: MLP(16, 3, np.random.default_rng(5), hidden=(64,))
        config = TrainConfig(epochs=60, batch_size=8, learning_rate=0.1)
        target = factory()
        train(target, member, config, np.random.default_rng(1))
        mia = ShadowMIA(factory, config, num_shadows=3, seed=9)
        mia.fit(auxiliary)
        return mia, target, member, nonmember

    def test_attack_beats_chance_on_overfit_target(self, attack_setup):
        mia, target, member, nonmember = attack_setup
        report = mia.report(target, member, nonmember)
        assert report.auc > 0.6
        assert report.advantage > 0.1
        assert report.mean_member_score > report.mean_nonmember_score
        assert report.num_shadows == 3

    def test_scores_in_unit_interval(self, attack_setup):
        mia, target, member, _ = attack_setup
        scores = mia.membership_scores(target, member)
        assert scores.min() >= 0.0 and scores.max() <= 1.0

    def test_unfitted_rejected(self):
        factory = lambda: MLP(16, 3, np.random.default_rng(0))
        mia = ShadowMIA(factory, TrainConfig())
        dataset = make_blobs(num_samples=10, num_classes=3, shape=(1, 4, 4))
        with pytest.raises(RuntimeError):
            mia.membership_scores(factory(), dataset)

    def test_validation(self):
        factory = lambda: MLP(16, 3, np.random.default_rng(0))
        with pytest.raises(ValueError):
            ShadowMIA(factory, TrainConfig(), num_shadows=0)
        mia = ShadowMIA(factory, TrainConfig())
        tiny = make_blobs(num_samples=3, num_classes=3, shape=(1, 4, 4))
        with pytest.raises(ValueError, match="too small"):
            mia.fit(tiny)

"""JSD / L2 / t-test metric mathematics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.eval import (
    compare_models,
    jensen_shannon_divergence,
    kl_divergence,
    l2_distance,
    mean_jsd,
    t_test_p_value,
)


def random_dist(rng, n):
    p = rng.random(n) + 1e-3
    return p / p.sum()


class TestKL:
    def test_zero_for_identical(self, rng):
        p = random_dist(rng, 5)
        assert kl_divergence(p, p.copy()) == pytest.approx(0.0, abs=1e-12)

    def test_positive_for_different(self, rng):
        p = np.array([0.9, 0.1])
        q = np.array([0.1, 0.9])
        assert kl_divergence(p, q) > 0.5

    def test_asymmetric(self):
        p = np.array([0.9, 0.1])
        q = np.array([0.5, 0.5])
        assert kl_divergence(p, q) != pytest.approx(kl_divergence(q, p))

    def test_known_value(self):
        p = np.array([0.5, 0.5])
        q = np.array([0.25, 0.75])
        expected = 0.5 * np.log(0.5 / 0.25) + 0.5 * np.log(0.5 / 0.75)
        assert kl_divergence(p, q) == pytest.approx(expected)

    def test_handles_zeros_in_p(self):
        assert np.isfinite(kl_divergence(np.array([1.0, 0.0]), np.array([0.5, 0.5])))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            kl_divergence(np.ones(2) / 2, np.ones(3) / 3)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            kl_divergence(np.array([-0.5, 1.5]), np.array([0.5, 0.5]))


class TestJSD:
    def test_symmetric(self, rng):
        p, q = random_dist(rng, 6), random_dist(rng, 6)
        assert jensen_shannon_divergence(p, q) == pytest.approx(
            jensen_shannon_divergence(q, p)
        )

    def test_bounded_by_ln2(self):
        p = np.array([1.0, 0.0])
        q = np.array([0.0, 1.0])
        jsd = jensen_shannon_divergence(p, q)
        assert jsd == pytest.approx(np.log(2), abs=1e-9)

    def test_zero_for_identical(self, rng):
        p = random_dist(rng, 4)
        assert jensen_shannon_divergence(p, p.copy()) == pytest.approx(0.0, abs=1e-12)

    def test_mean_jsd_uses_mean_distributions(self, rng):
        probs_a = np.stack([random_dist(rng, 4) for _ in range(10)])
        probs_b = np.stack([random_dist(rng, 4) for _ in range(10)])
        expected = jensen_shannon_divergence(probs_a.mean(0), probs_b.mean(0))
        assert mean_jsd(probs_a, probs_b) == pytest.approx(expected)

    def test_mean_jsd_requires_2d(self, rng):
        with pytest.raises(ValueError):
            mean_jsd(random_dist(rng, 4), random_dist(rng, 4))


class TestL2:
    def test_zero_for_identical(self, rng):
        probs = np.stack([random_dist(rng, 5) for _ in range(8)])
        assert l2_distance(probs, probs.copy()) == 0.0

    def test_matches_mse(self, rng):
        a = np.stack([random_dist(rng, 5) for _ in range(8)])
        b = np.stack([random_dist(rng, 5) for _ in range(8)])
        assert l2_distance(a, b) == pytest.approx(((a - b) ** 2).mean())


class TestTTest:
    def test_identical_returns_one(self, rng):
        probs = np.stack([random_dist(rng, 5) for _ in range(30)])
        assert t_test_p_value(probs, probs.copy()) == 1.0

    def test_clearly_different_confidences_small_p(self, rng):
        confident = np.zeros((40, 4)) + 0.01
        confident[:, 0] = 0.97
        uniform = np.full((40, 4), 0.25) + rng.normal(0, 0.005, (40, 4))
        uniform = np.abs(uniform)
        uniform /= uniform.sum(axis=1, keepdims=True)
        assert t_test_p_value(confident, uniform) < 0.001

    def test_similar_distributions_large_p(self, rng):
        base = np.stack([random_dist(rng, 4) for _ in range(50)])
        jitter = base + rng.normal(0, 1e-4, base.shape)
        jitter = np.abs(jitter)
        jitter /= jitter.sum(axis=1, keepdims=True)
        assert t_test_p_value(base, jitter) > 0.05


class TestCompareModels:
    def test_self_comparison_is_null(self):
        from repro.nn.models import MLP
        from ..conftest import make_blobs
        model = MLP(16, 3, np.random.default_rng(0))
        ds = make_blobs(num_samples=20, num_classes=3, shape=(1, 4, 4))
        report = compare_models(model, model, ds)
        assert report.jsd == pytest.approx(0.0, abs=1e-12)
        assert report.l2 == 0.0
        assert report.t_test_p == 1.0
        assert report.as_row() == (report.jsd, report.l2, report.t_test_p)

    def test_different_models_diverge(self):
        from repro.nn.models import MLP
        from ..conftest import make_blobs
        a = MLP(16, 3, np.random.default_rng(0))
        b = MLP(16, 3, np.random.default_rng(99))
        ds = make_blobs(num_samples=20, num_classes=3, shape=(1, 4, 4))
        report = compare_models(a, b, ds)
        assert report.l2 > 0
        assert report.jsd >= 0


@settings(max_examples=50, deadline=None)
@given(
    hnp.arrays(np.float64, st.integers(2, 8),
               elements=st.floats(0.01, 10, allow_nan=False)),
    hnp.arrays(np.float64, st.integers(2, 8),
               elements=st.floats(0.01, 10, allow_nan=False)),
)
def test_property_jsd_bounds(p, q):
    """0 <= JSD <= ln 2 for any pair of (normalisable) distributions."""
    if len(p) != len(q):
        return
    jsd = jensen_shannon_divergence(p, q)
    assert -1e-12 <= jsd <= np.log(2) + 1e-9


@settings(max_examples=50, deadline=None)
@given(hnp.arrays(np.float64, st.integers(2, 8),
                  elements=st.floats(0.01, 10, allow_nan=False)))
def test_property_kl_nonnegative(p):
    """Gibbs inequality: KL(p‖q) >= 0."""
    rng = np.random.default_rng(int(p.sum() * 1000) % 2**31)
    q = rng.random(len(p)) + 0.01
    assert kl_divergence(p, q) >= -1e-10

"""Membership-inference attack metric."""

import numpy as np
import pytest

from repro.eval import membership_attack, unlearning_privacy_gain
from repro.eval.membership import ranking_auc as _auc
from repro.nn.models import MLP
from repro.training import TrainConfig, train

from ..conftest import make_blobs


def overfit_model(member_set, seed=0):
    """Train long enough to clearly memorise the members."""
    model = MLP(16, 3, np.random.default_rng(seed), hidden=(64,))
    train(model, member_set,
          TrainConfig(epochs=40, batch_size=10, learning_rate=0.2),
          np.random.default_rng(seed + 1))
    return model


class TestAUC:
    def test_perfect_separation(self):
        assert _auc(np.array([0.9, 0.8]), np.array([0.1, 0.2])) == 1.0

    def test_no_separation(self):
        rng = np.random.default_rng(0)
        scores = rng.random(500)
        auc = _auc(scores[:250], scores[250:])
        assert abs(auc - 0.5) < 0.1

    def test_ties_average(self):
        auc = _auc(np.array([0.5, 0.5]), np.array([0.5, 0.5]))
        assert auc == pytest.approx(0.5)


class TestMembershipAttack:
    def test_overfit_model_leaks(self):
        # Harder blobs so that train/holdout confidence gap is visible.
        members = make_blobs(num_samples=45, num_classes=3, shape=(1, 4, 4),
                             seed=0, separation=1.0, noise=1.2)
        holdout = make_blobs(num_samples=45, num_classes=3, shape=(1, 4, 4),
                             seed=0, separation=1.0, noise=1.2).shuffled(
            np.random.default_rng(9))
        # regenerate holdout from same distribution but fresh noise
        holdout = make_blobs(num_samples=45, num_classes=3, shape=(1, 4, 4),
                             seed=123, separation=1.0, noise=1.2)
        model = overfit_model(members)
        report = membership_attack(model, members, holdout)
        assert report.advantage > 0.2
        assert report.mean_member_confidence > report.mean_nonmember_confidence

    def test_fresh_model_does_not_leak(self):
        members = make_blobs(num_samples=40, num_classes=3, shape=(1, 4, 4), seed=0)
        holdout = make_blobs(num_samples=40, num_classes=3, shape=(1, 4, 4), seed=5)
        model = MLP(16, 3, np.random.default_rng(7))
        report = membership_attack(model, members, holdout)
        assert abs(report.auc - 0.5) < 0.25

    def test_empty_sets_rejected(self):
        members = make_blobs(num_samples=10, shape=(1, 4, 4))
        model = MLP(16, 3, np.random.default_rng(0))
        from repro.data import ArrayDataset
        empty = ArrayDataset(np.zeros((0, 1, 4, 4)), np.zeros(0, dtype=int), 3)
        with pytest.raises(ValueError):
            membership_attack(model, empty, members)
        with pytest.raises(ValueError):
            membership_attack(model, members, empty)

    def test_advantage_in_range(self):
        members = make_blobs(num_samples=20, shape=(1, 4, 4), seed=1)
        holdout = make_blobs(num_samples=20, shape=(1, 4, 4), seed=2)
        model = MLP(16, 3, np.random.default_rng(3))
        report = membership_attack(model, members, holdout)
        assert 0.0 <= report.advantage <= 1.0
        assert 0.0 <= report.auc <= 1.0


class TestPrivacyGain:
    def test_retraining_reduces_leakage(self):
        """After "unlearning" (here: a model that never saw the members),
        the membership advantage on the forget set must drop."""
        dist = dict(num_classes=3, shape=(1, 4, 4), separation=1.0, noise=1.2)
        members = make_blobs(num_samples=45, seed=0, **dist)
        holdout = make_blobs(num_samples=45, seed=123, **dist)
        other = make_blobs(num_samples=45, seed=77, **dist)

        original = overfit_model(members)
        unlearned = overfit_model(other, seed=3)  # trained without members
        gain = unlearning_privacy_gain(original, unlearned, members, holdout)
        assert gain > 0.0

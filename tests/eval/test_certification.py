"""Indistinguishability certification and relearn-time metrics."""

import numpy as np
import pytest

from repro.eval import CertificationReport, certify_outputs, relearn_time
from repro.nn.models import MLP
from repro.training.config import TrainConfig
from repro.training.trainer import train

from ..conftest import make_blobs


def fresh_model(seed=3):
    return MLP(16, 3, np.random.default_rng(seed))


@pytest.fixture(scope="module")
def probe():
    return make_blobs(num_samples=45, num_classes=3, shape=(1, 4, 4), seed=1)


class TestCertifyOutputs:
    def test_identical_models_have_zero_epsilon(self, probe):
        model = fresh_model()
        twin = fresh_model()
        twin.load_state_dict(model.state_dict())
        report = certify_outputs(model, twin, probe)
        assert report.epsilon_hat == pytest.approx(0.0, abs=1e-9)
        assert report.mean_jsd == pytest.approx(0.0, abs=1e-9)
        assert report.indistinguishable(0.1)

    def test_different_models_are_distinguishable(self, probe, rng):
        a = fresh_model(seed=0)
        b = fresh_model(seed=99)
        train(b, probe, TrainConfig(epochs=8, batch_size=9, learning_rate=0.1), rng)
        report = certify_outputs(a, b, probe)
        assert report.epsilon_hat > 0.1
        assert report.max_abs_log_ratio >= report.epsilon_hat
        assert report.num_probe_samples == len(probe)

    def test_epsilon_quantile_respects_delta(self, probe):
        """Smaller δ (stricter) gives a larger or equal ε̂."""
        a, b = fresh_model(0), fresh_model(7)
        strict = certify_outputs(a, b, probe, delta=0.01)
        loose = certify_outputs(a, b, probe, delta=0.5)
        assert strict.epsilon_hat >= loose.epsilon_hat

    def test_validation(self, probe):
        model = fresh_model()
        with pytest.raises(ValueError, match="delta"):
            certify_outputs(model, model, probe, delta=0.0)
        with pytest.raises(ValueError, match="non-empty"):
            certify_outputs(model, model, probe.subset([]))
        with pytest.raises(ValueError, match="epsilon_budget"):
            CertificationReport(0.1, 0.05, 0.2, 0.0, 10).indistinguishable(0.0)


class TestRelearnTime:
    def test_trained_model_relearns_faster_than_fresh(self, rng):
        """A model that still knows the forget set reaches low loss sooner."""
        forget = make_blobs(num_samples=30, num_classes=3, shape=(1, 4, 4), seed=2)
        config = TrainConfig(epochs=1, batch_size=6, learning_rate=0.08)
        knower = fresh_model()
        train(knower, forget, config.with_overrides(epochs=25), rng)
        report = relearn_time(
            fresh_model,
            knower.state_dict(),
            forget,
            config,
            loss_threshold=0.25,
            max_epochs=40,
            rng=rng,
        )
        assert report.unlearned_epochs is not None
        assert report.unlearned_epochs <= (report.fresh_epochs or report.max_epochs)
        assert report.speedup >= 1.0

    def test_suspicious_flags_large_speedup(self):
        from repro.eval import RelearnReport

        fast = RelearnReport(unlearned_epochs=2, fresh_epochs=20,
                             loss_threshold=0.1, max_epochs=50)
        assert fast.speedup == pytest.approx(10.0)
        assert fast.suspicious()
        even = RelearnReport(unlearned_epochs=18, fresh_epochs=20,
                             loss_threshold=0.1, max_epochs=50)
        assert not even.suspicious()
        with pytest.raises(ValueError):
            even.suspicious(tolerance=0.5)

    def test_censoring_uses_max_epochs(self):
        from repro.eval import RelearnReport

        censored = RelearnReport(unlearned_epochs=None, fresh_epochs=10,
                                 loss_threshold=0.1, max_epochs=50)
        assert censored.speedup == pytest.approx(10 / 50)

    def test_validation(self, rng):
        forget = make_blobs(num_samples=10, num_classes=3, shape=(1, 4, 4))
        config = TrainConfig()
        state = fresh_model().state_dict()
        with pytest.raises(ValueError, match="non-empty"):
            relearn_time(fresh_model, state, forget.subset([]), config)
        with pytest.raises(ValueError, match="loss_threshold"):
            relearn_time(fresh_model, state, forget, config, loss_threshold=0.0)
        with pytest.raises(ValueError, match="max_epochs"):
            relearn_time(fresh_model, state, forget, config, max_epochs=0)

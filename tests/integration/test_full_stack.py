"""Full-stack integration: the new substrates working together.

Each test chains several subsystems end to end the way a deployment
would, at micro scale:

* metered FL with history retention, then FedEraser erasure of a client;
* secure aggregation driving a real multi-round training loop;
* a deletion-manager-scheduled Goldfish run across two batches;
* SISA serving predictions through repeated deletion waves.
"""

import numpy as np
import pytest

from repro.data.dataset import FederatedDataset
from repro.federated import (
    CostMeter,
    FedAvgAggregator,
    FederatedSimulation,
    MeteredSimulationProxy,
    RoundHistoryStore,
    SecureAggregationRound,
    attach_history,
    state_math,
)
from repro.nn.models import MLP
from repro.training.config import TrainConfig
from repro.training.evaluation import evaluate
from repro.training.trainer import train
from repro.unlearning import (
    DeletionManager,
    FedEraser,
    FedEraserConfig,
    GoldfishConfig,
    GoldfishLossConfig,
    PeriodicPolicy,
    SisaConfig,
    SisaEnsemble,
    federated_goldfish,
)

from ..conftest import make_blob_federation, make_blobs


def blob_simulation(num_clients=3, per_client=15, test_size=18, seed=0):
    clients, test = make_blob_federation(
        num_clients=num_clients, per_client=per_client,
        test_size=test_size, seed=seed,
    )
    fed = FederatedDataset(client_datasets=clients, test_set=test)
    factory = lambda: MLP(16, 3, np.random.default_rng(7))
    config = TrainConfig(epochs=1, batch_size=5, learning_rate=0.05)
    sim = FederatedSimulation(factory, fed, FedAvgAggregator(), config, seed=seed)
    return sim, factory, config, test


class TestMeteredHistoryThenErasure:
    def test_metering_and_history_compose_with_federaser(self, rng):
        sim, factory, config, test = blob_simulation()
        store = attach_history(sim, RoundHistoryStore())
        initial = sim.server.initial_state
        metered = MeteredSimulationProxy(sim, CostMeter("pretrain"))
        metered.run(3)

        report = metered.meter.report()
        assert report.rounds == 3
        assert report.upload_bytes > 0
        assert len(store) == 3

        eraser = FedEraser(factory, FedEraserConfig(batch_size=5,
                                                    learning_rate=0.05))
        unlearned, eraser_report = eraser.unlearn(
            store, initial, [c.dataset for c in sim.clients], 0, rng
        )
        assert eraser_report.rounds_replayed == 3
        model = factory()
        model.load_state_dict(unlearned)
        _, accuracy = evaluate(model, test)
        assert accuracy > 0.5


class TestSecureTrainingLoop:
    def test_three_secure_rounds_match_plain_fedavg(self):
        """Running the whole FL loop through masked aggregation must be
        numerically identical (1e-6) to the plain loop, round for round."""
        sim_plain, factory, config, test = blob_simulation(seed=4)
        # A second, identical federation for the secure run.
        sim_ref, _, _, _ = blob_simulation(seed=4)

        secure_state = sim_ref.server.global_state
        rng = np.random.default_rng(0)
        for round_index in range(3):
            # plain round
            sim_plain.run_round(round_index)
            # secure round with identical data/seeds by construction:
            secure_round = SecureAggregationRound(
                [c.client_id for c in sim_ref.clients], round_index
            )
            for client in sim_ref.clients:
                client.receive_global(secure_state)
                client.local_train(config)
                secure_round.receive(secure_round.masked_update(
                    client.client_id, client.model.state_dict(),
                    len(client.dataset),
                ))
            secure_state = secure_round.aggregate()
        distance = state_math.l2_distance(
            sim_plain.server.global_state, secure_state
        )
        assert distance < 1e-6


class TestScheduledUnlearningWaves:
    def test_two_batches_through_the_manager(self):
        sim, factory, config, test = blob_simulation(per_client=20)
        sim.run(2)
        manager = DeletionManager(PeriodicPolicy(every_rounds=2))
        goldfish = GoldfishConfig(
            loss=GoldfishLossConfig(temperature=3.0, mu_c=0.25, mu_d=1.0),
            train=config,
        )
        unlearn = lambda s: federated_goldfish(s, goldfish, num_rounds=1)

        manager.submit(0, [0, 1], round_index=1)
        assert manager.maybe_execute(sim, 1, unlearn) is None
        first = manager.maybe_execute(sim, 2, unlearn)
        assert first is not None and first.num_requests == 1

        # Second wave against the *post-deletion* dataset (indices are
        # interpreted in the new, shrunken index space).
        manager.submit(0, [0], round_index=3)
        manager.submit(1, [2, 3], round_index=3)
        second = manager.maybe_execute(sim, 4, unlearn)
        assert second is not None and second.num_requests == 2

        assert manager.num_executions == 2
        assert len(sim.clients[0].dataset) == 20 - 2 - 1
        assert len(sim.clients[1].dataset) == 20 - 2
        _, accuracy = evaluate(sim.global_model(), test)
        assert accuracy > 0.5


class TestSisaDeletionWaves:
    def test_repeated_waves_keep_serving(self):
        dataset = make_blobs(num_samples=72, num_classes=3, shape=(1, 4, 4))
        factory = lambda: MLP(16, 3, np.random.default_rng(3))
        ensemble = SisaEnsemble(
            factory, dataset,
            SisaConfig(num_shards=3, num_slices=3, epochs_per_slice=2,
                       batch_size=8, learning_rate=0.08),
            seed=0,
        ).fit()
        rng = np.random.default_rng(5)
        deleted: set = set()
        for _ in range(3):
            candidates = [i for i in range(len(dataset)) if i not in deleted]
            wave = rng.choice(candidates, size=4, replace=False).tolist()
            report = ensemble.delete(wave)
            deleted.update(wave)
            assert report.num_deleted == 4
        assert ensemble.num_deleted == 12
        remaining = dataset.remove(sorted(deleted))
        assert ensemble.evaluate(remaining) > 0.7

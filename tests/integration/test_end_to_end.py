"""End-to-end behavioural tests: the paper's headline claims at micro scale.

These are slower than unit tests (several seconds each) but still small:
they train real (LeNet) models on the synthetic datasets and check the
*shape* of the paper's results — backdoors implant into the origin model,
Goldfish removes them while preserving accuracy, and the unlearned model
behaves like the retrained-from-scratch reference.
"""

import numpy as np
import pytest

from repro.experiments import SMOKE
from repro.experiments.common import (
    SimulationSnapshot,
    build_backdoor_federation,
    evaluate_model,
    pretrain,
    run_unlearning_method,
)

SCALE = SMOKE.with_overrides(
    train_size=600, test_size=250, pretrain_rounds=8, local_epochs=2,
    unlearn_rounds=5, batch_size=50,
)


@pytest.fixture(scope="module")
def pipeline():
    """One pretrained backdoored federation shared by the tests."""
    setup = build_backdoor_federation("mnist", SCALE, deletion_rate=0.08, seed=0)
    origin = pretrain(setup, SCALE)
    snapshot = SimulationSnapshot.capture(setup.sim)
    origin_metrics = evaluate_model(origin, setup)

    outcomes = {}
    for method in ("ours", "b1", "b3"):
        snapshot.restore(setup.sim)
        setup.register_deletion()
        outcome = run_unlearning_method(method, setup, SCALE)
        outcomes[method] = (outcome, evaluate_model(outcome.global_model, setup))
    snapshot.restore(setup.sim)
    return setup, origin, origin_metrics, outcomes


class TestBackdoorLifecycle:
    def test_origin_model_is_backdoored(self, pipeline):
        _, _, origin_metrics, _ = pipeline
        assert origin_metrics["backdoor"] > 50.0

    def test_origin_model_is_accurate(self, pipeline):
        _, _, origin_metrics, _ = pipeline
        assert origin_metrics["acc"] > 75.0

    def test_goldfish_removes_backdoor(self, pipeline):
        _, _, origin_metrics, outcomes = pipeline
        _, metrics = outcomes["ours"]
        assert metrics["backdoor"] < origin_metrics["backdoor"] / 2
        assert metrics["backdoor"] < 25.0

    def test_goldfish_preserves_accuracy(self, pipeline):
        _, _, origin_metrics, outcomes = pipeline
        _, metrics = outcomes["ours"]
        assert metrics["acc"] > origin_metrics["acc"] - 15.0

    def test_b1_reference_is_clean(self, pipeline):
        _, _, _, outcomes = pipeline
        _, metrics = outcomes["b1"]
        assert metrics["backdoor"] < 25.0

    def test_goldfish_behaves_like_b1(self, pipeline):
        """Tables VII–IX shape: ours close to retrain-from-scratch."""
        setup, _, _, outcomes = pipeline
        from repro.eval import compare_models
        ours_model = outcomes["ours"][0].global_model
        b1_model = outcomes["b1"][0].global_model
        report = compare_models(ours_model, b1_model, setup.test_set)
        assert report.jsd < 0.2  # bounded by ln 2 ≈ 0.69; close = small
        assert report.l2 < 0.2

    def test_deletion_physically_removed(self, pipeline):
        setup, _, _, _ = pipeline
        # After restore in the fixture the data is back — but during the
        # run the flows finalized deletions. Verify the mechanism directly:
        setup.register_deletion()
        client = setup.sim.clients[0]
        before = len(client.dataset)
        client.finalize_deletion()
        assert len(client.dataset) == before - len(setup.poison_indices)


class TestCrossMethodShape:
    def test_all_unlearned_models_beat_origin_on_backdoor(self, pipeline):
        _, _, origin_metrics, outcomes = pipeline
        for method, (_, metrics) in outcomes.items():
            assert metrics["backdoor"] < origin_metrics["backdoor"], method

    def test_all_methods_keep_usable_accuracy(self, pipeline):
        _, _, _, outcomes = pipeline
        for method, (_, metrics) in outcomes.items():
            assert metrics["acc"] > 50.0, method


class TestShardedDeletionIntegration:
    def test_sharded_client_recovers_after_deletion(self):
        """Fig. 7 shape: deletion at a mid-round; the sharded client
        retrains only affected shards and accuracy recovers."""
        from repro.data import make_dataset
        from repro.experiments.common import model_factory_for, train_config
        from repro.training import evaluate
        from repro.unlearning import ShardedClientTrainer

        train_set, test_set = make_dataset("mnist", 500, 200, seed=3)
        factory = model_factory_for(train_set, "lenet5")
        config = train_config(SCALE, epochs=1)
        trainer = ShardedClientTrainer(train_set, 5, factory,
                                       np.random.default_rng(0))
        for _ in range(3):
            trainer.train_all(config)
        _, acc_before = evaluate(trainer.local_model(), test_set)

        victim = np.random.default_rng(1).choice(500, 25, replace=False)
        report = trainer.delete(victim, config)
        assert 1 <= len(report.affected_shards) <= 5
        for _ in range(2):
            trainer.train_all(config)
        _, acc_after = evaluate(trainer.local_model(), test_set)
        assert acc_after > acc_before - 0.1


class TestAggregationIntegration:
    def test_adaptive_aggregation_helps_under_heterogeneity(self):
        """Fig. 8 shape: with heterogeneous clients, the adaptive
        aggregator reaches higher early-round accuracy than FedAvg."""
        from repro.data import make_dataset, make_federated
        from repro.federated import FederatedSimulation, make_aggregator
        from repro.experiments.common import model_factory_for, train_config

        train_set, test_set = make_dataset("mnist", 800, 300, seed=2)
        factory = model_factory_for(train_set, "lenet5")
        config = train_config(SCALE)

        def run(name, seed):
            fed = make_federated(train_set, test_set, 5,
                                 np.random.default_rng(seed),
                                 strategy="heterogeneous")
            agg = make_aggregator(name, test_set=test_set, model_factory=factory)
            sim = FederatedSimulation(factory, fed, agg, config, seed=7)
            return sim.run(4).accuracies

        # Average over a few partitions to damp seed noise. The FedAvg
        # baseline is the uniform-mean variant (see fig8 module rationale).
        gaps = []
        for seed in (11, 12, 13):
            fedavg = run("fedavg_uniform", seed)
            adaptive = run("adaptive", seed)
            gaps.append(np.mean(adaptive[:3]) - np.mean(fedavg[:3]))
        assert np.mean(gaps) > 0.0  # adaptive wins the early rounds

"""Vectorized unlearning protocol rounds and SISA chains.

The retraining inner loops of the unlearning protocols (Goldfish, B1
retrain-from-scratch, B2 rapid retraining) and the SISA per-shard
slice chains route through the same :class:`VectorizedCohort` substrate
as federated training rounds.  The contract is identical: opting in is
**bit-for-bit** invisible in every model, checkpoint, and RNG stream;
anything the substrate cannot fuse falls back per client with a
recorded reason.
"""

import numpy as np
import pytest

from repro.data import FederatedDataset
from repro.federated import FederatedSimulation, FedAvgAggregator
from repro.nn.models import MLP
from repro.training import TrainConfig
from repro.unlearning import (
    GoldfishConfig,
    GoldfishLossConfig,
    IncompetentTeacherConfig,
    SisaConfig,
    SisaEnsemble,
    federated_goldfish,
    federated_incompetent_teacher,
    federated_rapid_retrain,
    federated_retrain,
)

from ..conftest import make_blob_federation, make_blobs

CONFIG = TrainConfig(epochs=2, batch_size=10, learning_rate=0.15)
GOLDFISH = GoldfishConfig(loss=GoldfishLossConfig(), train=CONFIG)


def build_sim(vectorize, seed=0, deletions=((0, 5),)):
    clients, test = make_blob_federation(3, per_client=30, test_size=60,
                                         seed=seed)
    fed = FederatedDataset(client_datasets=clients, test_set=test)
    sim = FederatedSimulation(
        lambda: MLP(16, 3, np.random.default_rng(42)),
        fed, FedAvgAggregator(), CONFIG, seed=seed, vectorize=vectorize,
    )
    sim.run(3)  # pretrain
    for client_index, count in deletions:
        sim.clients[client_index].request_deletion(np.arange(count))
    return sim


def assert_states_equal(a, b):
    assert set(a) == set(b)
    for key in a:
        np.testing.assert_array_equal(a[key], b[key])


def assert_protocol_parity(protocol, deletions=((0, 5),)):
    ref_sim = build_sim(False, deletions=deletions)
    ref_out = protocol(ref_sim)
    vec_sim = build_sim(True, deletions=deletions)
    vec_out = protocol(vec_sim)
    assert_states_equal(ref_out.global_model.state_dict(),
                        vec_out.global_model.state_dict())
    for a, b in zip(ref_sim.clients, vec_sim.clients):
        assert a.rng.bit_generator.state == b.rng.bit_generator.state
    return vec_sim.vectorize_report()


class TestProtocolParity:
    def test_goldfish_bit_identical_and_fused(self):
        report = assert_protocol_parity(
            lambda s: federated_goldfish(s, GOLDFISH, num_rounds=2)
        )
        assert report["rounds_vectorized"] > 0

    def test_goldfish_multi_deletion_ragged_cohort(self):
        # Two clients with different-size forget sets fuse into one
        # ragged stacked task (unequal retain AND forget sizes); the
        # third, deletion-free client forms its own singleton group.
        report = assert_protocol_parity(
            lambda s: federated_goldfish(s, GOLDFISH, num_rounds=2),
            deletions=((0, 5), (1, 7)),
        )
        assert report["rounds_vectorized"] > 0

    def test_retrain_bit_identical(self):
        report = assert_protocol_parity(
            lambda s: federated_retrain(s, CONFIG, num_rounds=2)
        )
        assert report["rounds_vectorized"] > 0

    def test_rapid_retrain_bit_identical(self):
        # B2 carries per-client diagonal-FIM optimizer state; the
        # stacked run must thread it through bit-exactly.
        report = assert_protocol_parity(
            lambda s: federated_rapid_retrain(s, CONFIG, num_rounds=2)
        )
        assert report["rounds_vectorized"] > 0

    def test_incompetent_teacher_records_fallback(self):
        # B3's distillation task has no stacked implementation: those
        # units run per-client with the reason recorded (the deletion-free
        # clients in the same batch still fuse as plain train tasks), and
        # the rounds stay bit-identical either way.
        report = assert_protocol_parity(
            lambda s: federated_incompetent_teacher(
                s, IncompetentTeacherConfig(train=CONFIG), num_rounds=2
            )
        )
        reasons = report["fallback_reasons"]
        key = "no vectorized implementation for _IncompetentClientTask"
        assert reasons.get(key, 0) > 0


def build_sisa(vectorize, seed=5):
    clients, _ = make_blob_federation(1, per_client=120, test_size=30, seed=3)
    config = SisaConfig(num_shards=3, num_slices=4, epochs_per_slice=1,
                        batch_size=10, learning_rate=0.1)
    ensemble = SisaEnsemble(
        lambda: MLP(16, 3, np.random.default_rng(42)),
        clients[0], config, seed=seed, vectorize=vectorize,
    ).fit()
    ensemble.delete([1, 45, 90])
    ensemble.delete([7, 60])
    return ensemble


class TestSisaParity:
    def test_fit_and_delete_bit_identical(self):
        ref = build_sisa(False)
        vec = build_sisa(True)
        for a, b in zip(ref._shards, vec._shards):
            assert_states_equal(a.model.state_dict(), b.model.state_dict())
            assert set(a.checkpoints) == set(b.checkpoints)
            for key in a.checkpoints:
                assert_states_equal(a.checkpoints[key], b.checkpoints[key])
            assert a.rng_state == b.rng_state

    def test_report_shape_and_tallies(self):
        vec = build_sisa(True)
        report = vec.vectorize_report()
        assert set(report) == {"requested", "rounds_vectorized",
                               "rounds_fallback", "fallback_reasons", "chunks"}
        assert report["requested"] is True
        assert report["rounds_vectorized"] > 0
        assert sum(report["chunks"].values()) > 0

    def test_off_by_default(self):
        ref = build_sisa(False)
        report = ref.vectorize_report()
        assert report == {
            "requested": False,
            "rounds_vectorized": 0,
            "rounds_fallback": 0,
            "fallback_reasons": {},
            "chunks": {},
        }

    def test_vectorized_predictions_match(self):
        dataset = make_blobs(num_samples=30, num_classes=3, shape=(1, 4, 4),
                             seed=9)
        ref = build_sisa(False)
        vec = build_sisa(True)
        np.testing.assert_array_equal(
            ref.predict(dataset.images), vec.predict(dataset.images)
        )

"""Hypothesis property tests on the Goldfish composite loss."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn import Tensor
from repro.unlearning import GoldfishLoss, GoldfishLossConfig, adaptive_temperature


def _logits(seed, n, classes, scale=2.0):
    return np.random.default_rng(seed).normal(size=(n, classes)) * scale


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 500),
    n=st.integers(2, 12),
    classes=st.integers(2, 8),
    mu_c=st.floats(0.0, 2.0),
    mu_d=st.floats(0.0, 2.0),
)
def test_composite_identity(seed, n, classes, mu_c, mu_d):
    """total == hard_retain − λ·min(hard_forget, ln C) + µc·Lc + µd·Ld."""
    config = GoldfishLossConfig(mu_c=mu_c, mu_d=mu_d, forget_scale=0.5)
    loss_fn = GoldfishLoss(config, num_retain=100, num_forget=50)
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, classes, size=n)
    total = loss_fn(
        Tensor(_logits(seed, n, classes)),
        labels,
        teacher_logits_retain=Tensor(_logits(seed + 1, n, classes)),
        student_logits_forget=Tensor(_logits(seed + 2, n, classes)),
        labels_forget=labels,
    )
    b = loss_fn.last_breakdown
    capped_forget = min(b.hard_forget, np.log(classes))
    expected = (
        b.hard_retain - 0.5 * capped_forget
        + (mu_c * b.confusion if mu_c > 0 else 0.0)
        + (mu_d * b.distillation if mu_d > 0 else 0.0)
    )
    np.testing.assert_allclose(total.item(), expected, atol=1e-8)
    np.testing.assert_allclose(total.item(), b.total, atol=1e-12)


@settings(max_examples=40, deadline=None)
@given(
    num_retain=st.integers(1, 10_000),
    num_forget=st.integers(0, 10_000),
)
def test_auto_forget_scale_bounds(num_retain, num_forget):
    loss_fn = GoldfishLoss(GoldfishLossConfig(), num_retain, num_forget)
    assert 0.0 <= loss_fn.forget_scale <= 1.0
    if num_forget <= num_retain:
        np.testing.assert_allclose(loss_fn.forget_scale, num_forget / num_retain)


@settings(max_examples=40, deadline=None)
@given(
    t0=st.floats(0.5, 10.0),
    retain=st.integers(1, 1000),
    forget=st.integers(0, 1000),
)
def test_adaptive_temperature_bounds(t0, retain, forget):
    """T is bounded by [min_temperature, α·T0] and monotone in forget share."""
    temp = adaptive_temperature(t0, retain, forget)
    assert temp >= 1.0
    assert temp <= np.e * t0 + 1e-12
    if forget < 1000:
        larger = adaptive_temperature(t0, retain, forget + 1)
        assert larger >= temp - 1e-12


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 300), classes=st.integers(2, 6))
def test_confusion_loss_nonnegative_and_bounded(seed, classes):
    """Lc = mean √Var(p) is in [0, 0.5] (max variance of a prob. vector)."""
    from repro.unlearning import confusion_loss
    logits = Tensor(_logits(seed, 5, classes, scale=8.0))
    value = confusion_loss(logits).item()
    assert 0.0 <= value <= 0.5 + 1e-9

"""Co-scheduling the unlearning service inside a live federation run.

:meth:`UnlearningService.co_schedule` rides the async engine's
pre-round hooks, so deletion windows are polled/submitted at the top of
every aggregation event and retrain chains share the round loop (and,
in production, the backend workers) with client training.  The
``deletion_sla`` experiment's ``contention`` knob turns the same
machinery into a measurement: time-to-forget metered under training
load.
"""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.data import FederatedDataset
from repro.experiments.deletion_sla import run_deletion_sla
from repro.experiments.scale import get_scale
from repro.experiments.spec import ExperimentSpec, get_scenario
from repro.federated import (
    AsyncRoundConfig,
    FedAvgAggregator,
    FederatedSimulation,
    SeededLatency,
)
from repro.nn.models import RegistryModelFactory
from repro.training import TrainConfig
from repro.unlearning import (
    ImmediatePolicy,
    RequestState,
    SisaConfig,
    SisaEnsemble,
    UnlearningService,
)

from ..conftest import make_blob_federation, make_blobs

FACTORY = RegistryModelFactory(name="mlp", num_classes=3, in_channels=1, image_size=4)
SISA = SisaConfig(num_shards=3, num_slices=2, epochs_per_slice=1, batch_size=8)
DATASET = make_blobs(num_samples=72, num_classes=3, shape=(1, 4, 4), seed=0)


def make_service(tmp_path):
    ensemble = SisaEnsemble(FACTORY, DATASET, SISA, seed=5).fit()
    return UnlearningService(
        ensemble, directory=str(tmp_path), policy=ImmediatePolicy(), seed=5
    )


def make_async_sim(seed=3):
    clients, test = make_blob_federation(
        num_clients=4, per_client=24, test_size=24, seed=seed
    )
    fed = FederatedDataset(client_datasets=clients, test_set=test)
    return FederatedSimulation(
        FACTORY,
        fed,
        FedAvgAggregator(),
        TrainConfig(epochs=1, batch_size=8, learning_rate=0.1),
        seed=seed,
        async_config=AsyncRoundConfig(buffer_size=2),
        latency_model=SeededLatency(seed=seed + 1),
    )


class TestCoSchedule:
    def test_hook_registers_ticks_and_detaches(self, tmp_path):
        service = make_service(tmp_path)
        beats = []
        original_tick = service.tick
        service.tick = lambda round_index: beats.append(round_index) or original_tick(
            round_index
        )
        engine = SimpleNamespace(pre_round_hooks=[])
        hook = service.co_schedule(engine)
        assert engine.pre_round_hooks == [hook]
        hook(0)
        hook(1)
        assert beats == [0, 1]
        engine.pre_round_hooks.remove(hook)  # documented detach path
        assert engine.pre_round_hooks == []
        service.close()

    def test_service_certifies_during_live_async_rounds(self, tmp_path):
        service = make_service(tmp_path)
        sim = make_async_sim()
        engine = sim.engine()
        service.co_schedule(engine)

        request = service.submit(client_id=0, indices=[3, 40], round_index=0)
        before = sim.server.global_state
        for round_index in range(3):
            engine.run_round(round_index)
        service.drain(3)

        # The deletion certified *while* federation rounds were training.
        assert request.state is RequestState.CERTIFIED
        assert request.certified_round is not None
        # And the federation genuinely progressed around it.
        changed = any(
            not np.array_equal(before[key], sim.server.global_state[key])
            for key in before
        )
        assert changed
        service.close()

    def test_co_scheduled_run_matches_standalone_shard_states(self, tmp_path):
        # Co-scheduling changes *when* ticks happen, not what a certified
        # window computes: same request stream → bit-identical shards.
        standalone = make_service(tmp_path / "standalone")
        standalone.submit(client_id=0, indices=[3, 40], round_index=0)
        standalone.tick(0)
        standalone.drain(1)

        contended = make_service(tmp_path / "contended")
        engine = make_async_sim().engine()
        contended.co_schedule(engine)
        contended.submit(client_id=0, indices=[3, 40], round_index=0)
        engine.run_round(0)
        contended.drain(1)

        for mine, theirs in zip(
            contended.ensemble._shards, standalone.ensemble._shards
        ):
            for key, value in theirs.model.state_dict().items():
                np.testing.assert_array_equal(mine.model.state_dict()[key], value)
        standalone.close()
        contended.close()


class TestDeletionSlaContention:
    def test_contended_run_certifies_and_stamps_headline(self):
        exp = ExperimentSpec(
            experiment_id="test:deletion-sla-contention",
            title="time-to-forget under training load",
            kind="deletion_sla",
            scenario=get_scenario("clean_deletion"),
            params={
                "num_requests": 2,
                "rate": 1.0,
                "policies": ("immediate",),
                "contention": True,
            },
        )
        result = run_deletion_sla(exp, get_scale("smoke"), seed=0)
        (row,) = result.rows
        assert row["requests"] == 2  # everything submitted certified
        assert row["p50_rounds"] <= row["p95_rounds"]
        headline = result.runtime["deletion_sla"]
        assert headline["contention"] is True
        assert headline["policy"] == "immediate"

    def test_uncontended_headline_says_so(self):
        exp = ExperimentSpec(
            experiment_id="test:deletion-sla-idle",
            title="time-to-forget on an idle system",
            kind="deletion_sla",
            scenario=get_scenario("clean_deletion"),
            params={"num_requests": 2, "rate": 1.0, "policies": ("immediate",)},
        )
        result = run_deletion_sla(exp, get_scale("smoke"), seed=0)
        assert result.runtime["deletion_sla"]["contention"] is False

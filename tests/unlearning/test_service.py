"""The durable unlearning service: state machine, WAL, crash recovery.

Contract under test: every transition is journaled write-ahead; replay
after a crash (worker kill, torn journal tail, duplicate resubmission)
rebuilds the service and re-certifies interrupted windows with shard
states **bit-identical** to an uninterrupted run.
"""

import os

import numpy as np
import pytest

from repro.nn.models import RegistryModelFactory
from repro.runtime import PoolBackend
from repro.unlearning import (
    BatchSizePolicy,
    DeletionManager,
    FaultInjector,
    Journal,
    JournalCorruption,
    PoissonArrivals,
    RequestState,
    ServiceRequest,
    SisaConfig,
    SisaEnsemble,
    SlaMeter,
    UnlearningService,
    replay_journal,
)

from ..conftest import make_blobs

FACTORY = RegistryModelFactory(name="mlp", num_classes=3, in_channels=1, image_size=4)
SISA = SisaConfig(num_shards=3, num_slices=2, epochs_per_slice=1, batch_size=8)
DATASET = make_blobs(num_samples=72, num_classes=3, shape=(1, 4, 4), seed=0)

# Shard facts for seed=5: indices 3, 40, 70 land in shard 2; 2, 41 in
# shard 1 (see test_deletion_service.py, which derives the same layout).


def fresh_ensemble(backend=None):
    return SisaEnsemble(FACTORY, DATASET, SISA, seed=5, backend=backend).fit()


def shard_states(ensemble):
    return [
        {key: value.copy() for key, value in shard.model.state_dict().items()}
        for shard in ensemble._shards
    ]


def assert_states_equal(actual, expected):
    assert len(actual) == len(expected)
    for got, want in zip(actual, expected):
        assert set(got) == set(want)
        for key in want:
            np.testing.assert_array_equal(got[key], want[key])


def journal_events(directory):
    return [
        record["event"]
        for record in replay_journal(os.path.join(str(directory), "journal.jsonl"))
    ]


def reference_states(indices_by_round):
    """Barriered serial run: the bit-identity oracle."""
    ensemble = fresh_ensemble()
    manager = DeletionManager(BatchSizePolicy(1))
    for round_index, indices in indices_by_round:
        manager.submit(client_id=0, indices=indices, round_index=round_index)
        manager.maybe_execute_batched(ensemble, round_index)
    return shard_states(ensemble)


class TestStateMachine:
    def test_lifecycle_and_journal_order(self, tmp_path):
        """received → validated → scheduled → retraining → certified,
        with every transition journaled before it takes effect."""
        with UnlearningService(
            fresh_ensemble(), str(tmp_path / "svc"), policy=BatchSizePolicy(2)
        ) as service:
            first = service.submit(0, [3], 1, request_id="r1")
            assert first.state == RequestState.VALIDATED
            assert service.tick(1)["submitted"] is None  # policy not fired
            service.submit(0, [40], 1, request_id="r2")
            out = service.tick(1)
            assert out["submitted"] is not None
            service.drain(2)
            assert service.states() == {"r1": "certified", "r2": "certified"}
            # The serial backend completes the window inside the same
            # round it was submitted, so time-to-forget is zero rounds.
            assert first.time_to_forget_rounds == 0
            assert first.time_to_forget_seconds is not None
        records = replay_journal(str(tmp_path / "svc" / "journal.jsonl"))
        assert [r["event"] for r in records] == [
            "received",
            "validated",
            "received",
            "validated",
            "scheduled",
            "retraining",
            "certified",
        ]
        assert [r["seq"] for r in records] == list(range(len(records)))
        scheduled = next(r for r in records if r["event"] == "scheduled")
        assert scheduled["requests"] == ["r1", "r2"]
        assert scheduled["indices"] == [3, 40]
        assert scheduled["shards"] == [2]

    def test_sla_report_after_certification(self, tmp_path):
        with UnlearningService(
            fresh_ensemble(), str(tmp_path / "svc"), policy=BatchSizePolicy(1)
        ) as service:
            service.submit(0, [3], 0, request_id="r1")
            service.tick(0)
            service.drain(1)
            report = service.sla.report()
        assert report["certified_requests"] == 1
        assert report["p50_rounds"] == 0.0  # serial: certified same round
        assert report["p95_rounds"] == 0.0
        assert report["p50_seconds"] >= 0.0

    def test_rerequest_of_deleted_index_certifies_as_noop(self, tmp_path):
        """Indices already forgotten re-certify without retraining."""
        with UnlearningService(
            fresh_ensemble(), str(tmp_path / "svc"), policy=BatchSizePolicy(1)
        ) as service:
            service.submit(0, [3], 0, request_id="r1")
            service.tick(0)
            service.drain(1)
            before = shard_states(service.ensemble)
            service.submit(0, [3], 2, request_id="r2")
            service.tick(2)
            service.drain(3)
            assert service.states()["r2"] == RequestState.CERTIFIED
            assert_states_equal(shard_states(service.ensemble), before)
        events = journal_events(tmp_path / "svc")
        assert "noop" in events
        assert events.count("retraining") == 1


class TestValidation:
    def test_empty_index_set_rejected_with_clear_error(self, tmp_path):
        with UnlearningService(
            fresh_ensemble(), str(tmp_path / "svc"), policy=BatchSizePolicy(1)
        ) as service:
            with pytest.raises(ValueError, match="no indices"):
                service.submit(0, [], 0, request_id="bad")
            assert service.states() == {"bad": RequestState.FAILED}
            assert (
                service.requests["bad"].failure_reason
                == "deletion request with no indices"
            )
            assert service.manager.num_pending == 0
            # A bad request does not poison well-formed ones.
            service.submit(0, [3], 0, request_id="good")
            service.tick(0)
            service.drain(1)
            assert service.states()["good"] == RequestState.CERTIFIED
        assert journal_events(tmp_path / "svc")[:3] == [
            "received",
            "failed",
            "received",
        ]

    def test_out_of_range_index_rejected(self, tmp_path):
        with UnlearningService(
            fresh_ensemble(), str(tmp_path / "svc")
        ) as service:
            with pytest.raises(ValueError, match="out of range"):
                service.submit(0, [len(DATASET)], 0, request_id="oob")
            assert service.states()["oob"] == RequestState.FAILED

    def test_fresh_start_on_populated_directory_refused(self, tmp_path):
        with UnlearningService(
            fresh_ensemble(), str(tmp_path / "svc")
        ) as service:
            service.submit(0, [3], 0, request_id="r1")
        with pytest.raises(RuntimeError, match="recover"):
            UnlearningService(fresh_ensemble(), str(tmp_path / "svc"))


class TestDuplicates:
    def test_duplicate_request_id_returns_original(self, tmp_path):
        with UnlearningService(
            fresh_ensemble(), str(tmp_path / "svc"), policy=BatchSizePolicy(5)
        ) as service:
            first = service.submit(0, [3], 0, request_id="dup")
            again = service.submit(0, [3, 40], 4, request_id="dup")
            assert again is first
            assert service.duplicates == 1
            assert service.manager.num_pending == 1  # no second enqueue
        assert journal_events(tmp_path / "svc") == [
            "received",
            "validated",
            "duplicate",
        ]

    def test_duplicate_detected_across_restart(self, tmp_path):
        with UnlearningService(
            fresh_ensemble(), str(tmp_path / "svc"), policy=BatchSizePolicy(1)
        ) as service:
            service.submit(0, [3], 0, request_id="dup")
            service.tick(0)
            service.drain(1)
        recovered = UnlearningService.recover(
            str(tmp_path / "svc"), model_factory=FACTORY, dataset=DATASET
        )
        with recovered:
            again = recovered.submit(0, [3], 5, request_id="dup")
            assert again.state == RequestState.CERTIFIED
            assert recovered.duplicates == 1
            assert recovered.manager.num_pending == 0

    def test_auto_ids_resume_past_recovered_requests(self, tmp_path):
        with UnlearningService(
            fresh_ensemble(), str(tmp_path / "svc"), policy=BatchSizePolicy(5)
        ) as service:
            auto = service.submit(0, [3], 0)
            assert auto.request_id == "req-000000"
        recovered = UnlearningService.recover(
            str(tmp_path / "svc"), model_factory=FACTORY, dataset=DATASET
        )
        with recovered:
            fresh = recovered.submit(0, [40], 1)
            assert fresh.request_id == "req-000001"


class TestConcurrency:
    def test_disjoint_shard_windows_in_flight_together(self, tmp_path):
        """Per-shard locking: two windows demonstrably retrain at once."""
        backend = PoolBackend(max_workers=2)
        ensemble = fresh_ensemble(backend=backend)
        try:
            service = UnlearningService(
                ensemble, str(tmp_path / "svc"), policy=BatchSizePolicy(1)
            )
            service.submit(0, [3], 0, request_id="a")  # shard 2
            assert service.service.maybe_submit(0) is not None
            service.submit(0, [2], 1, request_id="b")  # shard 1
            assert service.service.maybe_submit(1) is not None
            assert service.windows_in_flight == 2
            service.drain(2)
            assert service.max_windows_in_flight >= 2
            assert service.states() == {"a": "certified", "b": "certified"}
            service.close()
        finally:
            backend.close()


class TestCrashRecovery:
    def test_recover_after_clean_shutdown_is_bit_identical(self, tmp_path):
        expected = reference_states([(0, [3, 40])])
        with UnlearningService(
            fresh_ensemble(), str(tmp_path / "svc"), policy=BatchSizePolicy(1)
        ) as service:
            service.submit(0, [3, 40], 0, request_id="r1")
            service.tick(0)
            service.drain(1)
            assert_states_equal(shard_states(service.ensemble), expected)
        recovered = UnlearningService.recover(
            str(tmp_path / "svc"), model_factory=FACTORY, dataset=DATASET
        )
        with recovered:
            assert recovered.states() == {"r1": "certified"}
            assert recovered.sla.num_certified == 1
            assert_states_equal(shard_states(recovered.ensemble), expected)
            assert recovered.ensemble.deleted_indices >= {3, 40}

    def test_worker_kill_between_begin_and_finish_recovers(self, tmp_path):
        """Satellite: a pool worker dies after ``delete_begin`` but before
        ``delete_finish``; the pool's retry budget re-runs the chain and
        drain certifies shard states bit-identical to a no-fault run."""
        expected = reference_states([(0, [3, 40])])
        backend = PoolBackend(max_workers=2, max_task_retries=1)
        ensemble = fresh_ensemble(backend=backend)
        try:
            injector = FaultInjector(
                str(tmp_path / "faults"), seed=3, kill_probability=1.0, max_kills=1
            )
            service = UnlearningService(
                ensemble,
                str(tmp_path / "svc"),
                policy=BatchSizePolicy(2),
                task_filter=injector.task_filter,
            )
            service.submit(0, [3], 0, request_id="r1")
            service.submit(0, [40], 0, request_id="r2")
            out = service.tick(0)
            assert out["submitted"] is not None
            assert injector.kills_planned == 1
            service.drain(1)
            assert service.states() == {"r1": "certified", "r2": "certified"}
            assert_states_equal(shard_states(ensemble), expected)
            # The kill really happened: the marker file is on disk.
            markers = os.listdir(str(tmp_path / "faults"))
            assert any(name.startswith("kill-w") for name in markers)
            service.close()
        finally:
            backend.close()

    def test_crash_mid_retraining_resubmits_and_matches(self, tmp_path):
        """Process dies with a window journaled ``retraining`` but never
        certified: recovery resubmits it from the journaled index set and
        the re-certified shard states are bit-identical."""
        expected = reference_states([(0, [3, 40])])
        backend = PoolBackend(max_workers=2, max_task_retries=1)
        ensemble = fresh_ensemble(backend=backend)
        try:
            injector = FaultInjector(
                str(tmp_path / "faults"), seed=7, kill_probability=1.0, max_kills=2
            )
            service = UnlearningService(
                ensemble,
                str(tmp_path / "svc"),
                policy=BatchSizePolicy(2),
                task_filter=injector.task_filter,
            )
            service.submit(0, [3], 0, request_id="r1")
            service.submit(0, [40], 0, request_id="r2")
            assert service.tick(0)["submitted"] is not None
            # Crash: never poll/drain — the journal's last word is
            # "retraining".  Abandon the in-flight window entirely.
            service.close()
        finally:
            backend.close()
        events = journal_events(tmp_path / "svc")
        assert events[-1] == "retraining"
        recovered = UnlearningService.recover(
            str(tmp_path / "svc"),
            model_factory=FACTORY,
            dataset=DATASET,
            round_index=5,
        )
        with recovered:
            # recover() resubmits the window; the serial backend runs it
            # to completion inline, so it is already certified here.
            recovered.drain(6)
            assert recovered.states() == {"r1": "certified", "r2": "certified"}
            assert_states_equal(shard_states(recovered.ensemble), expected)
        events = journal_events(tmp_path / "svc")
        assert "resubmitted" in events
        assert events[-1] == "certified"

    def test_crash_between_received_and_validated_revalidates(self, tmp_path):
        with UnlearningService(
            fresh_ensemble(), str(tmp_path / "svc"), policy=BatchSizePolicy(5)
        ) as service:
            service.submit(0, [3], 0, request_id="r1")
        journal_path = str(tmp_path / "svc" / "journal.jsonl")
        with open(journal_path, "rb") as handle:
            lines = handle.read().splitlines(keepends=True)
        # Drop the trailing "validated" record: the crash landed between
        # the two appends.  Validation is deterministic, so recovery
        # re-runs it and re-queues the request.
        FaultInjector.truncate_journal(journal_path, len(lines[-1]))
        recovered = UnlearningService.recover(
            str(tmp_path / "svc"), model_factory=FACTORY, dataset=DATASET
        )
        with recovered:
            assert recovered.states() == {"r1": RequestState.VALIDATED}
            assert recovered.manager.num_pending == 1

    def test_torn_certified_record_reruns_window(self, tmp_path):
        """A tear inside the final (certified) journal line: replay drops
        it, recovery treats the window as incomplete, and the re-run
        converges to the same bit-identical states."""
        expected = reference_states([(0, [3, 40])])
        with UnlearningService(
            fresh_ensemble(), str(tmp_path / "svc"), policy=BatchSizePolicy(1)
        ) as service:
            service.submit(0, [3, 40], 0, request_id="r1")
            service.tick(0)
            service.drain(1)
        journal_path = str(tmp_path / "svc" / "journal.jsonl")
        with open(journal_path, "rb") as handle:
            lines = handle.read().splitlines(keepends=True)
        FaultInjector.truncate_journal(journal_path, len(lines[-1]) - 3)
        recovered = UnlearningService.recover(
            str(tmp_path / "svc"),
            model_factory=FACTORY,
            dataset=DATASET,
            round_index=3,
        )
        with recovered:
            recovered.drain(4)
            assert recovered.states() == {"r1": "certified"}
            assert_states_equal(shard_states(recovered.ensemble), expected)


class TestJournal:
    def test_truncated_tail_is_dropped(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with Journal(path) as journal:
            for i in range(3):
                journal.append({"event": "tick", "i": i})
        FaultInjector.truncate_journal(path, drop_bytes=5)
        records = replay_journal(path)
        assert [record["i"] for record in records] == [0, 1]

    def test_non_tail_corruption_raises(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with Journal(path) as journal:
            for i in range(3):
                journal.append({"event": "tick", "i": i})
        with open(path, "rb") as handle:
            lines = handle.read().splitlines(keepends=True)
        lines[0] = b"not json at all\n"
        with open(path, "wb") as handle:
            handle.write(b"".join(lines))
        with pytest.raises(JournalCorruption, match="line 1"):
            replay_journal(path)

    def test_sequence_resumes_across_reopen(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with Journal(path) as journal:
            journal.append({"event": "a"})
        with Journal(path) as journal:
            record = journal.append({"event": "b"})
        assert record["seq"] == 1
        assert [r["seq"] for r in replay_journal(path)] == [0, 1]


class TestCompaction:
    def _run_workload(self, directory):
        """Two certified windows + one duplicate + one still-queued request."""
        service = UnlearningService(
            fresh_ensemble(), str(directory), policy=BatchSizePolicy(1)
        )
        service.submit(0, [3], 0, request_id="r1")
        service.tick(0)
        service.drain(1)
        service.submit(0, [40], 2, request_id="r2")
        service.tick(2)
        service.drain(3)
        service.submit(0, [3], 4, request_id="r1")  # duplicate
        service.submit(1, [2], 4, request_id="r3")  # queued, policy not fired
        return service

    def test_compact_collapses_history_to_one_snapshot(self, tmp_path):
        with self._run_workload(tmp_path / "svc") as service:
            history = len(replay_journal(str(tmp_path / "svc" / "journal.jsonl")))
            assert history > 1
            snapshot = service.compact()
        records = replay_journal(str(tmp_path / "svc" / "journal.jsonl"))
        assert [r["event"] for r in records] == ["snapshot"]
        # Ordering survives: the snapshot takes the next seq, not seq 0.
        assert records[0]["seq"] == snapshot["seq"] == history

    def test_recovery_from_snapshot_matches_full_history(self, tmp_path):
        with self._run_workload(tmp_path / "full") as service:
            expected_states = service.states()
            expected_shards = shard_states(service.ensemble)
        with self._run_workload(tmp_path / "compacted") as service:
            service.compact()
        for directory in ("full", "compacted"):
            recovered = UnlearningService.recover(
                str(tmp_path / directory), model_factory=FACTORY, dataset=DATASET
            )
            with recovered:
                assert recovered.states() == expected_states
                assert_states_equal(shard_states(recovered.ensemble), expected_shards)
                assert recovered.duplicates == 1
                assert recovered.sla.num_certified == 2
                # The queued request really re-queued (O(live state)
                # recovery loses no pending work).
                assert recovered.manager.num_pending == 1

    def test_service_continues_after_compaction(self, tmp_path):
        expected = reference_states([(0, [3]), (2, [40]), (5, [2])])
        with self._run_workload(tmp_path / "svc") as service:
            service.compact()
            service.tick(5)  # fires the queued r3 window
            service.drain(6)
            assert service.states()["r3"] == "certified"
            assert_states_equal(shard_states(service.ensemble), expected)
        events = journal_events(tmp_path / "svc")
        assert events[0] == "snapshot"
        assert "certified" in events[1:]
        recovered = UnlearningService.recover(
            str(tmp_path / "svc"), model_factory=FACTORY, dataset=DATASET
        )
        with recovered:
            assert recovered.states()["r3"] == "certified"
            assert_states_equal(shard_states(recovered.ensemble), expected)

    def test_crash_mid_compaction_recovers_bit_identically(self, tmp_path):
        """Die after writing the snapshot temp file but before the atomic
        replace: the original journal is untouched and the orphan temp
        file is invisible to recovery."""
        import repro.unlearning.journal as journal_module

        with self._run_workload(tmp_path / "svc") as service:
            expected_states = service.states()
            expected_shards = shard_states(service.ensemble)
            original_replace = journal_module.os.replace

            def crash(src, dst):
                raise OSError("simulated crash before atomic replace")

            journal_module.os.replace = crash
            try:
                with pytest.raises(OSError, match="simulated"):
                    service.compact()
            finally:
                journal_module.os.replace = original_replace
        assert os.path.exists(str(tmp_path / "svc" / "journal.jsonl.compact"))
        recovered = UnlearningService.recover(
            str(tmp_path / "svc"), model_factory=FACTORY, dataset=DATASET
        )
        with recovered:
            assert recovered.states() == expected_states
            assert_states_equal(shard_states(recovered.ensemble), expected_shards)
            # A later compaction overwrites the orphan and succeeds.
            recovered.compact()
            assert journal_events(tmp_path / "svc") == ["snapshot"]

    def test_compact_refused_with_windows_in_flight(self, tmp_path):
        backend = PoolBackend(max_workers=2)
        ensemble = fresh_ensemble(backend=backend)
        try:
            service = UnlearningService(
                ensemble, str(tmp_path / "svc"), policy=BatchSizePolicy(1)
            )
            service.submit(0, [3], 0, request_id="a")
            assert service.service.maybe_submit(0) is not None
            with pytest.raises(RuntimeError, match="in flight"):
                service.compact()
            service.drain(1)
            service.compact()  # fine once drained
            service.close()
        finally:
            backend.close()


class TestLoadAndMeters:
    def test_poisson_arrivals_deterministic(self):
        first = PoissonArrivals(2.0, 64, seed=9, indices_per_request=2)
        second = PoissonArrivals(2.0, 64, seed=9, indices_per_request=2)
        for round_index in range(10):
            a = first.arrivals(round_index)
            b = second.arrivals(round_index)
            assert [rid for rid, _ in a] == [rid for rid, _ in b]
            for (_, left), (_, right) in zip(a, b):
                np.testing.assert_array_equal(left, right)

    def test_poisson_arrivals_never_repeat_indices(self):
        stream = PoissonArrivals(5.0, 10, seed=1, indices_per_request=3)
        seen = []
        for round_index in range(50):
            for _, indices in stream.arrivals(round_index):
                seen.extend(int(i) for i in indices)
            if stream.remaining == 0:
                break
        assert sorted(seen) == list(range(10))

    def test_poisson_arrivals_validates_parameters(self):
        with pytest.raises(ValueError, match="rate"):
            PoissonArrivals(0.0, 10)
        with pytest.raises(ValueError, match="indices_per_request"):
            PoissonArrivals(1.0, 10, indices_per_request=0)

    def test_sla_meter_percentiles(self):
        meter = SlaMeter()
        with pytest.raises(ValueError, match="no certified"):
            meter.percentile_rounds(50)
        for rounds in (1, 2, 3, 4):
            request = ServiceRequest(
                request_id=f"r{rounds}",
                client_id=0,
                indices=np.asarray([0]),
                submitted_round=0,
            )
            request.certified_round = rounds
            meter.record(request)
        report = meter.report()
        assert report["certified_requests"] == 4
        assert report["p50_rounds"] == 2.5
        assert report["max_rounds"] == 4
        assert "p50_seconds" not in report  # no wall stamps recorded

"""Excess-empirical-risk early termination (Eq. 7)."""

import pytest

from repro.unlearning import EarlyStopConfig, ExcessRiskStopper


class TestConfig:
    @pytest.mark.parametrize("kwargs", [
        {"delta": -0.1},
        {"mode": "median"},
        {"min_epochs": 0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            EarlyStopConfig(**kwargs)


class TestMeanMode:
    def test_stops_when_mean_within_delta(self):
        stopper = ExcessRiskStopper(EarlyStopConfig(delta=0.05, mode="mean"),
                                    reference_loss=0.5)
        assert not stopper.update(1.0)   # mean 1.0, err 0.5
        assert not stopper.update(0.4)   # mean 0.7, err 0.2
        assert stopper.update(0.2)       # mean ~0.533... err 0.033 <= 0.05
        assert stopper.stopped_early
        assert stopper.stopped_epoch == 2

    def test_excess_risk_is_absolute(self):
        stopper = ExcessRiskStopper(EarlyStopConfig(delta=0.01), reference_loss=1.0)
        stopper.update(0.5)  # below reference
        assert stopper.excess_risk() == pytest.approx(0.5)

    def test_eq7_mean_formula(self):
        stopper = ExcessRiskStopper(EarlyStopConfig(delta=0.0), reference_loss=0.3)
        for loss in (0.9, 0.6, 0.3):
            stopper.update(loss)
        assert stopper.excess_risk() == pytest.approx(abs((0.9 + 0.6 + 0.3) / 3 - 0.3))


class TestLastMode:
    def test_compares_latest_epoch_only(self):
        stopper = ExcessRiskStopper(EarlyStopConfig(delta=0.05, mode="last"),
                                    reference_loss=0.5)
        assert not stopper.update(2.0)
        assert stopper.update(0.52)
        assert stopper.stopped_epoch == 1


class TestGuards:
    def test_min_epochs_respected(self):
        stopper = ExcessRiskStopper(EarlyStopConfig(delta=10.0, min_epochs=3),
                                    reference_loss=0.5)
        assert not stopper.update(0.5)
        assert not stopper.update(0.5)
        assert stopper.update(0.5)

    def test_disabled_never_stops(self):
        stopper = ExcessRiskStopper(EarlyStopConfig(delta=100.0, enabled=False),
                                    reference_loss=0.5)
        for _ in range(10):
            assert not stopper.update(0.5)
        assert not stopper.stopped_early

    def test_excess_risk_before_updates_raises(self):
        stopper = ExcessRiskStopper(EarlyStopConfig(), reference_loss=0.5)
        with pytest.raises(ValueError):
            stopper.excess_risk()

    def test_num_epochs_counts(self):
        stopper = ExcessRiskStopper(EarlyStopConfig(delta=0.0), reference_loss=0.0)
        stopper.update(1.0)
        stopper.update(1.0)
        assert stopper.num_epochs == 2

"""Federation-level unlearning protocol flows."""

import numpy as np
import pytest

from repro.data import FederatedDataset
from repro.federated import FederatedSimulation, FedAvgAggregator
from repro.nn.models import MLP
from repro.training import TrainConfig, accuracy
from repro.unlearning import (
    GoldfishConfig,
    GoldfishLossConfig,
    IncompetentTeacherConfig,
    federated_goldfish,
    federated_incompetent_teacher,
    federated_rapid_retrain,
    federated_retrain,
)

from ..conftest import make_blob_federation

CONFIG = TrainConfig(epochs=2, batch_size=10, learning_rate=0.15)


def build_sim(num_clients=3, seed=0):
    clients, test = make_blob_federation(num_clients, per_client=30, test_size=60,
                                         seed=seed)
    fed = FederatedDataset(client_datasets=clients, test_set=test)
    sim = FederatedSimulation(
        lambda: MLP(16, 3, np.random.default_rng(42)),
        fed, FedAvgAggregator(), CONFIG, seed=seed,
    )
    sim.run(3)  # pretrain
    sim.clients[0].request_deletion(np.arange(5))
    return sim


GOLDFISH = GoldfishConfig(loss=GoldfishLossConfig(), train=CONFIG)


class TestGoldfishProtocol:
    def test_returns_outcome(self):
        sim = build_sim()
        outcome = federated_goldfish(sim, GOLDFISH, num_rounds=2)
        assert outcome.rounds_run == 2
        assert len(outcome.round_accuracies) == 2
        assert outcome.local_epochs_total > 0
        assert outcome.wall_seconds > 0

    def test_deletion_finalized(self):
        sim = build_sim()
        federated_goldfish(sim, GOLDFISH, num_rounds=1)
        assert not sim.clients[0].has_pending_deletion
        assert len(sim.clients[0].dataset) == 25

    def test_model_functional_after_unlearning(self):
        sim = build_sim()
        outcome = federated_goldfish(sim, GOLDFISH, num_rounds=3)
        assert accuracy(outcome.global_model, sim.fed_data.test_set) > 0.5

    def test_invalid_rounds(self):
        with pytest.raises(ValueError):
            federated_goldfish(build_sim(), GOLDFISH, num_rounds=0)

    def test_round_callback(self):
        sim = build_sim()
        seen = []
        federated_goldfish(sim, GOLDFISH, num_rounds=2,
                           round_callback=lambda i, s: seen.append(i))
        assert seen == [0, 1]


class TestRetrainProtocols:
    def test_b1_reaches_accuracy(self):
        sim = build_sim()
        outcome = federated_retrain(sim, CONFIG, num_rounds=3)
        assert accuracy(outcome.global_model, sim.fed_data.test_set) > 0.5

    def test_b1_reinitialises_global(self):
        sim = build_sim()
        # Capture pre-unlearning state; after reinit + 1 round the result
        # should differ from continuing training.
        outcome = federated_retrain(sim, CONFIG, num_rounds=1)
        assert outcome.rounds_run == 1

    def test_b2_runs_with_persistent_fim(self):
        sim = build_sim()
        outcome = federated_rapid_retrain(sim, CONFIG, num_rounds=2)
        assert len(outcome.round_accuracies) == 2
        assert accuracy(outcome.global_model, sim.fed_data.test_set) > 0.4

    def test_b2_callback(self):
        sim = build_sim()
        seen = []
        federated_rapid_retrain(sim, CONFIG, num_rounds=2,
                                round_callback=lambda i, s: seen.append(i))
        assert seen == [0, 1]


class TestIncompetentTeacherProtocol:
    def test_b3_runs(self):
        sim = build_sim()
        outcome = federated_incompetent_teacher(
            sim, IncompetentTeacherConfig(train=CONFIG), num_rounds=2
        )
        assert outcome.rounds_run == 2
        assert accuracy(outcome.global_model, sim.fed_data.test_set) > 0.4

    def test_b3_does_not_reinitialise(self):
        """B3 adjusts the trained model: accuracy immediately after one
        round should stay close to the pretrained level."""
        sim = build_sim()
        pre_acc = sim.server.evaluate_global()[1]
        outcome = federated_incompetent_teacher(
            sim, IncompetentTeacherConfig(beta=0.2, train=CONFIG), num_rounds=1
        )
        assert outcome.round_accuracies[0] > pre_acc - 0.25


class TestDeterminism:
    def test_goldfish_protocol_deterministic(self):
        a = federated_goldfish(build_sim(seed=4), GOLDFISH, num_rounds=2)
        b = federated_goldfish(build_sim(seed=4), GOLDFISH, num_rounds=2)
        np.testing.assert_allclose(a.round_accuracies, b.round_accuracies)

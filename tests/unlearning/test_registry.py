"""The unlearner registry: one constructor, one entry point, six methods.

The crucial property: every registered adapter produces **bit-identical**
outcomes to calling the underlying protocol/baseline directly — the
registry is an API, not a reimplementation.
"""

import numpy as np
import pytest

from repro.experiments import SMOKE
from repro.experiments.common import (
    build_backdoor_federation,
    goldfish_config,
    pretrain,
)
from repro.federated import RoundHistoryStore, attach_history
from repro.unlearning import (
    ClientDeletionRequest,
    FedEraser,
    FedEraserConfig,
    FedRecovery,
    FedRecoveryConfig,
    IncompetentTeacherConfig,
    available_methods,
    federated_goldfish,
    federated_incompetent_teacher,
    federated_rapid_retrain,
    federated_retrain,
    get_unlearner,
    make_unlearner,
)

TINY = SMOKE.with_overrides(
    train_size=120, test_size=60, pretrain_rounds=1, local_epochs=1,
    unlearn_rounds=1, batch_size=20,
)


def _pretrained(seed):
    setup = build_backdoor_federation("mnist", TINY, deletion_rate=0.06, seed=seed)
    pretrain(setup, TINY)
    return setup


def _assert_states_equal(model_a, model_b):
    state_a, state_b = model_a.state_dict(), model_b.state_dict()
    assert set(state_a) == set(state_b)
    for key in state_a:
        np.testing.assert_array_equal(state_a[key], state_b[key])


class TestRegistryLookup:
    def test_available_methods(self):
        assert available_methods() == (
            "b1", "b2", "b3", "federaser", "fedrecovery", "ours"
        )

    def test_level_filter(self):
        assert available_methods(level="client") == ("federaser", "fedrecovery")
        assert "ours" in available_methods(level="sample")

    def test_aliases_resolve_to_canonical(self):
        assert get_unlearner("goldfish") is get_unlearner("ours")
        assert get_unlearner("retrain") is get_unlearner("b1")
        assert get_unlearner("rapid_retrain") is get_unlearner("b2")
        assert get_unlearner("incompetent_teacher") is get_unlearner("b3")

    def test_unknown_method(self):
        with pytest.raises(ValueError, match="unknown unlearning method"):
            get_unlearner("magic")

    def test_constructor_validates_rounds(self):
        setup = _pretrained(0)
        with pytest.raises(ValueError):
            make_unlearner("b1", setup.config, num_rounds=0)


class TestBitIdenticalSampleLevel:
    """Registry adapter vs direct protocol call — weight-for-weight equal."""

    def test_ours(self):
        direct = _pretrained(5)
        direct.register_deletion()
        config = goldfish_config(TINY, train=direct.config)
        direct_outcome = federated_goldfish(
            direct.sim, config, TINY.unlearn_rounds
        )

        via = _pretrained(5)
        via.register_deletion()
        outcome = make_unlearner(
            "ours", via.config, TINY.unlearn_rounds
        ).unlearn(via.sim)
        _assert_states_equal(direct_outcome.global_model, outcome.global_model)
        assert outcome.round_accuracies == direct_outcome.round_accuracies

    def test_b1(self):
        direct = _pretrained(6)
        direct.register_deletion()
        direct_outcome = federated_retrain(
            direct.sim, direct.config, TINY.unlearn_rounds
        )

        via = _pretrained(6)
        outcome = make_unlearner("b1", via.config, TINY.unlearn_rounds).unlearn(
            via.sim, (ClientDeletionRequest.of(0, via.poison_indices),)
        )
        _assert_states_equal(direct_outcome.global_model, outcome.global_model)

    def test_b2(self):
        direct = _pretrained(7)
        direct.register_deletion()
        direct_outcome = federated_rapid_retrain(
            direct.sim, direct.config, TINY.unlearn_rounds
        )

        via = _pretrained(7)
        via.register_deletion()
        outcome = make_unlearner("b2", via.config, TINY.unlearn_rounds).unlearn(
            via.sim
        )
        _assert_states_equal(direct_outcome.global_model, outcome.global_model)

    def test_b3(self):
        direct = _pretrained(8)
        direct.register_deletion()
        direct_outcome = federated_incompetent_teacher(
            direct.sim,
            IncompetentTeacherConfig(train=direct.config),
            TINY.unlearn_rounds,
        )

        via = _pretrained(8)
        via.register_deletion()
        outcome = make_unlearner("b3", via.config, TINY.unlearn_rounds).unlearn(
            via.sim
        )
        _assert_states_equal(direct_outcome.global_model, outcome.global_model)


class TestBitIdenticalClientLevel:
    def _with_history(self, seed):
        setup = build_backdoor_federation(
            "mnist", TINY, deletion_rate=0.06, seed=seed
        )
        history = attach_history(setup.sim, RoundHistoryStore())
        pretrain(setup, TINY)
        return setup, history

    def test_federaser(self):
        direct, history = self._with_history(9)
        eraser = FedEraser(
            direct.model_factory,
            FedEraserConfig(
                calibration_epochs=1,
                learning_rate=direct.config.learning_rate,
                batch_size=direct.config.batch_size,
            ),
        )
        state, report = eraser.unlearn(
            history,
            direct.sim.server.initial_state,
            [client.dataset for client in direct.sim.clients],
            forget_client_id=0,
            rng=np.random.default_rng(77),
        )
        direct_model = direct.model_factory()
        direct_model.load_state_dict(state)

        via, via_history = self._with_history(9)
        outcome = make_unlearner(
            "federaser", via.config, TINY.unlearn_rounds
        ).unlearn(
            via.sim, (ClientDeletionRequest.of(0),),
            history=via_history, rng=np.random.default_rng(77),
        )
        _assert_states_equal(direct_model, outcome.global_model)
        assert outcome.rounds_run == report.rounds_replayed
        assert outcome.local_epochs_total == report.calibration_epochs_run

    def test_fedrecovery(self):
        direct, history = self._with_history(10)
        state, _ = FedRecovery(FedRecoveryConfig(noise_enabled=False)).unlearn(
            history, direct.sim.server.global_state,
            forget_client_id=0, rng=np.random.default_rng(3),
        )
        direct_model = direct.model_factory()
        direct_model.load_state_dict(state)

        via, via_history = self._with_history(10)
        outcome = make_unlearner(
            "fedrecovery", via.config, TINY.unlearn_rounds
        ).unlearn(
            via.sim, (ClientDeletionRequest.of(0),),
            history=via_history, rng=np.random.default_rng(3),
        )
        _assert_states_equal(direct_model, outcome.global_model)

    def test_history_required(self):
        setup = _pretrained(11)
        with pytest.raises(ValueError, match="history"):
            make_unlearner("federaser", setup.config, 1).unlearn(
                setup.sim, (ClientDeletionRequest.of(0),)
            )


class TestNormalizedOutcome:
    def test_outcome_provenance(self):
        setup = _pretrained(12)
        setup.register_deletion()
        outcome = make_unlearner("b1", setup.config, TINY.unlearn_rounds).unlearn(
            setup.sim
        )
        assert outcome.method == "b1"
        assert outcome.chains == TINY.unlearn_rounds * TINY.num_clients
        assert outcome.provenance["method"] == "b1"
        assert outcome.provenance["level"] == "sample"
        assert outcome.wall_seconds > 0

    def test_requests_file_deletions(self):
        setup = _pretrained(13)
        assert not setup.sim.clients[0].has_pending_deletion
        make_unlearner("b1", setup.config, TINY.unlearn_rounds).unlearn(
            setup.sim, (ClientDeletionRequest.of(0, setup.poison_indices),)
        )
        # the flow finalized the deletion: data physically dropped
        expected = TINY.train_size // TINY.num_clients - len(setup.poison_indices)
        assert len(setup.sim.clients[0].dataset) == expected

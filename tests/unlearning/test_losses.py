"""The Goldfish composite loss (Eq. 1–6)."""

import numpy as np
import pytest

from repro.nn import Tensor
from repro.nn import functional as F
from repro.unlearning import GoldfishLoss, GoldfishLossConfig, confusion_loss


def logits(rng, n=8, classes=5, scale=1.0):
    return Tensor(rng.normal(size=(n, classes)) * scale, requires_grad=True)


class TestConfig:
    def test_paper_defaults(self):
        config = GoldfishLossConfig()
        assert config.temperature == 3.0
        assert config.mu_c == 0.25
        assert config.mu_d == 1.0

    @pytest.mark.parametrize("kwargs", [
        {"temperature": 0.0},
        {"mu_c": -1.0},
        {"mu_d": -1.0},
        {"hard_loss": "hinge"},
        {"forget_scale": -0.5},
        {"forget_cap": 0.0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            GoldfishLossConfig(**kwargs)


class TestConfusionLoss:
    def test_zero_for_uniform_predictions(self):
        uniform = Tensor(np.zeros((4, 10)))  # equal logits -> uniform softmax
        assert confusion_loss(uniform).item() < 1e-5

    def test_positive_for_confident_predictions(self, rng):
        confident = Tensor(rng.normal(size=(4, 10)) * 10)
        assert confusion_loss(confident).item() > 0.01

    def test_decreasing_in_uniformity(self, rng):
        base = rng.normal(size=(4, 10))
        sharp = confusion_loss(Tensor(base * 10)).item()
        soft = confusion_loss(Tensor(base * 0.1)).item()
        assert soft < sharp

    def test_matches_eq2_formula(self, rng):
        x = rng.normal(size=(6, 4))
        probs = F.softmax(Tensor(x), axis=1).data
        expected = np.sqrt(probs.var(axis=1) + 1e-12).mean()
        np.testing.assert_allclose(confusion_loss(Tensor(x)).item(), expected)

    def test_gradient_pushes_toward_uniform(self, rng):
        x = Tensor(rng.normal(size=(4, 5)) * 3, requires_grad=True)
        from repro.nn.optim import SGD
        from repro.nn.module import Parameter
        p = Parameter(x.data.copy())
        opt = SGD([p], lr=1.0)
        before = confusion_loss(Tensor(p.data)).item()
        for _ in range(50):
            opt.zero_grad()
            loss = confusion_loss(p * 1.0)
            loss.backward()
            opt.step()
        after = confusion_loss(Tensor(p.data)).item()
        assert after < before


class TestCompositeLoss:
    def test_retain_only_path(self, rng):
        loss_fn = GoldfishLoss(GoldfishLossConfig(use_distillation=False),
                               num_retain=100, num_forget=0)
        value = loss_fn(logits(rng), np.zeros(8, dtype=int))
        breakdown = loss_fn.last_breakdown
        assert value.item() == pytest.approx(breakdown.hard_retain)
        assert breakdown.hard_forget == 0.0
        assert breakdown.distillation == 0.0

    def test_distillation_requires_teacher(self, rng):
        loss_fn = GoldfishLoss(GoldfishLossConfig(), num_retain=100, num_forget=0)
        with pytest.raises(ValueError):
            loss_fn(logits(rng), np.zeros(8, dtype=int))

    def test_forget_labels_required_with_forget_logits(self, rng):
        loss_fn = GoldfishLoss(GoldfishLossConfig(use_distillation=False),
                               num_retain=100, num_forget=10)
        with pytest.raises(ValueError):
            loss_fn(logits(rng), np.zeros(8, dtype=int),
                    student_logits_forget=logits(rng))

    def test_forget_term_subtracted(self, rng):
        config = GoldfishLossConfig(use_distillation=False, use_confusion=False,
                                    forget_scale=1.0)
        loss_fn = GoldfishLoss(config, num_retain=100, num_forget=100)
        retain = logits(rng)
        forget = logits(rng)
        labels = np.zeros(8, dtype=int)
        total = loss_fn(retain, labels, student_logits_forget=forget,
                        labels_forget=labels)
        b = loss_fn.last_breakdown
        expected = b.hard_retain - min(b.hard_forget, np.log(5))
        np.testing.assert_allclose(total.item(), expected, atol=1e-10)

    def test_auto_forget_scale(self):
        loss_fn = GoldfishLoss(GoldfishLossConfig(), num_retain=200, num_forget=20)
        np.testing.assert_allclose(loss_fn.forget_scale, 0.1)

    def test_auto_forget_scale_capped_at_one(self):
        loss_fn = GoldfishLoss(GoldfishLossConfig(), num_retain=10, num_forget=100)
        assert loss_fn.forget_scale == 1.0

    def test_explicit_forget_scale(self):
        loss_fn = GoldfishLoss(GoldfishLossConfig(forget_scale=0.7),
                               num_retain=10, num_forget=1)
        assert loss_fn.forget_scale == 0.7

    def test_forget_cap_blocks_gradient_beyond_uniform(self, rng):
        """Once the forget loss exceeds ln(C), no gradient flows from it."""
        config = GoldfishLossConfig(use_distillation=False, use_confusion=False,
                                    forget_scale=1.0)
        loss_fn = GoldfishLoss(config, num_retain=10, num_forget=10)
        # Student already predicts the wrong class hard: forget CE >> ln(C).
        forget = Tensor(np.tile([10.0, 0.0, 0.0], (4, 1)), requires_grad=True)
        retain = Tensor(rng.normal(size=(4, 3)))
        loss_fn(retain, np.zeros(4, dtype=int),
                student_logits_forget=forget,
                labels_forget=np.full(4, 1)).backward()
        np.testing.assert_allclose(forget.grad, 0.0)

    def test_confusion_weight_applied(self, rng):
        base = GoldfishLossConfig(use_distillation=False, mu_c=0.0, forget_scale=0.0)
        weighted = GoldfishLossConfig(use_distillation=False, mu_c=10.0, forget_scale=0.0)
        retain_l = rng.normal(size=(4, 5))
        forget_l = rng.normal(size=(4, 5)) * 4
        labels = np.zeros(4, dtype=int)

        def value(config):
            fn = GoldfishLoss(config, num_retain=10, num_forget=4)
            return fn(Tensor(retain_l), labels,
                      student_logits_forget=Tensor(forget_l),
                      labels_forget=labels).item()

        assert value(weighted) > value(base)

    def test_distillation_component_recorded(self, rng):
        loss_fn = GoldfishLoss(GoldfishLossConfig(), num_retain=10, num_forget=0)
        teacher = logits(rng).detach()
        value = loss_fn(logits(rng), np.zeros(8, dtype=int),
                        teacher_logits_retain=teacher)
        assert loss_fn.last_breakdown.distillation > 0
        assert value.item() == pytest.approx(loss_fn.last_breakdown.total)

    def test_breakdown_as_dict(self, rng):
        loss_fn = GoldfishLoss(GoldfishLossConfig(use_distillation=False),
                               num_retain=10, num_forget=0)
        loss_fn(logits(rng), np.zeros(8, dtype=int))
        d = loss_fn.last_breakdown.as_dict()
        assert set(d) == {"total", "hard_retain", "hard_forget", "confusion",
                          "distillation"}

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            GoldfishLoss(GoldfishLossConfig(), num_retain=0, num_forget=0)
        with pytest.raises(ValueError):
            GoldfishLoss(GoldfishLossConfig(), num_retain=10, num_forget=-1)

    @pytest.mark.parametrize("hard", ["cross_entropy", "focal", "nll"])
    def test_all_hard_losses_work(self, rng, hard):
        """Table XI compatibility: every registry hard loss runs end to end."""
        config = GoldfishLossConfig(hard_loss=hard, use_distillation=False)
        loss_fn = GoldfishLoss(config, num_retain=10, num_forget=4)
        x = logits(rng)
        total = loss_fn(x, np.zeros(8, dtype=int),
                        student_logits_forget=logits(rng, n=4),
                        labels_forget=np.zeros(4, dtype=int))
        total.backward()
        assert np.isfinite(x.grad).all()

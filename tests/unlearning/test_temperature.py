"""Adaptive distillation temperature (Eq. 11)."""

import math

import pytest

from repro.unlearning import adaptive_temperature


class TestFormula:
    def test_no_forget_data_keeps_base_temperature(self):
        # With α = e, exponent -> -1 and T = e·T0·e^-1 = T0.
        assert adaptive_temperature(3.0, 100, 0) == pytest.approx(3.0)

    def test_matches_eq11(self):
        t0, retain, forget, alpha = 2.0, 80, 20, 1.7
        expected = alpha * t0 * math.exp(-retain / (retain + forget))
        assert adaptive_temperature(t0, retain, forget, alpha=alpha,
                                    min_temperature=0.0) == pytest.approx(expected)

    def test_larger_forget_fraction_raises_temperature(self):
        small = adaptive_temperature(3.0, 95, 5)
        large = adaptive_temperature(3.0, 60, 40)
        assert large > small

    def test_monotone_in_forget_size(self):
        temps = [adaptive_temperature(3.0, 100, f) for f in (0, 10, 30, 60, 100)]
        assert temps == sorted(temps)

    def test_floor_applied(self):
        # Tiny base temperature would drop below 1; the floor kicks in
        # because T <= 1 degrades soft labels to hard labels (paper note).
        assert adaptive_temperature(0.1, 100, 0) == 1.0

    def test_custom_floor(self):
        assert adaptive_temperature(0.1, 100, 0, min_temperature=2.5) == 2.5


class TestValidation:
    def test_bad_base_temperature(self):
        with pytest.raises(ValueError):
            adaptive_temperature(0.0, 10, 1)

    def test_negative_sizes(self):
        with pytest.raises(ValueError):
            adaptive_temperature(3.0, -1, 1)
        with pytest.raises(ValueError):
            adaptive_temperature(3.0, 1, -1)

    def test_no_data(self):
        with pytest.raises(ValueError):
            adaptive_temperature(3.0, 0, 0)

    def test_bad_alpha(self):
        with pytest.raises(ValueError):
            adaptive_temperature(3.0, 10, 1, alpha=0.0)

"""SISA ensemble: shard/slice partitioning, checkpoints, deletion cost."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.models import MLP
from repro.unlearning import SisaConfig, SisaEnsemble

from ..conftest import make_blobs


def make_ensemble(num_samples=72, num_shards=3, num_slices=4, seed=0, **kwargs):
    dataset = make_blobs(
        num_samples=num_samples, num_classes=3, shape=(1, 4, 4), seed=seed
    )
    factory = lambda: MLP(16, 3, np.random.default_rng(13))
    config = SisaConfig(
        num_shards=num_shards,
        num_slices=num_slices,
        epochs_per_slice=2,
        batch_size=8,
        learning_rate=0.08,
        **kwargs,
    )
    return SisaEnsemble(factory, dataset, config, seed=seed), dataset


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_shards": 0},
            {"num_slices": 0},
            {"epochs_per_slice": 0},
            {"aggregation": "mean"},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SisaConfig(**kwargs)

    def test_too_small_dataset_rejected(self):
        dataset = make_blobs(num_samples=5)
        factory = lambda: MLP(64, 3, np.random.default_rng(0))
        with pytest.raises(ValueError, match="cannot fill"):
            SisaEnsemble(factory, dataset, SisaConfig(num_shards=3, num_slices=4))


class TestPartitioning:
    def test_shards_and_slices_are_a_disjoint_cover(self):
        ensemble, dataset = make_ensemble()
        seen = []
        for shard in ensemble._shards:
            assert len(shard.slice_indices) == 4
            for part in shard.slice_indices:
                seen.extend(part.tolist())
        assert sorted(seen) == list(range(len(dataset)))

    def test_shard_of_locates_every_index(self):
        ensemble, dataset = make_ensemble(num_samples=36, num_shards=2, num_slices=3)
        for index in range(len(dataset)):
            shard_index, slice_index = ensemble.shard_of(index)
            assert index in ensemble._shards[shard_index].slice_indices[slice_index]

    def test_shard_of_unknown_index(self):
        ensemble, _ = make_ensemble()
        with pytest.raises(KeyError):
            ensemble.shard_of(10_000)


class TestTraining:
    def test_fit_checkpoints_every_slice(self):
        ensemble, _ = make_ensemble(num_slices=3)
        ensemble.fit()
        for shard in ensemble._shards:
            assert sorted(shard.checkpoints) == [0, 1, 2]
            assert shard.model is not None

    def test_ensemble_learns(self):
        ensemble, dataset = make_ensemble()
        accuracy = ensemble.fit().evaluate(dataset)
        assert accuracy > 0.8  # well above 1/3 chance on blobs

    def test_predict_before_fit_rejected(self):
        ensemble, dataset = make_ensemble()
        with pytest.raises(RuntimeError):
            ensemble.predict(dataset.images)
        with pytest.raises(RuntimeError):
            ensemble.delete([0])

    def test_hard_vote_aggregation(self):
        ensemble, dataset = make_ensemble(aggregation="hard")
        probs = ensemble.fit().predict_proba(dataset.images[:5])
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)
        # Votes are multiples of 1/num_shards.
        np.testing.assert_allclose(probs * 3, np.round(probs * 3), atol=1e-9)


class TestDeletion:
    def test_deletion_only_touches_affected_shard(self):
        ensemble, _ = make_ensemble()
        ensemble.fit()
        before = {
            shard.index: {k: {p: a.copy() for p, a in v.items()}
                          for k, v in shard.checkpoints.items()}
            for shard in ensemble._shards
        }
        target = int(ensemble._shards[1].slice_indices[2][0])
        report = ensemble.delete([target])
        assert report.shards_affected == [1]
        assert report.num_deleted == 1
        # Shards 0 and 2 keep their exact checkpoints.
        for shard_index in (0, 2):
            shard = ensemble._shards[shard_index]
            for slice_index, state in shard.checkpoints.items():
                for key, value in state.items():
                    np.testing.assert_array_equal(
                        value, before[shard_index][slice_index][key]
                    )

    def test_deletion_resumes_from_clean_checkpoint(self):
        """Deleting from slice r must keep checkpoints < r and replace
        checkpoints >= r in the affected shard."""
        ensemble, _ = make_ensemble(num_slices=4)
        ensemble.fit()
        shard = ensemble._shards[0]
        clean = {k: v.copy() for k, v in shard.checkpoints[1].items()}
        target = int(shard.slice_indices[2][0])
        ensemble.delete([target])
        for key in clean:
            np.testing.assert_array_equal(shard.checkpoints[1][key], clean[key])

    def test_deleted_sample_no_longer_trained_on(self):
        ensemble, dataset = make_ensemble()
        ensemble.fit()
        target = 7
        shard_index, _ = ensemble.shard_of(target)
        ensemble.delete([target])
        shard = ensemble._shards[shard_index]
        active = ensemble._active_indices(shard, ensemble.config.num_slices - 1)
        assert target not in active
        assert ensemble.num_deleted == 1
        assert sum(ensemble.shard_sizes()) == len(dataset) - 1

    def test_cost_depends_on_slice_position(self):
        """Deleting from the last slice is cheaper than from the first."""
        ensemble, _ = make_ensemble(num_shards=2, num_slices=4)
        ensemble.fit()
        late = int(ensemble._shards[0].slice_indices[3][0])
        early = int(ensemble._shards[1].slice_indices[0][0])
        late_report = ensemble.delete([late])
        early_report = ensemble.delete([early])
        assert late_report.slices_retrained == 1
        assert early_report.slices_retrained == 4
        assert late_report.fraction_retrained < early_report.fraction_retrained

    def test_accuracy_survives_deletion(self):
        ensemble, dataset = make_ensemble()
        ensemble.fit()
        report = ensemble.delete([0, 1, 2])
        remaining = dataset.remove([0, 1, 2])
        assert ensemble.evaluate(remaining) > 0.75
        assert report.slices_reused + report.slices_retrained <= report.slice_steps_total + 4

    def test_double_delete_rejected(self):
        ensemble, _ = make_ensemble()
        ensemble.fit()
        ensemble.delete([3])
        with pytest.raises(ValueError, match="already deleted"):
            ensemble.delete([3])

    def test_bad_requests_rejected(self):
        ensemble, _ = make_ensemble()
        ensemble.fit()
        with pytest.raises(ValueError, match="no indices"):
            ensemble.delete([])
        with pytest.raises(ValueError, match="out of range"):
            ensemble.delete([-1])
        with pytest.raises(ValueError, match="out of range"):
            ensemble.delete([len(ensemble.dataset)])


class TestPersistence:
    def test_save_load_roundtrip_preserves_predictions(self, tmp_path):
        ensemble, dataset = make_ensemble()
        ensemble.fit()
        ensemble.delete([5])
        expected = ensemble.predict_proba(dataset.images[:10])
        ensemble.save(str(tmp_path))

        factory = lambda: MLP(16, 3, np.random.default_rng(13))
        restored = SisaEnsemble.load(str(tmp_path), factory, dataset)
        np.testing.assert_allclose(
            restored.predict_proba(dataset.images[:10]), expected, atol=1e-12
        )
        assert restored.num_deleted == 1
        assert restored.config == ensemble.config

    def test_deletion_after_load_resumes_from_checkpoint(self, tmp_path):
        ensemble, dataset = make_ensemble(num_slices=4)
        ensemble.fit()
        ensemble.save(str(tmp_path))
        factory = lambda: MLP(16, 3, np.random.default_rng(13))
        restored = SisaEnsemble.load(str(tmp_path), factory, dataset)
        target = int(restored._shards[0].slice_indices[3][0])
        report = restored.delete([target])
        # Last-slice deletion: the restored checkpoints must let it
        # retrain exactly one slice step, not the whole shard.
        assert report.slices_retrained == 1

    def test_save_before_fit_rejected(self, tmp_path):
        ensemble, _ = make_ensemble()
        with pytest.raises(RuntimeError):
            ensemble.save(str(tmp_path))

    def test_incomplete_save_rejected(self, tmp_path):
        ensemble, dataset = make_ensemble()
        ensemble.fit()
        ensemble.save(str(tmp_path))
        # Corrupt: remove one shard's final checkpoint file and its
        # manifest entry.
        import json, os
        manifest_path = tmp_path / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        last = manifest["shards"][0]["checkpoints"].pop()
        os.remove(tmp_path / f"shard0_slice{last}.npz")
        manifest_path.write_text(json.dumps(manifest))
        factory = lambda: MLP(16, 3, np.random.default_rng(13))
        with pytest.raises(ValueError, match="missing its final checkpoint"):
            SisaEnsemble.load(str(tmp_path), factory, dataset)


class TestProperties:
    @given(
        num_shards=st.integers(1, 4),
        num_slices=st.integers(1, 4),
        seed=st.integers(0, 20),
    )
    @settings(max_examples=20, deadline=None)
    def test_property_partition_is_always_a_cover(self, num_shards, num_slices, seed):
        dataset = make_blobs(num_samples=40, num_classes=3, shape=(1, 4, 4))
        factory = lambda: MLP(16, 3, np.random.default_rng(0))
        config = SisaConfig(num_shards=num_shards, num_slices=num_slices)
        ensemble = SisaEnsemble(factory, dataset, config, seed=seed)
        seen = np.concatenate([
            part for shard in ensemble._shards for part in shard.slice_indices
        ])
        assert sorted(seen.tolist()) == list(range(40))

    @given(position=st.integers(0, 3))
    @settings(max_examples=8, deadline=None)
    def test_property_retrain_count_matches_slice_position(self, position):
        """Deleting one point from slice r retrains exactly R − r steps."""
        ensemble, _ = make_ensemble(num_shards=2, num_slices=4)
        ensemble.fit()
        target = int(ensemble._shards[0].slice_indices[position][0])
        report = ensemble.delete([target])
        assert report.slices_retrained == 4 - position

"""B1 / B2 / B3 baseline unlearning methods."""

import numpy as np
import pytest

from repro.nn.models import MLP
from repro.training import TrainConfig, accuracy, predict_logits, train
from repro.unlearning import (
    IncompetentTeacherConfig,
    IncompetentTeacherUnlearner,
    RapidRetrainer,
    retrain_from_scratch,
)

from .test_goldfish import factory, poisoned_setup

CONFIG = TrainConfig(epochs=10, batch_size=20, learning_rate=0.2)


class TestB1Retrain:
    def test_retrained_model_learns_retain(self, rng):
        _, forget, retain, _ = poisoned_setup()
        model, history = retrain_from_scratch(lambda: factory(3), retain, CONFIG, rng)
        assert accuracy(model, retain) > 0.8
        assert history.losses[-1] < history.losses[0]

    def test_retrained_model_never_saw_forget_mapping(self, rng):
        _, forget, retain, _ = poisoned_setup()
        model, _ = retrain_from_scratch(lambda: factory(3), retain, CONFIG, rng)
        poison_rate = (predict_logits(model, forget.images).argmax(1) == 0).mean()
        assert poison_rate < 0.5  # chance-ish; can't have memorised label 0


class TestB2RapidRetrain:
    def test_retrains_and_learns(self, rng):
        _, forget, retain, _ = poisoned_setup()
        model, history = RapidRetrainer().retrain(lambda: factory(3), retain,
                                                  CONFIG, rng)
        assert accuracy(model, retain) > 0.7
        assert len(history) == CONFIG.epochs

    def test_lr_scale_validation(self):
        with pytest.raises(ValueError):
            RapidRetrainer(lr_scale=0.0)

    def test_faster_early_convergence_than_plain_sgd(self):
        """The FIM preconditioner's selling point: lower loss after the
        same (small) number of epochs."""
        _, _, retain, _ = poisoned_setup()
        short = TrainConfig(epochs=2, batch_size=20, learning_rate=0.01)
        plain = factory(3)
        h_plain = train(plain, retain, short, np.random.default_rng(1))
        fim_model, h_fim = RapidRetrainer(lr_scale=3.0).retrain(
            lambda: factory(3), retain, short, np.random.default_rng(1)
        )
        assert h_fim.final_loss < h_plain.final_loss


class TestB3IncompetentTeacher:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            IncompetentTeacherConfig(beta=1.5)
        with pytest.raises(ValueError):
            IncompetentTeacherConfig(temperature=0.0)

    def test_preserves_retain_accuracy(self, rng):
        teacher, forget, retain, _ = poisoned_setup()
        student = factory(42)
        student.load_state_dict(teacher.state_dict())  # start from original
        config = IncompetentTeacherConfig(
            beta=0.4, train=TrainConfig(epochs=6, batch_size=20, learning_rate=0.1)
        )
        IncompetentTeacherUnlearner(config).unlearn(
            student, teacher, factory(99), retain, forget, rng
        )
        assert accuracy(student, retain) > 0.6

    def test_destroys_confidence_on_forget_set(self, rng):
        teacher, forget, retain, _ = poisoned_setup()
        student = factory(42)
        student.load_state_dict(teacher.state_dict())
        config = IncompetentTeacherConfig(
            beta=0.8, train=TrainConfig(epochs=8, batch_size=20, learning_rate=0.2)
        )
        IncompetentTeacherUnlearner(config).unlearn(
            student, teacher, factory(99), retain, forget, rng
        )

        def max_prob(model):
            logits = predict_logits(model, forget.images)
            shifted = logits - logits.max(axis=1, keepdims=True)
            probs = np.exp(shifted) / np.exp(shifted).sum(axis=1, keepdims=True)
            return probs.max(axis=1).mean()

        assert max_prob(student) < max_prob(teacher)

    def test_result_metadata(self, rng):
        teacher, forget, retain, _ = poisoned_setup()
        student = factory(42)
        student.load_state_dict(teacher.state_dict())
        config = IncompetentTeacherConfig(
            train=TrainConfig(epochs=2, batch_size=20, learning_rate=0.1)
        )
        result = IncompetentTeacherUnlearner(config).unlearn(
            student, teacher, factory(99), retain, forget, rng
        )
        assert result.epochs_run == 2
        assert result.wall_seconds > 0

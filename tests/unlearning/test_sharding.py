"""Shard training, aggregation and the Eq. 8/9/10 arithmetic identities."""

import numpy as np
import pytest

from repro.federated import state_math
from repro.nn.models import MLP
from repro.training import TrainConfig, accuracy
from repro.unlearning import ShardedClientTrainer

from ..conftest import make_blobs


def factory():
    return MLP(16, 3, np.random.default_rng(42))


def make_trainer(num_samples=60, num_shards=3, seed=0):
    ds = make_blobs(num_samples=num_samples, num_classes=3, shape=(1, 4, 4), seed=seed)
    return ShardedClientTrainer(ds, num_shards, factory, np.random.default_rng(seed)), ds


CONFIG = TrainConfig(epochs=2, batch_size=10, learning_rate=0.1)


class TestConstruction:
    def test_shards_partition_data(self):
        trainer, ds = make_trainer(num_samples=61, num_shards=4)
        merged = np.concatenate(trainer.shard_indices)
        assert sorted(merged.tolist()) == list(range(61))
        assert trainer.total_size() == 61

    def test_single_shard_allowed(self):
        trainer, _ = make_trainer(num_shards=1)
        assert trainer.num_shards == 1

    def test_invalid_shard_count(self):
        ds = make_blobs(num_samples=10)
        with pytest.raises(ValueError):
            ShardedClientTrainer(ds, 0, factory, np.random.default_rng(0))


class TestEq8Aggregation:
    def test_aggregate_is_size_weighted(self):
        trainer, _ = make_trainer(num_samples=60, num_shards=3)
        # Overwrite shard states with known constants to verify weighting.
        for i, value in enumerate((1.0, 2.0, 3.0)):
            trainer.shard_states[i] = {
                k: np.full_like(v, value) for k, v in trainer.shard_states[i].items()
            }
        sizes = trainer.shard_sizes()
        expected = (sizes[0] * 1 + sizes[1] * 2 + sizes[2] * 3) / sizes.sum()
        combined = trainer.local_state()
        for v in combined.values():
            np.testing.assert_allclose(v, expected)

    def test_exclude_shard(self):
        trainer, _ = make_trainer(num_samples=60, num_shards=3)
        for i, value in enumerate((1.0, 2.0, 3.0)):
            trainer.shard_states[i] = {
                k: np.full_like(v, value) for k, v in trainer.shard_states[i].items()
            }
        sizes = trainer.shard_sizes()
        partial = trainer.aggregate(exclude=0)
        expected = (sizes[1] * 2 + sizes[2] * 3) / sizes.sum()
        for v in partial.values():
            np.testing.assert_allclose(v, expected)

    def test_exclude_only_shard_raises(self):
        trainer, _ = make_trainer(num_shards=1)
        with pytest.raises(ValueError):
            trainer.aggregate(exclude=0)


class TestEq10Recovery:
    def test_recover_shard_inverts_aggregation(self):
        """Eq. 10 must exactly invert Eq. 8: recovering shard i from the
        combined model returns shard i's own weights."""
        trainer, _ = make_trainer(num_samples=60, num_shards=3)
        trainer.train_all(CONFIG)
        combined = trainer.local_state()
        for shard in range(3):
            recovered = trainer.recover_shard_state(shard, combined)
            for key, value in recovered.items():
                np.testing.assert_allclose(
                    value, trainer.shard_states[shard][key], atol=1e-9
                )


class TestTraining:
    def test_train_all_improves_accuracy(self):
        trainer, ds = make_trainer(num_samples=90, num_shards=3)
        before = accuracy(trainer.local_model(), ds)
        for _ in range(4):
            trainer.train_all(CONFIG)
        after = accuracy(trainer.local_model(), ds)
        assert after > before
        assert after > 0.6

    def test_train_single_shard_only_changes_that_state(self):
        trainer, _ = make_trainer(num_shards=3)
        before = [
            {k: v.copy() for k, v in s.items()} for s in trainer.shard_states
        ]
        trainer.train_shard(1, CONFIG)
        assert state_math.l2_distance(trainer.shard_states[1], before[1]) > 0
        assert state_math.l2_distance(trainer.shard_states[0], before[0]) == 0
        assert state_math.l2_distance(trainer.shard_states[2], before[2]) == 0


class TestDeletion:
    def test_locate_maps_indices_to_shards(self):
        trainer, _ = make_trainer(num_samples=30, num_shards=3)
        target = trainer.shard_indices[1][:2]
        hits = trainer.locate(target)
        assert list(hits) == [1]
        np.testing.assert_array_equal(hits[1], np.sort(target))

    def test_locate_out_of_range(self):
        trainer, _ = make_trainer(num_samples=30)
        with pytest.raises(ValueError):
            trainer.locate(np.array([999]))

    def test_delete_removes_samples(self):
        trainer, _ = make_trainer(num_samples=30, num_shards=3)
        trainer.train_all(CONFIG)
        victim = trainer.shard_indices[0][:3]
        report = trainer.delete(victim, CONFIG)
        assert report.affected_shards == [0]
        assert report.removed_per_shard == {0: 3}
        assert trainer.total_size() == 27
        remaining = np.concatenate(trainer.shard_indices)
        assert not np.isin(victim, remaining).any()

    def test_delete_untouched_shards_not_retrained(self):
        trainer, _ = make_trainer(num_samples=30, num_shards=3)
        trainer.train_all(CONFIG)
        before = {k: v.copy() for k, v in trainer.shard_states[2].items()}
        victim = trainer.shard_indices[0][:2]
        trainer.delete(victim, CONFIG)
        assert state_math.l2_distance(trainer.shard_states[2], before) == 0

    def test_delete_whole_shard_drops_it(self):
        trainer, _ = make_trainer(num_samples=30, num_shards=3)
        trainer.train_all(CONFIG)
        victim = trainer.shard_indices[1]
        report = trainer.delete(victim, CONFIG)
        assert report.dropped_shards == [1]
        assert trainer.num_shards == 2
        assert trainer.total_size() == 30 - len(victim)

    def test_delete_across_multiple_shards(self):
        trainer, _ = make_trainer(num_samples=30, num_shards=3)
        trainer.train_all(CONFIG)
        victim = np.concatenate([
            trainer.shard_indices[0][:2], trainer.shard_indices[2][:2]
        ])
        report = trainer.delete(victim, CONFIG)
        assert report.affected_shards == [0, 2]
        assert sorted(report.retrained_shards) == [0, 2]

    def test_delete_everything_raises(self):
        trainer, _ = make_trainer(num_samples=10, num_shards=1)
        with pytest.raises(ValueError):
            trainer.delete(np.arange(10), CONFIG)

    def test_deletion_report_has_timing(self):
        trainer, _ = make_trainer(num_samples=30, num_shards=3)
        trainer.train_all(CONFIG)
        report = trainer.delete(trainer.shard_indices[0][:1], CONFIG)
        assert report.wall_seconds >= 0

    def test_reinitialize_affected_path(self):
        trainer, _ = make_trainer(num_samples=30, num_shards=3)
        trainer.train_all(CONFIG)
        victim = trainer.shard_indices[0][:2]
        report = trainer.delete(victim, CONFIG, reinitialize_affected=True)
        assert report.retrained_shards == [0]

    def test_model_usable_after_deletion(self):
        trainer, ds = make_trainer(num_samples=90, num_shards=3)
        for _ in range(3):
            trainer.train_all(CONFIG)
        trainer.delete(trainer.shard_indices[0][:5], CONFIG)
        trainer.train_all(CONFIG)
        assert accuracy(trainer.local_model(), ds) > 0.5

"""FedEraser and FedRecovery: client-level update-adjustment unlearning."""

import numpy as np
import pytest

from repro.data.dataset import FederatedDataset
from repro.federated import (
    FedAvgAggregator,
    FederatedSimulation,
    RoundHistoryStore,
    attach_history,
    state_math,
)
from repro.nn.models import MLP
from repro.training.config import TrainConfig
from repro.training.evaluation import evaluate
from repro.unlearning import (
    FedEraser,
    FedEraserConfig,
    FedRecovery,
    FedRecoveryConfig,
)

from ..conftest import make_blob_federation


@pytest.fixture(scope="module")
def trained_federation():
    """A 4-client federation trained 4 rounds with history retained."""
    clients, test = make_blob_federation(
        num_clients=4, per_client=18, test_size=30, seed=3
    )
    fed = FederatedDataset(client_datasets=clients, test_set=test)
    factory = lambda: MLP(16, 3, np.random.default_rng(7))
    sim = FederatedSimulation(
        model_factory=factory,
        fed_data=fed,
        aggregator=FedAvgAggregator(),
        train_config=TrainConfig(epochs=2, batch_size=6, learning_rate=0.05),
        seed=11,
    )
    store = attach_history(sim, RoundHistoryStore())
    initial_state = sim.server.initial_state
    sim.run(4)
    return {
        "sim": sim,
        "store": store,
        "initial_state": initial_state,
        "clients": clients,
        "test": test,
        "factory": factory,
    }


class TestFedEraserConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            FedEraserConfig(calibration_epochs=0)
        with pytest.raises(ValueError):
            FedEraserConfig(learning_rate=0.0)

    def test_train_config_conversion(self):
        config = FedEraserConfig(calibration_epochs=2, learning_rate=0.03)
        tc = config.train_config()
        assert tc.epochs == 2
        assert tc.learning_rate == 0.03


class TestFedEraser:
    def test_unlearn_produces_usable_model(self, trained_federation, rng):
        env = trained_federation
        eraser = FedEraser(
            env["factory"],
            FedEraserConfig(calibration_epochs=1, learning_rate=0.05, batch_size=6),
        )
        unlearned, report = eraser.unlearn(
            env["store"], env["initial_state"], env["clients"],
            forget_client_id=0, rng=rng,
        )
        assert report.rounds_replayed == 4
        assert report.clients_per_round == [3, 3, 3, 3]
        assert report.calibration_epochs_run == 4 * 3
        model = env["factory"]()
        model.load_state_dict(unlearned)
        _, accuracy = evaluate(model, env["test"])
        # Remaining clients cover all classes, so the calibrated model
        # must still classify far above chance (1/3).
        assert accuracy > 0.55

    def test_unlearned_differs_from_final_global(self, trained_federation, rng):
        env = trained_federation
        eraser = FedEraser(env["factory"], FedEraserConfig(batch_size=6))
        unlearned, _ = eraser.unlearn(
            env["store"], env["initial_state"], env["clients"], 1, rng
        )
        assert state_math.l2_distance(unlearned, env["sim"].server.global_state) > 1e-3

    def test_empty_history_rejected(self, trained_federation, rng):
        env = trained_federation
        eraser = FedEraser(env["factory"])
        with pytest.raises(ValueError, match="empty"):
            eraser.unlearn(
                RoundHistoryStore(), env["initial_state"], env["clients"], 0, rng
            )

    def test_unknown_client_rejected(self, trained_federation, rng):
        env = trained_federation
        eraser = FedEraser(env["factory"])
        with pytest.raises(ValueError, match="never appears"):
            eraser.unlearn(
                env["store"], env["initial_state"], env["clients"], 42, rng
            )

    def test_missing_dataset_rejected(self, trained_federation, rng):
        env = trained_federation
        eraser = FedEraser(env["factory"], FedEraserConfig(batch_size=6))
        with pytest.raises(IndexError, match="no dataset"):
            eraser.unlearn(
                env["store"], env["initial_state"], env["clients"][:2], 0, rng
            )


class TestFedRecoveryConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            FedRecoveryConfig(epsilon=0.0)
        with pytest.raises(ValueError):
            FedRecoveryConfig(delta=1.5)
        with pytest.raises(ValueError):
            FedRecoveryConfig(influence_clip=0.0)


class TestFedRecovery:
    def test_subtraction_without_noise_is_deterministic(
        self, trained_federation
    ):
        env = trained_federation
        recovery = FedRecovery(FedRecoveryConfig(noise_enabled=False))
        final = env["sim"].server.global_state
        out1, report1 = recovery.unlearn(
            env["store"], final, 0, np.random.default_rng(0)
        )
        out2, report2 = recovery.unlearn(
            env["store"], final, 0, np.random.default_rng(99)
        )
        assert state_math.l2_distance(out1, out2) == 0.0
        assert report1.sigma == 0.0
        assert report1.influence_l2 == pytest.approx(report2.influence_l2)

    def test_residual_weights_sum_to_one(self, trained_federation, rng):
        env = trained_federation
        recovery = FedRecovery(FedRecoveryConfig(noise_enabled=False))
        _, report = recovery.unlearn(
            env["store"], env["sim"].server.global_state, 2, rng
        )
        assert sum(report.residual_weights) == pytest.approx(1.0)
        assert all(w >= 0 for w in report.residual_weights)
        assert report.rounds_used == 4

    def test_influence_actually_subtracted(self, trained_federation, rng):
        env = trained_federation
        recovery = FedRecovery(FedRecoveryConfig(noise_enabled=False))
        final = env["sim"].server.global_state
        unlearned, report = recovery.unlearn(env["store"], final, 0, rng)
        assert report.influence_l2 > 0.0
        assert state_math.l2_distance(unlearned, final) == pytest.approx(
            report.influence_l2, rel=1e-9
        )

    def test_noise_applied_when_enabled(self, trained_federation):
        env = trained_federation
        recovery = FedRecovery(FedRecoveryConfig(epsilon=5.0, delta=1e-5))
        final = env["sim"].server.global_state
        out1, report = recovery.unlearn(
            env["store"], final, 0, np.random.default_rng(1)
        )
        out2, _ = recovery.unlearn(
            env["store"], final, 0, np.random.default_rng(2)
        )
        assert report.sigma > 0.0
        # Different rng seeds → different releases.
        assert state_math.l2_distance(out1, out2) > 0.0

    def test_influence_clip_bounds_subtraction(self, trained_federation, rng):
        env = trained_federation
        clip = 0.01
        recovery = FedRecovery(
            FedRecoveryConfig(noise_enabled=False, influence_clip=clip)
        )
        final = env["sim"].server.global_state
        unlearned, report = recovery.unlearn(env["store"], final, 0, rng)
        assert report.influence_l2 <= clip + 1e-12
        assert state_math.l2_distance(unlearned, final) <= clip + 1e-12

    def test_empty_history_rejected(self, trained_federation, rng):
        env = trained_federation
        with pytest.raises(ValueError, match="empty"):
            FedRecovery().unlearn(
                RoundHistoryStore(), env["sim"].server.global_state, 0, rng
            )

    def test_unknown_client_rejected(self, trained_federation, rng):
        env = trained_federation
        with pytest.raises(ValueError, match="never appears"):
            FedRecovery().unlearn(
                env["store"], env["sim"].server.global_state, 42, rng
            )


class TestEraserRemovesPoisonedClient:
    def test_erasing_a_label_noise_client_recovers_accuracy(self, rng):
        """Behavioural check of FedEraser's promise: after a client with
        fully shuffled labels is erased, the calibrated model's test
        accuracy recovers toward the clean-retrain level and beats the
        contaminated final global model."""
        clients, test = make_blob_federation(
            num_clients=3, per_client=20, test_size=30, seed=5
        )
        # Poison client 0: permute its labels so it actively fights the
        # other clients' (clean) signal.
        poisoned = clients[0]
        shuffled = np.random.default_rng(8).permutation(poisoned.labels)
        clients[0] = type(poisoned)(
            images=poisoned.images,
            labels=shuffled,
            num_classes=poisoned.num_classes,
            name="poisoned",
        )
        fed = FederatedDataset(client_datasets=clients, test_set=test)
        factory = lambda: MLP(16, 3, np.random.default_rng(21))
        config = TrainConfig(epochs=2, batch_size=5, learning_rate=0.05)

        sim = FederatedSimulation(factory, fed, FedAvgAggregator(), config, seed=2)
        store = attach_history(sim, RoundHistoryStore())
        initial = sim.server.initial_state
        sim.run(3)
        final_model = sim.global_model()
        _, final_accuracy = evaluate(final_model, test)

        eraser = FedEraser(
            factory, FedEraserConfig(calibration_epochs=1, batch_size=5,
                                     learning_rate=0.05),
        )
        unlearned, _ = eraser.unlearn(store, initial, clients, 0, rng)
        model = factory()
        model.load_state_dict(unlearned)
        _, unlearned_accuracy = evaluate(model, test)

        assert unlearned_accuracy >= final_accuracy - 0.02

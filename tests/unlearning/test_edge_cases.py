"""Edge-case and failure-injection tests across the unlearning stack."""

import numpy as np
import pytest

from repro.data import ArrayDataset
from repro.nn.models import MLP
from repro.training import TrainConfig
from repro.unlearning import (
    GoldfishConfig,
    GoldfishLossConfig,
    GoldfishUnlearner,
    ShardedClientTrainer,
)

from ..conftest import make_blobs


def factory():
    return MLP(16, 3, np.random.default_rng(42))


SMALL_TRAIN = TrainConfig(epochs=1, batch_size=8, learning_rate=0.05)


class TestTinyDatasets:
    def test_single_sample_forget_set(self, rng):
        retain = make_blobs(num_samples=24, num_classes=3, shape=(1, 4, 4))
        forget = retain.subset([0])
        teacher = factory()
        student = factory()
        config = GoldfishConfig(loss=GoldfishLossConfig(), train=SMALL_TRAIN)
        result = GoldfishUnlearner(config).unlearn(student, teacher, retain,
                                                   forget, rng)
        assert result.epochs_run == 1
        assert np.isfinite(result.epoch_losses).all()

    def test_forget_larger_than_batch(self, rng):
        retain = make_blobs(num_samples=24, num_classes=3, shape=(1, 4, 4))
        forget = make_blobs(num_samples=20, num_classes=3, shape=(1, 4, 4), seed=9)
        config = GoldfishConfig(loss=GoldfishLossConfig(), train=SMALL_TRAIN)
        result = GoldfishUnlearner(config).unlearn(factory(), factory(), retain,
                                                   forget, rng)
        assert np.isfinite(result.epoch_losses).all()

    def test_retain_smaller_than_batch(self, rng):
        retain = make_blobs(num_samples=5, num_classes=3, shape=(1, 4, 4))
        config = GoldfishConfig(
            loss=GoldfishLossConfig(),
            train=TrainConfig(epochs=1, batch_size=100, learning_rate=0.05),
        )
        result = GoldfishUnlearner(config).unlearn(factory(), factory(), retain,
                                                   None, rng)
        assert result.epochs_run == 1

    def test_shard_trainer_one_sample_shards(self, rng):
        ds = make_blobs(num_samples=4, num_classes=2, shape=(1, 4, 4))
        trainer = ShardedClientTrainer(ds, 4, factory, rng)
        assert all(len(idx) == 1 for idx in trainer.shard_indices)
        trainer.train_all(SMALL_TRAIN)
        assert trainer.local_state()


class TestNumericalRobustness:
    def test_extreme_teacher_logits(self, rng):
        """Saturated teachers (±1e3 logits) must not produce NaNs."""
        retain = make_blobs(num_samples=16, num_classes=3, shape=(1, 4, 4))

        class Saturated(MLP):
            def forward(self, x):
                out = super().forward(x)
                out.data *= 1000.0
                return out

        teacher = Saturated(16, 3, np.random.default_rng(0))
        config = GoldfishConfig(loss=GoldfishLossConfig(), train=SMALL_TRAIN)
        result = GoldfishUnlearner(config).unlearn(factory(), teacher, retain,
                                                   None, rng)
        assert np.isfinite(result.epoch_losses).all()

    def test_long_unlearning_stays_finite(self, rng):
        """Many epochs with an active forget term must not diverge (the
        forget-loss cap is what prevents the Eq. 1 blow-up)."""
        retain = make_blobs(num_samples=30, num_classes=3, shape=(1, 4, 4))
        forget = make_blobs(num_samples=6, num_classes=3, shape=(1, 4, 4), seed=4)
        config = GoldfishConfig(
            loss=GoldfishLossConfig(forget_scale=1.0),
            train=TrainConfig(epochs=25, batch_size=10, learning_rate=0.1),
        )
        student = factory()
        result = GoldfishUnlearner(config).unlearn(student, factory(), retain,
                                                   forget, rng)
        assert np.isfinite(result.epoch_losses).all()
        for p in student.parameters():
            assert np.isfinite(p.data).all()

    def test_uncapped_variant_available_for_study(self, rng):
        """An explicit huge cap restores the paper's literal Eq. 1 for
        ablation purposes (and documents the instability)."""
        config = GoldfishLossConfig(forget_cap=1e9)
        assert config.forget_cap == 1e9


class TestDeletionOrderIndependence:
    def test_shard_deletion_then_retrain_matches_sizes(self, rng):
        ds = make_blobs(num_samples=40, num_classes=3, shape=(1, 4, 4))
        trainer = ShardedClientTrainer(ds, 4, factory, rng)
        trainer.train_all(SMALL_TRAIN)
        first = trainer.shard_indices[0][:2]
        trainer.delete(first, SMALL_TRAIN)
        second = trainer.shard_indices[-1][:2]
        trainer.delete(second, SMALL_TRAIN)
        assert trainer.total_size() == 36
        merged = np.concatenate(trainer.shard_indices)
        assert len(np.unique(merged)) == 36

    def test_deleting_same_index_twice_is_noop_second_time(self, rng):
        ds = make_blobs(num_samples=20, num_classes=2, shape=(1, 4, 4))
        trainer = ShardedClientTrainer(ds, 2, factory, rng)
        trainer.train_all(SMALL_TRAIN)
        victim = trainer.shard_indices[0][:2]
        trainer.delete(victim, SMALL_TRAIN)
        report = trainer.delete(victim, SMALL_TRAIN)  # already gone
        assert report.affected_shards == []
        assert trainer.total_size() == 18

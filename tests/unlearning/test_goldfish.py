"""The Goldfish teacher/student unlearning loop."""

import numpy as np
import pytest

from repro.data import ArrayDataset
from repro.nn.models import MLP
from repro.training import TrainConfig, accuracy, train
from repro.unlearning import (
    EarlyStopConfig,
    GoldfishConfig,
    GoldfishLossConfig,
    GoldfishUnlearner,
)

from ..conftest import make_blobs


def factory(seed=42):
    return MLP(16, 4, np.random.default_rng(seed))


def poisoned_setup(seed=0):
    """Teacher trained on data where class-3 samples are mislabelled as 0
    (a crude 'backdoor'); forget set = the mislabelled samples."""
    ds = make_blobs(num_samples=80, num_classes=4, shape=(1, 4, 4), seed=seed)
    labels = ds.labels.copy()
    poison_mask = labels == 3
    labels[poison_mask] = 0
    poisoned = ArrayDataset(ds.images, labels, 4)
    forget = poisoned.subset(np.flatnonzero(poison_mask))
    retain = poisoned.subset(np.flatnonzero(~poison_mask))

    teacher = factory(1)
    train(teacher, poisoned, TrainConfig(epochs=20, batch_size=20, learning_rate=0.2),
          np.random.default_rng(2))
    clean = ds  # original correct labels
    return teacher, forget, retain, clean


BASE_CONFIG = GoldfishConfig(
    loss=GoldfishLossConfig(temperature=3.0),
    train=TrainConfig(epochs=10, batch_size=20, learning_rate=0.2),
)


class TestUnlearningBehaviour:
    def test_student_learns_retain_data(self, rng):
        teacher, forget, retain, clean = poisoned_setup()
        student = factory(7)
        GoldfishUnlearner(BASE_CONFIG).unlearn(student, teacher, retain, forget, rng)
        assert accuracy(student, retain) > 0.8

    def test_student_forgets_poisoned_mapping(self, rng):
        """After unlearning, the student must NOT predict the poisoned label
        (0) on the forget samples at the teacher's rate."""
        teacher, forget, retain, clean = poisoned_setup()
        from repro.training import predict_logits
        teacher_poison_rate = (
            predict_logits(teacher, forget.images).argmax(1) == 0
        ).mean()
        student = factory(7)
        GoldfishUnlearner(BASE_CONFIG).unlearn(student, teacher, retain, forget, rng)
        student_poison_rate = (
            predict_logits(student, forget.images).argmax(1) == 0
        ).mean()
        assert teacher_poison_rate > 0.8  # teacher was contaminated
        assert student_poison_rate < teacher_poison_rate - 0.3

    def test_no_forget_set_degrades_to_distillation(self, rng):
        teacher, _, retain, _ = poisoned_setup()
        student = factory(7)
        result = GoldfishUnlearner(BASE_CONFIG).unlearn(student, teacher, retain,
                                                        None, rng)
        assert result.epochs_run == BASE_CONFIG.train.epochs
        assert accuracy(student, retain) > 0.8

    def test_empty_forget_set_treated_as_none(self, rng):
        teacher, _, retain, _ = poisoned_setup()
        empty = retain.subset([])
        student = factory(7)
        result = GoldfishUnlearner(BASE_CONFIG).unlearn(student, teacher, retain,
                                                        empty, rng)
        assert result.epochs_run > 0

    def test_result_metadata(self, rng):
        teacher, forget, retain, _ = poisoned_setup()
        student = factory(7)
        result = GoldfishUnlearner(BASE_CONFIG).unlearn(student, teacher, retain,
                                                        forget, rng)
        assert result.epochs_run == len(result.epoch_losses)
        assert result.wall_seconds > 0
        assert result.temperature_used == 3.0
        assert not result.stopped_early


class TestEarlyStop:
    def test_early_stop_cuts_epochs(self, rng):
        teacher, forget, retain, _ = poisoned_setup()
        config = GoldfishConfig(
            loss=GoldfishLossConfig(),
            train=TrainConfig(epochs=30, batch_size=20, learning_rate=0.2),
            early_stop=EarlyStopConfig(delta=1.0, mode="last", enabled=True),
        )
        student = factory(7)
        result = GoldfishUnlearner(config).unlearn(student, teacher, retain, forget, rng)
        assert result.stopped_early
        assert result.epochs_run < 30

    def test_disabled_early_stop_runs_all_epochs(self, rng):
        teacher, forget, retain, _ = poisoned_setup()
        config = GoldfishConfig(
            loss=GoldfishLossConfig(),
            train=TrainConfig(epochs=4, batch_size=20, learning_rate=0.2),
            early_stop=EarlyStopConfig(enabled=False),
        )
        student = factory(7)
        result = GoldfishUnlearner(config).unlearn(student, teacher, retain, forget, rng)
        assert result.epochs_run == 4


class TestAdaptiveTemperature:
    def test_adaptive_temperature_used(self, rng):
        teacher, forget, retain, _ = poisoned_setup()
        config = GoldfishConfig(
            loss=GoldfishLossConfig(temperature=3.0),
            train=TrainConfig(epochs=1, batch_size=20, learning_rate=0.1),
            adaptive_temperature=True,
        )
        student = factory(7)
        result = GoldfishUnlearner(config).unlearn(student, teacher, retain, forget, rng)
        from repro.unlearning import adaptive_temperature
        expected = adaptive_temperature(3.0, len(retain), len(forget))
        assert result.temperature_used == pytest.approx(expected)

    def test_fixed_temperature_by_default(self, rng):
        teacher, forget, retain, _ = poisoned_setup()
        student = factory(7)
        result = GoldfishUnlearner(BASE_CONFIG).unlearn(student, teacher, retain,
                                                        forget, rng)
        assert result.temperature_used == BASE_CONFIG.loss.temperature


class TestAblationToggles:
    @pytest.mark.parametrize("use_confusion,use_distillation", [
        (False, False), (True, False), (False, True), (True, True),
    ])
    def test_every_variant_trains(self, rng, use_confusion, use_distillation):
        teacher, forget, retain, _ = poisoned_setup()
        config = GoldfishConfig(
            loss=GoldfishLossConfig(use_confusion=use_confusion,
                                    use_distillation=use_distillation),
            train=TrainConfig(epochs=2, batch_size=20, learning_rate=0.1),
        )
        student = factory(7)
        result = GoldfishUnlearner(config).unlearn(student, teacher, retain, forget, rng)
        assert result.epochs_run == 2
        assert all(np.isfinite(l) for l in result.epoch_losses)

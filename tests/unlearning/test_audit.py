"""The deletion-audit report."""

import numpy as np
import pytest

from repro.data import ArrayDataset, BackdoorAttack, TriggerPattern
from repro.nn.models import MLP
from repro.training import TrainConfig, train
from repro.unlearning import AuditThresholds, audit_deletion

from ..conftest import make_blobs


def trained_model(dataset, seed=0, epochs=15):
    model = MLP(16, 3, np.random.default_rng(seed))
    train(model, dataset, TrainConfig(epochs=epochs, batch_size=10,
                                      learning_rate=0.2),
          np.random.default_rng(seed + 1))
    return model


@pytest.fixture(scope="module")
def world():
    dist = dict(num_classes=3, shape=(1, 4, 4), separation=1.2, noise=0.8)
    clean = make_blobs(num_samples=60, seed=0, **dist)
    test = make_blobs(num_samples=60, seed=99, **dist)
    forget = make_blobs(num_samples=15, seed=7, **dist)

    # "original" trained on clean + forget; "unlearned" == retrained on clean.
    contaminated = clean.concat(forget)
    original = trained_model(contaminated, seed=1)
    unlearned = trained_model(clean, seed=2)
    return clean, test, forget, original, unlearned


class TestAuditPaths:
    def test_minimal_audit_accuracy_only(self, world):
        _, test, _, original, unlearned = world
        report = audit_deletion(original, unlearned, test)
        assert 0 <= report.accuracy_before <= 1
        assert report.backdoor_after is None
        assert report.membership_after is None
        assert report.divergence_vs_reference is None

    def test_full_audit(self, world):
        _, test, forget, original, unlearned = world
        attack = BackdoorAttack(TriggerPattern(size=2), target_label=0)
        report = audit_deletion(
            original, unlearned, test,
            forget_set=forget,
            attack=attack,
            reference_model=unlearned,
        )
        assert report.backdoor_after is not None
        assert report.membership_after is not None
        # self-comparison as reference: zero divergence
        assert report.divergence_vs_reference.jsd == pytest.approx(0.0, abs=1e-9)

    def test_relearn_check_enabled_with_factory(self, world):
        _, test, forget, original, unlearned = world
        factory = lambda: MLP(16, 3, np.random.default_rng(0))
        config = TrainConfig(epochs=1, batch_size=5, learning_rate=0.1)
        report = audit_deletion(
            original, unlearned, test,
            forget_set=forget,
            model_factory=factory,
            relearn_config=config,
        )
        assert report.relearn is not None
        assert report.relearn.speedup > 0
        assert "relearn speedup" in report.summary()

    def test_relearn_failure_flagged(self, world):
        """Auditing the ORIGINAL model (which memorised the forget set)
        with a strict speedup threshold must raise the flag."""
        _, test, forget, original, _ = world
        factory = lambda: MLP(16, 3, np.random.default_rng(0))
        config = TrainConfig(epochs=1, batch_size=5, learning_rate=0.1)
        report = audit_deletion(
            original, original, test,
            forget_set=forget,
            model_factory=factory,
            relearn_config=config,
            thresholds=AuditThresholds(max_relearn_speedup=1.01),
        )
        if report.relearn.speedup > 1.01:
            assert "relearns_too_fast" in report.failures
            assert not report.passed

    def test_relearn_skipped_without_config(self, world):
        _, test, forget, original, unlearned = world
        report = audit_deletion(
            original, unlearned, test, forget_set=forget,
            model_factory=lambda: MLP(16, 3, np.random.default_rng(0)),
        )
        assert report.relearn is None

    def test_identity_model_passes_utility(self, world):
        _, test, _, original, _ = world
        report = audit_deletion(original, original, test)
        assert report.accuracy_drop == 0.0
        assert "accuracy_drop" not in report.failures

    def test_catastrophic_model_fails(self, world):
        _, test, _, original, _ = world
        broken = MLP(16, 3, np.random.default_rng(1234))  # untrained
        report = audit_deletion(
            original, broken, test,
            thresholds=AuditThresholds(max_accuracy_drop=0.05),
        )
        assert not report.passed
        assert "accuracy_drop" in report.failures

    def test_backdoor_retention_flagged(self, world):
        """Auditing the original model against itself with an implanted
        backdoor must flag backdoor_retained if ASR stays high."""
        dist = dict(num_classes=3, shape=(1, 4, 4), separation=1.5, noise=0.4)
        clean = make_blobs(num_samples=60, seed=0, **dist)
        attack = BackdoorAttack(TriggerPattern(size=2, value=5.0), target_label=0)
        poisoned = attack.poison(clean, np.arange(15))
        backdoored = trained_model(poisoned, seed=3, epochs=30)
        test = make_blobs(num_samples=60, seed=42, **dist)
        if attack.success_rate(backdoored, test) > 0.10:
            report = audit_deletion(backdoored, backdoored, test, attack=attack)
            assert "backdoor_retained" in report.failures

    def test_empty_test_set_rejected(self, world):
        _, _, _, original, unlearned = world
        empty = ArrayDataset(np.zeros((0, 1, 4, 4)), np.zeros(0, dtype=int), 3)
        with pytest.raises(ValueError):
            audit_deletion(original, unlearned, empty)

    def test_summary_renders(self, world):
        _, test, forget, original, unlearned = world
        report = audit_deletion(original, unlearned, test, forget_set=forget)
        text = report.summary()
        assert "accuracy" in text
        assert "verdict" in text

"""The non-blocking deletion service: overlap without divergence.

The service's contract: final ensemble states are bit-identical to the
barriered ``maybe_execute_batched`` path (delete_begin snapshots
everything a chain reads at submission time), windows overlap subsequent
rounds under a submit/drain backend (``overlap_rounds`` > 0), and the
manager's policy/queue semantics are unchanged.
"""

import numpy as np
import pytest

from repro.nn.models import RegistryModelFactory
from repro.runtime import PoolBackend
from repro.unlearning import (
    BatchSizePolicy,
    DeletionManager,
    DeletionService,
    PeriodicPolicy,
    SisaConfig,
    SisaEnsemble,
)

from ..conftest import make_blobs

FACTORY = RegistryModelFactory(name="mlp", num_classes=3, in_channels=1, image_size=4)
SISA = SisaConfig(num_shards=3, num_slices=2, epochs_per_slice=1, batch_size=8)
DATASET = make_blobs(num_samples=72, num_classes=3, shape=(1, 4, 4), seed=0)

# round -> indices filed that round (two flush windows under the policy).
REQUEST_SCHEDULE = {1: [3, 40], 3: [41, 70]}


def fresh_ensemble(backend=None):
    return SisaEnsemble(FACTORY, DATASET, SISA, seed=5, backend=backend).fit()


def shard_states(ensemble):
    return [
        {key: value.copy() for key, value in shard.model.state_dict().items()}
        for shard in ensemble._shards
    ]


def run_barriered(num_rounds=6):
    ensemble = fresh_ensemble()
    manager = DeletionManager(BatchSizePolicy(2))
    for round_index in range(num_rounds):
        for index in REQUEST_SCHEDULE.get(round_index, []):
            manager.submit(client_id=0, indices=[index], round_index=round_index)
        manager.maybe_execute_batched(ensemble, round_index)
    return manager, ensemble


def run_service(backend=None, num_rounds=6):
    """The service loop, with deferred windows flushed after the run.

    How many rounds a window overlaps depends on real chain wall-clock,
    so a window whose chains outlast the loop may defer the next policy
    firing past ``num_rounds``; the tail loop flushes those.  The final
    ensemble states are timing-independent either way — chains snapshot
    everything they read at delete_begin time.
    """
    ensemble = fresh_ensemble(backend=backend)
    manager = DeletionManager(BatchSizePolicy(2))
    service = DeletionService(manager, ensemble)
    for round_index in range(num_rounds):
        service.poll(round_index)
        for index in REQUEST_SCHEDULE.get(round_index, []):
            manager.submit(client_id=0, indices=[index], round_index=round_index)
        service.maybe_submit(round_index)
    service.drain(num_rounds)
    # Requests the policy armed but a shard lock deferred flush here, now
    # that every window has drained and all shards are free.  Each pass
    # makes progress (armed + unlocked => flush), so this terminates.
    for _ in range(num_rounds):
        if not manager.num_pending:
            break
        service.maybe_submit(num_rounds)
        service.drain(num_rounds)
    assert not manager.num_pending
    return manager, ensemble


def assert_states_equal(a, b):
    for state_a, state_b in zip(a, b):
        assert state_a.keys() == state_b.keys()
        for key in state_a:
            np.testing.assert_array_equal(state_a[key], state_b[key])


class TestParity:
    def test_serial_fallback_matches_barriered_path(self):
        _, barriered = run_barriered()
        _, serviced = run_service()
        assert_states_equal(shard_states(barriered), shard_states(serviced))

    def test_pool_overlap_matches_barriered_path(self):
        _, barriered = run_barriered()
        pool = PoolBackend(max_workers=2)
        try:
            manager, serviced = run_service(backend=pool)
        finally:
            pool.close()
        assert_states_equal(shard_states(barriered), shard_states(serviced))
        # Windows submitted through the pool completed in a *later* round
        # than they were submitted (they overlapped the loop).
        assert manager.total_overlap_rounds > 0

    def test_same_windows_and_chains_as_barriered(self):
        barriered_manager, _ = run_barriered()
        pool = PoolBackend(max_workers=2)
        try:
            service_manager, _ = run_service(backend=pool)
        finally:
            pool.close()
        barriered = barriered_manager.executed_batches
        serviced = service_manager.executed_batches
        # Per-shard locking may split a barriered window across several
        # service windows (a request blocked behind a busy shard flushes
        # later, on its own), and where the split lands depends on real
        # chain wall-clock — so only timing-independent accounting is
        # compared: the same requests get retrained, and the total chain
        # cost is identical (a split window costs one chain per affected
        # shard either way).
        assert len(serviced) >= len(barriered)
        assert sum(b.chains_submitted for b in barriered) == sum(
            b.chains_submitted for b in serviced
        )
        assert sum(b.num_requests for b in barriered) == sum(
            b.num_requests for b in serviced
        )


class TestOverlapAccounting:
    def test_barriered_batches_complete_in_their_round(self):
        manager, _ = run_barriered()
        for batch in manager.executed_batches:
            assert batch.completed_round == batch.executed_round
            assert batch.overlap_rounds == 0
            assert not batch.in_flight

    def test_inflight_window_reports_in_flight(self):
        ensemble = fresh_ensemble(backend=PoolBackend(max_workers=2))
        try:
            manager = DeletionManager(BatchSizePolicy(1))
            service = DeletionService(manager, ensemble)
            manager.submit(client_id=0, indices=[3], round_index=0)
            batch = service.maybe_submit(0)
            assert batch is not None
            assert batch.in_flight
            assert batch.overlap_rounds == 0  # unknown until completion
            assert service.busy
            finished = service.drain(4)
            assert len(finished) == 1 and finished[0] is batch
            assert batch.completed_round == 4
            assert batch.overlap_rounds == 4
            assert batch.outcome is not None
        finally:
            ensemble.backend.close()

    def test_service_outcome_carries_deletion_report(self):
        manager, _ = run_barriered()
        pool = PoolBackend(max_workers=2)
        try:
            service_manager, _ = run_service(backend=pool)
        finally:
            pool.close()
        def totals(batches):
            shards, slices = set(), 0
            for batch in batches:
                assert batch.outcome is not None
                shards.update(batch.outcome.shards_affected)
                slices += batch.outcome.slices_retrained
            return shards, slices

        # Window boundaries may differ (per-shard splits are timing
        # dependent) but the work they account for is identical.
        assert totals(manager.executed_batches) == totals(
            service_manager.executed_batches
        )


class TestWindowDiscipline:
    def test_policy_deferred_while_window_in_flight(self):
        ensemble = fresh_ensemble(backend=PoolBackend(max_workers=2))
        try:
            manager = DeletionManager(BatchSizePolicy(1))
            service = DeletionService(manager, ensemble)
            manager.submit(client_id=0, indices=[3], round_index=0)
            first = service.maybe_submit(0)
            assert first is not None
            manager.submit(client_id=0, indices=[40], round_index=1)
            # Policy fires but a window is outstanding: deferred, queued.
            assert service.maybe_submit(1) is None
            assert manager.num_pending == 1
            service.drain(2)
            second = service.maybe_submit(3)
            assert second is not None
            service.drain(4)
            assert second.outcome.num_deleted == 1
        finally:
            ensemble.backend.close()

    def test_disjoint_shard_windows_overlap(self):
        """Per-shard locking: windows on disjoint shards retrain at once."""
        ensemble = fresh_ensemble(backend=PoolBackend(max_workers=2))
        try:
            manager = DeletionManager(BatchSizePolicy(1))
            service = DeletionService(manager, ensemble)
            manager.submit(client_id=0, indices=[3], round_index=0)  # shard 2
            first = service.maybe_submit(0)
            assert first is not None
            manager.submit(client_id=0, indices=[2], round_index=1)  # shard 1
            second = service.maybe_submit(1)
            assert second is not None
            assert service.windows_in_flight == 2
            assert service.max_windows_in_flight >= 2
            finished = service.drain(2)
            assert len(finished) == 2
            assert all(not batch.in_flight for batch in finished)
            assert ensemble.deleted_indices >= {2, 3}
        finally:
            ensemble.backend.close()

    def test_armed_remainder_flushes_without_new_firing(self):
        """A policy firing admits every pending request, even ones a shard
        lock defers — they flush once the shard frees, with no further
        firing (BatchSizePolicy(2) can never fire for a lone leftover)."""
        ensemble = fresh_ensemble(backend=PoolBackend(max_workers=2))
        try:
            manager = DeletionManager(BatchSizePolicy(2))
            service = DeletionService(manager, ensemble)
            manager.submit(client_id=0, indices=[3], round_index=0)  # shard 2
            manager.submit(client_id=0, indices=[40], round_index=0)  # shard 2
            first = service.maybe_submit(0)
            assert first is not None and first.num_requests == 2
            # Policy fires again, but 70 shares shard 2 with the window
            # in flight — only 41 (shard 1) flushes.
            manager.submit(client_id=0, indices=[41], round_index=1)  # shard 1
            manager.submit(client_id=0, indices=[70], round_index=1)  # shard 2
            second = service.maybe_submit(1)
            assert second is not None and second.num_requests == 1
            assert manager.num_pending == 1
            assert service.maybe_submit(2) is None  # shard 2 still locked
            service.drain(3)
            third = service.maybe_submit(4)
            assert third is not None and third.num_requests == 1
            service.drain(5)
            assert manager.num_pending == 0
        finally:
            ensemble.backend.close()

    def test_overlapping_delete_begin_rejected(self):
        ensemble = fresh_ensemble()
        ensemble.delete_begin([3])  # locks shard 2
        with pytest.raises(RuntimeError, match="already in flight"):
            ensemble.delete_begin([40])  # index 40 is also shard 2

    def test_disjoint_shard_delete_begin_allowed(self):
        ensemble = fresh_ensemble()
        first = ensemble.delete_begin([3])  # shard 2
        second = ensemble.delete_begin([2])  # shard 1
        # Windows may finish out of submission order.
        for pending in (second, first):
            results = ensemble.backend.run_tasks(pending.tasks)
            ensemble.delete_finish(pending, results)
        assert ensemble.deleted_indices >= {2, 3}

    def test_delete_finish_requires_begun_window(self):
        ensemble = fresh_ensemble()
        pending = ensemble.delete_begin([3])
        results = ensemble.backend.run_tasks(pending.tasks)
        ensemble.delete_finish(pending, results)
        with pytest.raises(RuntimeError, match="no deletion window"):
            ensemble.delete_finish(pending, results)

    def test_rerequested_deleted_indices_complete_immediately(self):
        ensemble = fresh_ensemble()
        ensemble.delete([3])
        manager = DeletionManager(BatchSizePolicy(1))
        service = DeletionService(manager, ensemble)
        manager.submit(client_id=0, indices=[3], round_index=0)
        batch = service.maybe_submit(0)
        assert batch is not None
        assert not batch.in_flight
        assert batch.chains_submitted == 0
        assert not service.busy

    def test_chain_failure_unlocks_ensemble(self):
        """A failed window must not wedge every future deletion."""

        class _FailingBackend:
            def run_tasks(self, tasks):
                raise RuntimeError("chains exploded")

        ensemble = fresh_ensemble()
        healthy = ensemble.backend
        ensemble.backend = _FailingBackend()
        with pytest.raises(RuntimeError, match="chains exploded"):
            ensemble.delete([3])
        # Unlocked: the logical deletion stands, a retry on new indices
        # proceeds instead of raising "already in flight".
        ensemble.backend = healthy
        report = ensemble.delete([40])
        assert report.num_deleted == 1
        assert 3 in ensemble.deleted_indices  # logically gone either way

    def test_periodic_policy_cadence_respected(self):
        ensemble = fresh_ensemble()
        manager = DeletionManager(PeriodicPolicy(every_rounds=3))
        service = DeletionService(manager, ensemble)
        manager.submit(client_id=0, indices=[3], round_index=1)
        assert service.maybe_submit(1) is None  # 1 % 3 != 0
        assert service.maybe_submit(3) is not None

"""Deletion-request queueing, policies and latency accounting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.dataset import FederatedDataset
from repro.federated import FedAvgAggregator, FederatedSimulation
from repro.nn.models import MLP
from repro.training.config import TrainConfig
from repro.unlearning import (
    BatchSizePolicy,
    DeletionManager,
    DeletionRequest,
    GoldfishConfig,
    GoldfishLossConfig,
    ImmediatePolicy,
    PeriodicPolicy,
    federated_goldfish,
)

from ..conftest import make_blob_federation


class TestDeletionRequest:
    def test_indices_deduplicated_and_sorted(self):
        request = DeletionRequest(0, np.array([5, 1, 5, 3]), submitted_round=0)
        np.testing.assert_array_equal(request.indices, [1, 3, 5])

    def test_validation(self):
        with pytest.raises(ValueError, match="no indices"):
            DeletionRequest(0, np.array([]), 0)
        with pytest.raises(ValueError, match="submitted_round"):
            DeletionRequest(0, np.array([1]), -1)


class TestPolicies:
    def request(self, round_index=0):
        return DeletionRequest(0, np.array([1]), round_index)

    def test_immediate(self):
        policy = ImmediatePolicy()
        assert not policy.should_execute([], 0)
        assert policy.should_execute([self.request()], 0)

    def test_batch_size(self):
        policy = BatchSizePolicy(min_requests=2)
        assert not policy.should_execute([self.request()], 5)
        assert policy.should_execute([self.request(), self.request()], 5)
        with pytest.raises(ValueError):
            BatchSizePolicy(0)

    def test_periodic(self):
        policy = PeriodicPolicy(every_rounds=3)
        pending = [self.request()]
        assert policy.should_execute(pending, 0)
        assert not policy.should_execute(pending, 1)
        assert not policy.should_execute(pending, 2)
        assert policy.should_execute(pending, 3)
        assert not policy.should_execute([], 3)
        with pytest.raises(ValueError):
            PeriodicPolicy(0)


class TestQueueMechanics:
    def test_merging_per_client(self):
        manager = DeletionManager(BatchSizePolicy(99))
        manager.submit(0, [1, 2], round_index=0)
        manager.submit(1, [7], round_index=0)
        manager.submit(0, [2, 3], round_index=1)
        merged = manager.merged_indices()
        np.testing.assert_array_equal(merged[0], [1, 2, 3])
        np.testing.assert_array_equal(merged[1], [7])
        assert manager.num_pending == 3

    def test_policy_gate(self):
        manager = DeletionManager(BatchSizePolicy(min_requests=2))
        manager.submit(0, [1], round_index=0)
        assert manager.maybe_execute(None, 0, lambda sim: None) is None
        assert manager.num_pending == 1

    def test_execute_before_submission_round_rejected(self):
        manager = DeletionManager(ImmediatePolicy())
        manager.submit(0, [1], round_index=5)

        class FakeSim:
            clients = []

        with pytest.raises(ValueError, match="earlier round"):
            manager.maybe_execute(FakeSim(), 2, lambda sim: None)

    def test_mean_latency_requires_history(self):
        manager = DeletionManager()
        with pytest.raises(ValueError, match="no executed"):
            manager.mean_latency()


class TestRequestIdempotence:
    def test_duplicate_request_id_returns_original(self):
        manager = DeletionManager(BatchSizePolicy(99))
        first = manager.submit(0, [1, 2], round_index=0, request_id="req-a")
        again = manager.submit(0, [1, 2], round_index=3, request_id="req-a")
        assert again is first
        assert manager.num_pending == 1
        assert manager.num_duplicates == 1

    def test_duplicate_detected_after_execution(self):
        # A client retrying after its request already retrained must not
        # enqueue a second window.
        manager = DeletionManager(ImmediatePolicy())

        class FakeSim:
            clients = {0: type("C", (), {"request_deletion": staticmethod(lambda idx: None)})()}

        manager.submit(0, [1], round_index=0, request_id="req-b")
        manager.maybe_execute(FakeSim(), 0, lambda sim: None)
        assert manager.num_pending == 0
        manager.submit(0, [1], round_index=2, request_id="req-b")
        assert manager.num_pending == 0
        assert manager.num_duplicates == 1

    def test_distinct_ids_and_anonymous_requests_enqueue(self):
        manager = DeletionManager(BatchSizePolicy(99))
        manager.submit(0, [1], round_index=0, request_id="req-a")
        manager.submit(0, [2], round_index=0, request_id="req-b")
        manager.submit(0, [3], round_index=0)  # no id: never deduped
        manager.submit(0, [4], round_index=0)
        assert manager.num_pending == 4
        assert manager.num_duplicates == 0

    def test_empty_indices_rejected_with_clear_error(self):
        manager = DeletionManager()
        with pytest.raises(ValueError, match="no indices"):
            manager.submit(0, [], round_index=0, request_id="req-empty")
        # The failed submission must not reserve the id.
        manager.submit(0, [1], round_index=0, request_id="req-empty")
        assert manager.num_pending == 1


class TestEndToEnd:
    def _simulation(self):
        clients, test = make_blob_federation(
            num_clients=3, per_client=15, test_size=15
        )
        fed = FederatedDataset(client_datasets=clients, test_set=test)
        factory = lambda: MLP(16, 3, np.random.default_rng(0))
        config = TrainConfig(epochs=1, batch_size=5, learning_rate=0.05)
        sim = FederatedSimulation(factory, fed, FedAvgAggregator(), config, seed=0)
        sim.run(2)
        return sim, config

    def test_batched_execution_with_goldfish(self):
        sim, config = self._simulation()
        manager = DeletionManager(PeriodicPolicy(every_rounds=4))
        goldfish = GoldfishConfig(
            loss=GoldfishLossConfig(temperature=3.0, mu_c=0.25, mu_d=1.0),
            train=config,
        )
        unlearn = lambda s: federated_goldfish(s, goldfish, num_rounds=1)

        sizes_before = [len(c.dataset) for c in sim.clients]
        manager.submit(0, [0, 1], round_index=1)
        assert manager.maybe_execute(sim, 1, unlearn) is None  # 1 % 4 != 0
        manager.submit(1, [3], round_index=2)
        batch = manager.maybe_execute(sim, 4, unlearn)

        assert batch is not None
        assert batch.num_requests == 2
        assert sorted(batch.latencies) == [2, 3]
        assert batch.max_latency == 3
        assert manager.num_pending == 0
        assert manager.num_executions == 1
        assert manager.mean_latency() == pytest.approx(2.5)
        # Deletions were finalized: datasets physically shrank.
        assert len(sim.clients[0].dataset) == sizes_before[0] - 2
        assert len(sim.clients[1].dataset) == sizes_before[1] - 1
        assert batch.outcome.rounds_run == 1

    def test_immediate_policy_runs_every_submission(self):
        sim, config = self._simulation()
        manager = DeletionManager(ImmediatePolicy())
        goldfish = GoldfishConfig(
            loss=GoldfishLossConfig(temperature=3.0, mu_c=0.25, mu_d=1.0),
            train=config,
        )
        unlearn = lambda s: federated_goldfish(s, goldfish, num_rounds=1)
        for round_index in (1, 2):
            manager.submit(0, [0], round_index=round_index)
            assert manager.maybe_execute(sim, round_index, unlearn) is not None
        assert manager.num_executions == 2
        assert manager.mean_latency() == 0.0


class TestProperties:
    @given(
        submissions=st.lists(
            st.tuples(
                st.integers(0, 3),                      # client id
                st.lists(st.integers(0, 30), min_size=1, max_size=6),
                st.integers(0, 10),                     # round
            ),
            min_size=1, max_size=12,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_property_merged_indices_cover_all_submissions(self, submissions):
        manager = DeletionManager(BatchSizePolicy(min_requests=10_000))
        expected = {}
        for client_id, indices, round_index in submissions:
            manager.submit(client_id, indices, round_index)
            expected.setdefault(client_id, set()).update(indices)
        merged = manager.merged_indices()
        assert set(merged) == set(expected)
        for client_id, indices in merged.items():
            assert set(indices.tolist()) == expected[client_id]
            assert list(indices) == sorted(set(indices))  # unique + sorted


class TestBatchedSisaExecution:
    """The runtime-routed path: a flush window coalesces every pending
    request into one ensemble.delete() — one retrain chain per affected
    shard, not per request."""

    def build_ensemble(self, backend=None):
        from repro.nn.models import RegistryModelFactory
        from repro.unlearning import SisaConfig, SisaEnsemble

        from ..conftest import make_blobs

        factory = RegistryModelFactory(
            name="mlp", num_classes=3, in_channels=1, image_size=4
        )
        dataset = make_blobs(num_samples=54, num_classes=3, shape=(1, 4, 4))
        config = SisaConfig(
            num_shards=3, num_slices=3, epochs_per_slice=1, batch_size=8,
            learning_rate=0.08,
        )
        return SisaEnsemble(factory, dataset, config, seed=0, backend=backend).fit()

    def shard_targets(self, ensemble, shard, count, offset=0):
        """`count` distinct global indices living in `shard`."""
        return [
            int(ensemble._shards[shard].slice_indices[2][offset + i])
            for i in range(count)
        ]

    def test_window_submits_one_chain_per_affected_shard(self):
        ensemble = self.build_ensemble()
        manager = DeletionManager(BatchSizePolicy(min_requests=5))
        # Five requests, but they only touch shards 0 and 2.
        for round_index, target in enumerate(
            self.shard_targets(ensemble, 0, 3) + self.shard_targets(ensemble, 2, 2)
        ):
            assert (
                manager.maybe_execute_batched(ensemble, round_index) is None
                or round_index == 4
            )
            manager.submit(client_id=0, indices=[target], round_index=round_index)
        batch = manager.maybe_execute_batched(ensemble, round_index=5)
        assert batch is not None
        assert batch.num_requests == 5
        assert batch.chains_submitted == 2  # shards 0 and 2, once each
        assert batch.chains_submitted < batch.num_requests
        assert batch.outcome.shards_affected == [0, 2]
        assert batch.outcome.num_deleted == 5
        assert manager.num_pending == 0
        assert manager.total_chains_submitted == 2
        assert ensemble.num_deleted == 5

    def test_batched_matches_one_shot_delete(self):
        """Flushing a window is exactly one coalesced delete: the ensemble
        state is bit-identical to calling delete() once with the union."""
        batched = self.build_ensemble()
        manager = DeletionManager(BatchSizePolicy(min_requests=4))
        targets = self.shard_targets(batched, 0, 2) + self.shard_targets(batched, 1, 2)
        for round_index, target in enumerate(targets):
            manager.submit(client_id=0, indices=[target], round_index=round_index)
        batch = manager.maybe_execute_batched(batched, round_index=4)
        assert batch is not None

        oneshot = self.build_ensemble()
        oneshot.delete(sorted(targets))
        for a, b in zip(batched._shards, oneshot._shards):
            assert a.rng_state == b.rng_state
            for key, value in a.model.state_dict().items():
                np.testing.assert_array_equal(value, b.model.state_dict()[key])

    def test_latencies_recorded_per_request(self):
        ensemble = self.build_ensemble()
        manager = DeletionManager(PeriodicPolicy(every_rounds=4))
        manager.submit(0, [self.shard_targets(ensemble, 0, 1)[0]], round_index=1)
        manager.submit(0, [self.shard_targets(ensemble, 1, 1)[0]], round_index=3)
        assert manager.maybe_execute_batched(ensemble, round_index=3) is None
        batch = manager.maybe_execute_batched(ensemble, round_index=4)
        assert batch.latencies == [3, 1]
        assert batch.max_latency == 3

    def test_duplicate_indices_across_requests_coalesce(self):
        ensemble = self.build_ensemble()
        manager = DeletionManager(BatchSizePolicy(min_requests=2))
        target = self.shard_targets(ensemble, 0, 1)[0]
        manager.submit(0, [target], round_index=0)
        manager.submit(1, [target], round_index=1)  # same sample, twice
        batch = manager.maybe_execute_batched(ensemble, round_index=1)
        assert batch.num_requests == 2
        assert batch.outcome.num_deleted == 1
        assert batch.chains_submitted == 1

    def test_rerequested_deletion_does_not_wedge_the_queue(self):
        """A request for an already-deleted sample (idempotent re-submit)
        is filtered out of the window instead of poisoning every flush."""
        ensemble = self.build_ensemble()
        target = self.shard_targets(ensemble, 0, 1)[0]
        manager = DeletionManager()
        manager.submit(0, [target], round_index=0)
        first = manager.maybe_execute_batched(ensemble, round_index=0)
        assert first.chains_submitted == 1

        # Same sample again, plus a fresh one: the stale index is dropped,
        # the fresh one is honoured, and the queue drains.
        fresh = self.shard_targets(ensemble, 1, 1)[0]
        manager.submit(0, [target], round_index=1)
        manager.submit(0, [fresh], round_index=1)
        batch = manager.maybe_execute_batched(ensemble, round_index=1)
        assert batch is not None
        assert batch.outcome.num_deleted == 1
        assert manager.num_pending == 0
        assert ensemble.num_deleted == 2

        # A window containing ONLY stale indices executes nothing but
        # still clears (zero chains, outcome None).
        manager.submit(0, [target], round_index=2)
        empty = manager.maybe_execute_batched(ensemble, round_index=2)
        assert empty is not None
        assert empty.chains_submitted == 0
        assert empty.outcome is None
        assert manager.num_pending == 0

    def test_future_submission_round_rejected(self):
        ensemble = self.build_ensemble()
        manager = DeletionManager()
        manager.submit(0, [self.shard_targets(ensemble, 0, 1)[0]], round_index=7)
        with pytest.raises(ValueError, match="earlier round"):
            manager.maybe_execute_batched(ensemble, round_index=3)

    def test_merged_global_indices_empty_queue(self):
        manager = DeletionManager()
        np.testing.assert_array_equal(manager.merged_global_indices(), [])

"""Chaos-hardened cluster: seeded fault schedules never change results.

The headline invariant of the fault-injection subsystem: under any
seeded :class:`FaultPlan` that leaves at least one agent alive, sync and
buffered-async federations over ``cluster:*`` — raw and delta codecs,
vectorized or not — complete **bit-identical** to a fault-free run,
because every recovery path (charge-free corrupt-frame requeue, charged
lease resubmission, agent reconnect, process respawn) re-runs tasks that
carry their full model state and exact RNG position.

Three distinct schedules cover the taxonomy end to end: lossy-slow
(drops + delays), hostile-wire (corruption + tears), and
infrastructure-level (timed partition + SIGKILL with reconnect).
"""

import multiprocessing
import os
import signal

import pytest

from repro.cluster import ClusterBackend, FaultPlan
from repro.runtime import PoolBackend

from .test_parity import assert_states_equal, make_sim

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

pytestmark = pytest.mark.skipif(
    not HAS_FORK, reason="cluster tests spawn local agents via fork"
)

# The three acceptance schedules.  Probabilities are per sent frame;
# agents emit hundreds of frames per run (heartbeats included), so every
# schedule reliably injects faults without drowning the run in them.
DROP_DELAY = FaultPlan(seed=101, drop=0.03, delay=0.2, delay_range=(0.001, 0.004))
CORRUPT_TEAR = FaultPlan(seed=202, corrupt=0.02, tear=0.01)
PARTITION_KILL = FaultPlan(seed=303, drop=0.01, partitions=((25, 0.4),))

SCHEDULES = {
    "drop+delay": DROP_DELAY,
    "corrupt+tear": CORRUPT_TEAR,
    "partition": PARTITION_KILL,
}


def chaos_cluster(plan, workers=2, retries=8, respawn=True):
    """A chaos-armed localhost cluster tuned for fast fault turnaround:
    tight heartbeats, snappy reconnect backoff, short frame stalls."""
    return ClusterBackend(
        max_workers=workers,
        max_task_retries=retries,
        heartbeat_interval=0.2,
        heartbeat_timeout=1.0,
        frame_timeout=5.0,
        chaos=plan,
        respawn=respawn,
        agent_options={"backoff_base": 0.05, "backoff_cap": 0.5},
    )


def fault_activity(report):
    """Total recovery actions a run's FaultReport records."""
    return (
        report["peer_drops"]
        + report["corrupt_frames"]
        + report["reconnects"]
        + report["charged_retries"]
        + report["free_requeues"]
        + report["suspects"]
    )


class TestChaosParity:
    @pytest.mark.parametrize(
        "schedule,codec,use_async",
        [
            ("drop+delay", "raw", False),
            ("drop+delay", "raw", True),
            ("corrupt+tear", "delta", False),
            ("corrupt+tear", "delta", True),
        ],
        ids=["drop-sync-raw", "drop-async-raw", "corrupt-sync-delta", "corrupt-async-delta"],
    )
    def test_chaotic_cluster_matches_fault_free_pool_bitwise(
        self, schedule, codec, use_async
    ):
        pool = PoolBackend(max_workers=2)
        cluster = chaos_cluster(SCHEDULES[schedule])
        try:
            sim_pool = make_sim(backend=pool, codec=codec, use_async=use_async)
            sim_cluster = make_sim(backend=cluster, codec=codec, use_async=use_async)
            h_pool = sim_pool.run(3)
            h_cluster = sim_cluster.run(3)
            assert h_cluster.accuracies == h_pool.accuracies
            assert_states_equal(
                sim_cluster.server.global_state, sim_pool.server.global_state
            )
            for a, b in zip(sim_cluster.clients, sim_pool.clients):
                assert_states_equal(a.model.state_dict(), b.model.state_dict())
                assert a.rng.bit_generator.state == b.rng.bit_generator.state
        finally:
            cluster.close()
            pool.close()

    def test_partition_and_sigkill_with_reconnect_bitwise(self):
        """The infrastructure schedule: a timed partition forces a live
        agent through the reconnect loop, and a SIGKILL mid-run forces a
        respawn — both on top of background frame drops."""
        sim_serial = make_sim(backend=None)
        for round_index in range(4):
            sim_serial.run_round(round_index)

        cluster = chaos_cluster(PARTITION_KILL)
        try:
            sim_cluster = make_sim(backend=cluster)
            for round_index in range(4):
                if round_index == 2:
                    os.kill(cluster.agent_pids()[0], signal.SIGKILL)
                sim_cluster.run_round(round_index)
            report = cluster.fault_report()
            assert report["peer_drops"] >= 1  # the SIGKILL at minimum
            # The partition (frame 25 is crossed within the first round's
            # heartbeats) forced at least one same-identity reconnect.
            assert report["reconnects"] >= 1
            assert_states_equal(
                sim_cluster.server.global_state, sim_serial.server.global_state
            )
            for a, b in zip(sim_cluster.clients, sim_serial.clients):
                assert_states_equal(a.model.state_dict(), b.model.state_dict())
                assert a.rng.bit_generator.state == b.rng.bit_generator.state
        finally:
            cluster.close()

    def test_vectorized_run_survives_chaos_bitwise(self):
        pool = PoolBackend(max_workers=2)
        cluster = chaos_cluster(DROP_DELAY)
        try:
            sim_pool = make_sim(backend=pool)
            sim_cluster = make_sim(backend=cluster)
            sim_pool.vectorize = True
            sim_cluster.vectorize = True
            h_pool = sim_pool.run(2)
            h_cluster = sim_cluster.run(2)
            assert h_cluster.accuracies == h_pool.accuracies
            assert sim_cluster.vectorize_report()["rounds_vectorized"] >= 1
            assert_states_equal(
                sim_cluster.server.global_state, sim_pool.server.global_state
            )
        finally:
            cluster.close()
            pool.close()

    def test_fault_report_records_the_recovery_work(self):
        """The ledger is not decorative: a chaotic run's report shows the
        machinery actually firing (and a calm run's shows it idle)."""
        calm = ClusterBackend(max_workers=2)
        chaotic = chaos_cluster(CORRUPT_TEAR)
        try:
            make_sim(backend=calm).run(2)
            assert fault_activity(calm.fault_report()) == 0
            make_sim(backend=chaotic).run(3)
            assert fault_activity(chaotic.fault_report()) >= 1
        finally:
            chaotic.close()
            calm.close()


class TestUnlearningUnderChaos:
    def test_deletion_windows_certify_bit_identically_on_chaotic_cluster(
        self, tmp_path
    ):
        """Tentpole item (e) end to end: `UnlearningService` retrain
        windows flow through the same lease/requeue path as federation
        tasks, so a chaotic cluster certifies the exact shard states a
        serial run does."""
        from repro.unlearning import BatchSizePolicy, UnlearningService
        from ..unlearning.test_service import (
            assert_states_equal as assert_shards_equal,
            fresh_ensemble,
            reference_states,
            shard_states,
        )

        expected = reference_states([(0, [3, 40])])
        cluster = chaos_cluster(DROP_DELAY)
        try:
            ensemble = fresh_ensemble(backend=cluster)
            with UnlearningService(
                ensemble, str(tmp_path / "svc"), policy=BatchSizePolicy(2)
            ) as service:
                service.submit(0, [3], 0, request_id="r1")
                service.submit(0, [40], 0, request_id="r2")
                service.tick(0)
                service.drain(1)
                assert service.states() == {
                    "r1": "certified", "r2": "certified",
                }
            assert_shards_equal(shard_states(ensemble), expected)
        finally:
            cluster.close()


class TestGracefulDegradation:
    def test_survivors_drain_the_round_when_respawn_is_off(self):
        sim_serial = make_sim(backend=None)
        for round_index in range(3):
            sim_serial.run_round(round_index)

        cluster = chaos_cluster(None, workers=2, respawn=False)
        try:
            sim_cluster = make_sim(backend=cluster)
            for round_index in range(3):
                if round_index == 1:
                    os.kill(cluster.agent_pids()[0], signal.SIGKILL)
                sim_cluster.run_round(round_index)
            # The fleet really shrank — no replacement was spawned — and
            # the surviving agent absorbed the dead one's leases.
            assert len(cluster.agent_pids()) == 1
            # The drop is in the ledger; whether it charged the retry
            # budget depends on whether the dead agent held a lease at
            # that instant, so only the drop itself is asserted.
            assert cluster.fault_report()["peer_drops"] >= 1
            assert_states_equal(
                sim_cluster.server.global_state, sim_serial.server.global_state
            )
        finally:
            cluster.close()

"""The framed TCP transport: framing, timeouts, failure taxonomy, handshake.

Everything here runs over ``socket.socketpair`` — no listener, no
subprocesses — so the edge cases (torn frames, mid-frame disconnects,
oversized payloads, protocol mismatches) are exercised deterministically.
"""

import socket
import struct
import threading
import zlib

import numpy as np
import pytest

from repro.cluster.wire import (
    FRAME_VERSION,
    MAGIC,
    AuthenticationError,
    ChannelTimeout,
    FrameCorruption,
    PayloadTooLarge,
    ProtocolMismatch,
    SocketChannel,
    WireError,
    client_handshake,
    recv_message,
    send_message,
    server_handshake,
)
from repro.runtime.wire import WIRE_PROTOCOL_VERSION, recv_payload, send_payload


def _frame_header(nbytes: int, crc: int) -> bytes:
    """A raw v2 frame header: 8-byte length + 4-byte CRC32."""
    return struct.pack("<QI", nbytes, crc)


@pytest.fixture
def pair():
    left_sock, right_sock = socket.socketpair()
    left = SocketChannel(left_sock)
    right = SocketChannel(right_sock)
    yield left, right
    left.close()
    right.close()


class TestFraming:
    def test_payload_roundtrip_with_out_of_band_arrays(self, pair):
        left, right = pair
        payload = {
            "weights": np.arange(1000, dtype=np.float64).reshape(25, 40),
            "meta": {"round": 3, "clients": [1, 2]},
        }
        sent = send_payload(left, payload)
        received, got = recv_payload(right)
        assert sent == got
        assert sent >= payload["weights"].nbytes  # arrays actually travelled
        np.testing.assert_array_equal(received["weights"], payload["weights"])
        assert received["meta"] == payload["meta"]
        # The socket counters additionally include the length prefixes.
        assert left.bytes_sent > sent
        assert left.bytes_sent == right.bytes_received

    def test_multiple_frames_queue_and_deframe_in_order(self, pair):
        left, right = pair
        for index in range(5):
            send_message(left, ("ping", index))
        for index in range(5):
            message, _ = recv_message(right)
            assert message == ("ping", index)

    def test_empty_frame_roundtrips(self, pair):
        left, right = pair
        left.send_bytes(b"")
        assert right.recv_bytes() == b""


class TestFailureTaxonomy:
    def test_clean_close_is_eof(self, pair):
        left, right = pair
        left.close()
        with pytest.raises(EOFError):
            right.recv_bytes()

    def test_disconnect_mid_frame_is_eof(self, pair):
        left, right = pair
        # Announce a 1000-byte frame but deliver only 10 bytes of it.
        left._sock.sendall(_frame_header(1000, 0))
        left._sock.sendall(b"x" * 10)
        left.close()
        with pytest.raises(EOFError, match="mid-frame"):
            right.recv_bytes()

    def test_torn_length_prefix_is_eof(self, pair):
        left, right = pair
        left._sock.sendall(b"\x04\x00")  # 2 of the 12 header bytes
        left.close()
        with pytest.raises(EOFError):
            right.recv_bytes()

    def test_mid_frame_stall_raises_wire_error_not_hang(self, pair):
        left, right = pair
        right.frame_timeout = 0.1
        left._sock.sendall(_frame_header(100, 0))  # frame never arrives
        with pytest.raises(WireError, match="stalled"):
            right.recv_bytes()

    def test_idle_timeout_is_distinct_from_stall(self, pair):
        _, right = pair
        with pytest.raises(ChannelTimeout):
            right.recv_bytes(timeout=0.05)

    def test_oversized_send_refused_locally(self, pair):
        left, _ = pair
        left.max_frame_bytes = 64
        with pytest.raises(PayloadTooLarge):
            left.send_bytes(b"x" * 65)
        assert left.bytes_sent == 0  # nothing hit the wire

    def test_oversized_recv_refused_by_prefix(self, pair):
        left, right = pair
        right.max_frame_bytes = 64
        left.send_bytes(b"y" * 1000)
        with pytest.raises(PayloadTooLarge, match="announced"):
            right.recv_bytes()


class TestIntegrity:
    def test_crc_mismatch_raises_frame_corruption(self, pair):
        left, right = pair
        payload = b"precious bits"
        left._sock.sendall(
            _frame_header(len(payload), zlib.crc32(payload) ^ 0xDEAD) + payload
        )
        with pytest.raises(FrameCorruption, match="checksum"):
            right.recv_bytes()

    def test_single_bit_flip_on_wire_detected(self, pair):
        left, right = pair
        payload = bytearray(b"federated weights")
        header = _frame_header(len(payload), zlib.crc32(bytes(payload)))
        payload[5] ^= 0x01  # flipped after the checksum was computed
        left._sock.sendall(header + bytes(payload))
        with pytest.raises(FrameCorruption):
            right.recv_bytes()

    def test_intact_frame_passes_crc(self, pair):
        left, right = pair
        payload = b"federated weights"
        left._sock.sendall(_frame_header(len(payload), zlib.crc32(payload)) + payload)
        assert right.recv_bytes() == payload

    def test_undecodable_message_is_frame_corruption(self, pair):
        left, right = pair
        # A frame whose CRC is fine but whose content is not a payload
        # header: the stream is desynchronised (lost/duplicated frame).
        left.send_bytes(b"not-a-payload-header")
        with pytest.raises(FrameCorruption, match="undecodable"):
            recv_message(right)


class TestHandshake:
    def test_matching_versions_exchange_identity(self, pair):
        left, right = pair
        send_message(
            left,
            (
                "hello",
                {
                    "magic": MAGIC,
                    "protocol": WIRE_PROTOCOL_VERSION,
                    "frame": FRAME_VERSION,
                    "agent_id": "n1",
                    "capacity": 2,
                },
            ),
        )
        info = server_handshake(right)
        assert info["agent_id"] == "n1"
        assert info["capacity"] == 2
        reply, _ = recv_message(left)
        assert reply[0] == "welcome"
        assert reply[1]["protocol"] == WIRE_PROTOCOL_VERSION
        assert reply[1]["frame"] == FRAME_VERSION

    def test_version_skew_rejected_with_reason(self, pair):
        left, right = pair
        send_message(
            left,
            ("hello", {"magic": MAGIC, "protocol": WIRE_PROTOCOL_VERSION + 1}),
        )
        with pytest.raises(ProtocolMismatch, match="mismatch"):
            server_handshake(right)
        # The far side learns *why* before the connection drops.
        reply, _ = recv_message(left)
        assert reply[0] == "reject"
        assert "mismatch" in reply[1]

    def test_non_repro_peer_rejected(self, pair):
        left, right = pair
        send_message(left, ("hello", {"magic": "something-else", "protocol": 1}))
        with pytest.raises(ProtocolMismatch, match="hello"):
            server_handshake(right)

    def test_client_side_surfaces_rejection(self, pair):
        left, right = pair
        # Run the server side first so its verdict is buffered for the
        # client (socketpair buffers both directions independently).
        send_message(
            left,
            ("hello", {"magic": MAGIC, "protocol": WIRE_PROTOCOL_VERSION + 7}),
        )
        with pytest.raises(ProtocolMismatch):
            server_handshake(right)
        # Now exercise client_handshake against the buffered reject: its
        # own hello goes into the (dead) right side harmlessly.
        with pytest.raises(ProtocolMismatch, match="rejected"):
            client_handshake(left, {"agent_id": "n2"})

    def test_frame_layout_skew_rejected_by_name(self, pair):
        left, right = pair
        # A v1 peer never sent ``frame`` at all; the server must name the
        # frame layout (not the wire protocol) in its reject.
        send_message(
            left, ("hello", {"magic": MAGIC, "protocol": WIRE_PROTOCOL_VERSION})
        )
        with pytest.raises(ProtocolMismatch, match="frame layout"):
            server_handshake(right)
        reply, _ = recv_message(left)
        assert reply[0] == "reject"
        assert "CRC32" in reply[1]


class TestAuthentication:
    def _client(self, channel, token):
        """Run client_handshake in a thread, capturing its outcome."""
        box = {}

        def go():
            try:
                box["welcome"] = client_handshake(
                    channel, {"agent_id": "n1"}, auth_token=token
                )
            except Exception as exc:  # surfaced by the test body
                box["error"] = exc

        thread = threading.Thread(target=go, daemon=True)
        thread.start()
        return thread, box

    def test_shared_secret_admits_peer(self, pair):
        left, right = pair
        thread, box = self._client(left, "s3cret")
        info = server_handshake(right, auth_token="s3cret")
        thread.join(timeout=5.0)
        assert info["agent_id"] == "n1"
        assert "error" not in box

    def test_wrong_secret_rejected_both_sides(self, pair):
        left, right = pair
        thread, box = self._client(left, "wrong")
        with pytest.raises(AuthenticationError, match="HMAC"):
            server_handshake(right, auth_token="right")
        thread.join(timeout=5.0)
        assert isinstance(box.get("error"), AuthenticationError)

    def test_tokenless_client_told_how_to_authenticate(self, pair):
        left, right = pair
        # Stage the server's challenge, then run the client without a
        # token: it must fail fast and name the flag/env var to set.
        send_message(right, ("challenge", "ab" * 16))
        with pytest.raises(AuthenticationError, match="auth-token"):
            client_handshake(left, {"agent_id": "n1"})

    def test_tokenless_server_skips_challenge(self, pair):
        left, right = pair
        thread, box = self._client(left, None)
        info = server_handshake(right)  # no auth_token: open cluster
        thread.join(timeout=5.0)
        assert info["agent_id"] == "n1"
        assert "error" not in box

"""ClusterBackend ≡ PoolBackend ≡ serial for whole federated runs.

The acceptance bar for the cluster subsystem: swapping the in-process
worker pool for TCP node agents is purely a transport change.  Sync and
buffered-async federations, under raw and delta update codecs, must land
bit-identical global models — including when a node agent is SIGKILLed
mid-run and its leased tasks are resubmitted to a respawned agent.
"""

import multiprocessing
import os
import signal

import numpy as np
import pytest

from repro.cluster import ClusterBackend
from repro.data import FederatedDataset
from repro.federated import (
    AsyncRoundConfig,
    FedAvgAggregator,
    FederatedSimulation,
    SeededLatency,
)
from repro.nn.models import RegistryModelFactory
from repro.runtime import PoolBackend
from repro.training import TrainConfig

from ..conftest import make_blob_federation

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

pytestmark = pytest.mark.skipif(
    not HAS_FORK, reason="cluster tests spawn local agents via fork"
)

FACTORY = RegistryModelFactory(name="mlp", num_classes=3, in_channels=1, image_size=4)
CONFIG = TrainConfig(epochs=1, batch_size=8, learning_rate=0.1)
ASYNC = AsyncRoundConfig(buffer_size=3, max_staleness=2)


def assert_states_equal(a, b):
    assert sorted(a) == sorted(b)
    for key in a:
        np.testing.assert_array_equal(a[key], b[key])


def make_sim(backend=None, seed=3, codec="raw", use_async=False):
    clients, test = make_blob_federation(
        num_clients=4, per_client=24, test_size=24, seed=seed
    )
    fed = FederatedDataset(client_datasets=clients, test_set=test)
    return FederatedSimulation(
        FACTORY,
        fed,
        FedAvgAggregator(),
        CONFIG,
        seed=seed,
        backend=backend,
        codec=codec,
        async_config=ASYNC if use_async else None,
        latency_model=SeededLatency(seed=11) if use_async else None,
    )


@pytest.fixture
def cluster():
    backend = ClusterBackend(max_workers=2)
    yield backend
    backend.close()


@pytest.fixture
def pool():
    backend = PoolBackend(max_workers=2)
    yield backend
    backend.close()


class TestSyncParity:
    @pytest.mark.parametrize("codec", ["raw", "delta"])
    def test_cluster_matches_pool_bitwise(self, cluster, pool, codec):
        sim_cluster = make_sim(backend=cluster, codec=codec)
        sim_pool = make_sim(backend=pool, codec=codec)
        h_cluster = sim_cluster.run(3)
        h_pool = sim_pool.run(3)
        assert h_cluster.accuracies == h_pool.accuracies
        assert_states_equal(
            sim_cluster.server.global_state, sim_pool.server.global_state
        )
        for a, b in zip(sim_cluster.clients, sim_pool.clients):
            assert_states_equal(a.model.state_dict(), b.model.state_dict())
            assert a.rng.bit_generator.state == b.rng.bit_generator.state

    def test_cluster_matches_serial_bitwise(self, cluster):
        sim_cluster = make_sim(backend=cluster)
        sim_serial = make_sim(backend=None)
        sim_cluster.run(2)
        sim_serial.run(2)
        assert_states_equal(
            sim_cluster.server.global_state, sim_serial.server.global_state
        )

    def test_broadcast_cache_engaged_across_rounds(self, cluster):
        sim = make_sim(backend=cluster)
        sim.run(3)
        totals = cluster.transport_stats
        # Two agents → at most two full sends per distinct global state;
        # the rest of each cohort rides refs.
        assert totals.broadcast_ref > 0
        assert totals.broadcast_full >= 1


class TestAsyncParity:
    @pytest.mark.parametrize("codec", ["raw", "delta"])
    def test_buffered_async_matches_pool_bitwise(self, cluster, pool, codec):
        sim_cluster = make_sim(backend=cluster, codec=codec, use_async=True)
        sim_pool = make_sim(backend=pool, codec=codec, use_async=True)
        h_cluster = sim_cluster.run(3)
        h_pool = sim_pool.run(3)
        assert h_cluster.accuracies == h_pool.accuracies
        assert_states_equal(
            sim_cluster.server.global_state, sim_pool.server.global_state
        )


class TestDeathMidRunParity:
    def test_sigkilled_agent_mid_run_still_bitwise_identical(self, cluster):
        # Baseline: the same federation end-to-end on serial.
        sim_serial = make_sim(backend=None)
        for round_index in range(4):
            sim_serial.run_round(round_index)

        sim_cluster = make_sim(backend=cluster)
        for round_index in range(4):
            if round_index == 2:
                # Kill one of the two node agents between dispatches; its
                # leased tasks expire/EOF and are resubmitted, and the
                # backend respawns a cold replacement.
                os.kill(cluster.agent_pids()[0], signal.SIGKILL)
            sim_cluster.run_round(round_index)

        assert_states_equal(
            sim_cluster.server.global_state, sim_serial.server.global_state
        )
        for a, b in zip(sim_cluster.clients, sim_serial.clients):
            assert_states_equal(a.model.state_dict(), b.model.state_dict())
            assert a.rng.bit_generator.state == b.rng.bit_generator.state

    def test_sigkilled_agent_mid_async_run_still_bitwise_identical(self, cluster):
        sim_serial = make_sim(backend=None, use_async=True)
        engine_serial = sim_serial.engine()
        for round_index in range(4):
            engine_serial.run_round(round_index)

        sim_cluster = make_sim(backend=cluster, use_async=True)
        engine_cluster = sim_cluster.engine()
        for round_index in range(4):
            if round_index == 2:
                os.kill(cluster.agent_pids()[0], signal.SIGKILL)
            engine_cluster.run_round(round_index)

        assert_states_equal(
            sim_cluster.server.global_state, sim_serial.server.global_state
        )

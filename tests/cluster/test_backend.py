"""ClusterBackend on a localhost cluster: parity, caches, fault recovery.

Mirrors the worker-pool transport tests (`tests/runtime/test_pool_transport.py`)
over TCP: same broadcast-cache wire forms, same per-ticket accounting,
same respawn-with-cold-cache semantics when a node agent is killed — and
every result bit-identical to serial execution.
"""

import multiprocessing
import os
import signal
import time
from dataclasses import dataclass

import numpy as np
import pytest

from repro.cluster import ClusterBackend
from repro.nn.models import RegistryModelFactory
from repro.runtime import SerialBackend, TrainTask, capture_rng
from repro.runtime.backends import BackendError, get_backend, parse_backend_spec
from repro.training import TrainConfig

from ..conftest import make_blobs

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

FACTORY = RegistryModelFactory(name="mlp", num_classes=3, in_channels=1, image_size=4)
CONFIG = TrainConfig(epochs=1, batch_size=8, learning_rate=0.05)

pytestmark = pytest.mark.skipif(
    not HAS_FORK, reason="cluster tests spawn local agents via fork"
)


def make_task(task_id=0, seed=0, model_state=None, codec="raw"):
    return TrainTask(
        task_id=task_id,
        model_factory=FACTORY,
        dataset=make_blobs(num_samples=24, num_classes=3, shape=(1, 4, 4), seed=seed),
        config=CONFIG,
        rng_state=capture_rng(np.random.default_rng(seed)),
        model_state=model_state,
        codec=codec,
    )


def assert_states_equal(a, b):
    assert set(a) == set(b)
    for key in a:
        np.testing.assert_array_equal(a[key], b[key])


@pytest.fixture
def cluster():
    backend = ClusterBackend(max_workers=1)
    yield backend
    backend.close()


@dataclass
class _BoomTask(TrainTask):
    """Raises remotely — the error string must travel back verbatim."""

    def run(self):
        raise ValueError("deliberate")


@dataclass
class _AlwaysDiesTask(TrainTask):
    """Kills its node agent every single time it is attempted."""

    def run(self):
        os._exit(13)


class TestRunTasks:
    def test_single_task_serves_inline_without_standing_up_sockets(self):
        backend = ClusterBackend(max_workers=1)
        result = backend.run_tasks([make_task(0)])[0]
        assert not backend.running  # serial shortcut, no cluster
        assert backend.last_batch_stats is None
        serial = SerialBackend().run_tasks([make_task(0)])[0]
        assert_states_equal(result.state, serial.state)

    def test_batch_is_bit_identical_to_serial(self, cluster):
        state = FACTORY().state_dict()
        results = cluster.run_tasks(
            [make_task(i, seed=i, model_state=state) for i in range(4)]
        )
        serial = SerialBackend().run_tasks(
            [make_task(i, seed=i, model_state=state) for i in range(4)]
        )
        for a, b in zip(results, serial):
            assert_states_equal(a.state, b.state)
            assert a.rng_state == b.rng_state

    def test_task_exception_fails_the_batch_with_traceback(self, cluster):
        task = _BoomTask(
            task_id=0,
            model_factory=FACTORY,
            dataset=make_blobs(num_samples=8, num_classes=3, shape=(1, 4, 4)),
            config=CONFIG,
            rng_state=capture_rng(np.random.default_rng(0)),
        )
        with pytest.raises(BackendError, match="deliberate"):
            cluster.run_tasks([task, make_task(1)])

    def test_unpicklable_task_falls_back_inline(self, cluster):
        class _ClosureTask:
            task_id = "closure"

            def __init__(self):
                self.fn = lambda: 41  # not picklable

            def run(self):
                return self.fn() + 1

        ticket = cluster.submit([_ClosureTask(), make_task(1)])
        results = cluster.drain(ticket)
        stats = cluster.pop_ticket_stats(ticket)
        assert results[0] == 42
        assert stats.inline_tasks == 1


class TestBroadcastCache:
    def test_one_agent_ships_one_full_then_refs(self, cluster):
        state = FACTORY().state_dict()
        ticket = cluster.submit(
            [make_task(i, seed=i, model_state=state) for i in range(4)]
        )
        cluster.drain(ticket)
        stats = cluster.pop_ticket_stats(ticket)
        assert stats.broadcast_full == 1
        assert stats.broadcast_ref == 3
        assert stats.broadcast_delta == 0
        assert stats.bytes_down > 0 and stats.bytes_up > 0

    def test_new_version_ships_delta_against_agent_cache(self, cluster):
        state = FACTORY().state_dict()
        cluster.drain(cluster.submit([make_task(0, model_state=state)]))
        nearby = {
            key: value + np.full_like(value, 1e-9) for key, value in state.items()
        }
        ticket = cluster.submit([make_task(1, seed=1, model_state=nearby)])
        result = cluster.drain(ticket)[0]
        stats = cluster.pop_ticket_stats(ticket)
        assert stats.broadcast_delta == 1
        assert stats.broadcast_full == 0
        serial = SerialBackend().run_tasks([make_task(1, seed=1, model_state=nearby)])
        assert_states_equal(result.state, serial[0].state)

    def test_multi_agent_full_per_first_contact(self):
        backend = ClusterBackend(max_workers=2)
        try:
            state = FACTORY().state_dict()
            ticket = backend.submit(
                [make_task(i, seed=i, model_state=state) for i in range(6)]
            )
            backend.drain(ticket)
            stats = backend.pop_ticket_stats(ticket)
            # Each agent pays full exactly once on first contact; every
            # other dispatch of the same version rides the cache.
            assert 1 <= stats.broadcast_full <= 2
            assert stats.broadcast_full + stats.broadcast_ref == 6
        finally:
            backend.close()

    def test_control_traffic_counts_in_totals_not_tickets(self, cluster):
        ticket = cluster.submit([make_task(0)])
        cluster.drain(ticket)
        ticket_stats = cluster.pop_ticket_stats(ticket)
        totals = cluster.transport_stats
        # Handshake + pull frames ride the same sockets but are only in
        # the cumulative/per-peer ledgers.
        assert totals.bytes_up > ticket_stats.bytes_up
        assert totals.bytes_down > ticket_stats.bytes_down
        assert sum(s.bytes_total for s in cluster.peer_stats().values()) > 0


_DIE_SENTINEL = "die-once-{pid}.sentinel"


@dataclass
class _DieOnceTrainTask(TrainTask):
    """A real TrainTask whose first node agent dies mid-run (then succeeds)."""

    sentinel_path: str = ""

    def run(self):
        if self.sentinel_path and not os.path.exists(self.sentinel_path):
            with open(self.sentinel_path, "w"):
                pass
            os._exit(13)
        return super().run()


class TestAgentDeathRecovery:
    def test_agent_killed_mid_task_resubmits_bit_identically(self, cluster, tmp_path):
        # Warm the single agent's cache with version A.
        state = FACTORY().state_dict()
        warm = cluster.submit([make_task(0, model_state=state)])
        cluster.drain(warm)
        cluster.pop_ticket_stats(warm)
        assert cluster.transport_stats.broadcast_full == 1

        # Same version again — would be a bare ref — but the agent dies
        # mid-task.  The respawned agent's cache starts cold, so the
        # resubmitted task must ship the full state again.
        task = _DieOnceTrainTask(
            task_id=1,
            model_factory=FACTORY,
            dataset=make_blobs(num_samples=24, num_classes=3, shape=(1, 4, 4), seed=1),
            config=CONFIG,
            rng_state=capture_rng(np.random.default_rng(1)),
            model_state=state,
            sentinel_path=str(tmp_path / "die-once"),
        )
        ticket = cluster.submit([task])
        result = cluster.drain(ticket)[0]
        stats = cluster.pop_ticket_stats(ticket)
        assert stats.broadcast_ref == 1  # first dispatch rode the warm cache
        assert stats.broadcast_full == 1  # the post-death retry went cold

        serial = SerialBackend().run_tasks([make_task(1, seed=1, model_state=state)])[0]
        assert_states_equal(result.state, serial.state)
        assert result.rng_state == serial.rng_state

    def test_sigkill_between_rounds_reconnects_with_cold_cache(self, cluster):
        state = FACTORY().state_dict()
        cluster.drain(cluster.submit([make_task(0, model_state=state)]))
        assert cluster.transport_stats.broadcast_full == 1

        (pid,) = cluster.agent_pids()
        os.kill(pid, signal.SIGKILL)

        results = cluster.drain(cluster.submit([make_task(1, seed=1, model_state=state)]))
        serial = SerialBackend().run_tasks([make_task(1, seed=1, model_state=state)])
        assert_states_equal(results[0].state, serial[0].state)
        # The replacement agent's first broadcast took the full path.
        assert cluster.transport_stats.broadcast_full >= 2
        # And the dead agent was actually replaced.
        assert cluster.agent_pids() and cluster.agent_pids() != [pid]

    def test_repeated_deaths_exhaust_the_retry_budget(self, tmp_path):
        backend = ClusterBackend(max_workers=1, max_task_retries=0)
        try:
            task = _AlwaysDiesTask(
                task_id=0,
                model_factory=FACTORY,
                dataset=make_blobs(num_samples=8, num_classes=3, shape=(1, 4, 4)),
                config=CONFIG,
                rng_state=capture_rng(np.random.default_rng(0)),
            )
            with pytest.raises(BackendError, match="giving up"):
                backend.run_tasks([task, make_task(1)])
        finally:
            backend.close()


class TestStreamingSurface:
    def test_interleaved_tickets_poll_and_drain_out_of_order(self, cluster):
        state = FACTORY().state_dict()
        first = cluster.submit([make_task(0, model_state=state)])
        second = cluster.submit([make_task(1, seed=1, model_state=state)])
        assert set(cluster.outstanding_tickets) == {first, second}
        deadline = time.monotonic() + 60
        while not cluster.poll(second):
            assert time.monotonic() < deadline
        cluster.drain(second)
        cluster.drain(first)
        assert cluster.outstanding_tickets == []
        assert cluster.pop_ticket_stats(first).bytes_down > 0
        assert cluster.pop_ticket_stats(first) is None  # claimed exactly once

    def test_close_and_lazy_restart(self, cluster):
        cluster.run_tasks([make_task(i) for i in range(2)])
        assert cluster.running
        cluster.close()
        assert not cluster.running
        results = cluster.run_tasks([make_task(i) for i in range(2)])
        serial = SerialBackend().run_tasks([make_task(i) for i in range(2)])
        assert_states_equal(results[0].state, serial[0].state)


class TestSpecGrammar:
    def test_parse_cluster_specs(self):
        assert parse_backend_spec("cluster:2:retries=1:lease=120") == (
            "cluster",
            2,
            {"retries": 1, "lease": 120},
        )
        assert parse_backend_spec("cluster") == ("cluster", None, {})
        with pytest.raises(ValueError, match="does not support option"):
            parse_backend_spec("pool:2:lease=30")
        with pytest.raises(ValueError, match="lease must be >= 1"):
            parse_backend_spec("cluster:2:lease=0")

    def test_get_backend_shares_instances_per_configuration(self):
        one = get_backend("cluster:2:retries=2:lease=60")
        two = get_backend("cluster:2:retries=2:lease=60")
        other = get_backend("cluster:2")
        try:
            assert isinstance(one, ClusterBackend)
            assert one is two
            assert one is not other
            assert one.max_task_retries == 2
            assert not one.running  # lazy: no sockets until first use
        finally:
            one.close()
            other.close()

    def test_parse_capacity_and_chaos_options(self):
        assert parse_backend_spec("cluster:3:capacity=2") == (
            "cluster",
            3,
            {"capacity": 2},
        )
        name, workers, options = parse_backend_spec(
            "cluster:2:chaos=seed=7,drop=0.05,partition=40@0.5"
        )
        assert (name, workers) == ("cluster", 2)
        assert options == {"chaos": "seed=7,drop=0.05,partition=40@0.5"}
        with pytest.raises(ValueError, match="capacity must be >= 1"):
            parse_backend_spec("cluster:2:capacity=0")
        # A typo'd schedule fails at spec-parse time, not at first use.
        with pytest.raises(ValueError, match="bad chaos schedule"):
            parse_backend_spec("cluster:2:chaos=seed=7,jitter=0.5")

    def test_chaos_spec_arms_the_backend(self):
        from repro.cluster.chaos import FaultPlan

        backend = get_backend("cluster:2:chaos=seed=9,drop=0.02")
        try:
            assert isinstance(backend, ClusterBackend)
            assert backend.chaos == FaultPlan(seed=9, drop=0.02)
            # A differently-seeded schedule is a different cluster.
            other = get_backend("cluster:2:chaos=seed=10,drop=0.02")
            assert other is not backend
            other.close()
        finally:
            backend.close()

    def test_env_var_resolves_cluster_spec(self, monkeypatch):
        from repro.runtime.backends import BACKEND_ENV_VAR

        monkeypatch.setenv(BACKEND_ENV_VAR, "cluster:2:retries=1")
        backend = get_backend(None)
        try:
            assert isinstance(backend, ClusterBackend)
            assert backend.max_workers == 2
        finally:
            backend.close()

"""The pull scheduler: leases, expiry, retry budgets, stale completions."""

import pytest

from repro.cluster.scheduler import PullScheduler


class _Task:
    def __init__(self, name):
        self.name = name

    def run(self):
        return self.name


def make_scheduler(**kwargs):
    kwargs.setdefault("lease_timeout", 10.0)
    return PullScheduler(**kwargs)


class TestBatches:
    def test_grants_in_submission_order_and_fills_results(self):
        sched = make_scheduler()
        ticket = sched.add_batch([_Task("a"), _Task("b")])
        first = sched.next_task("peer-1")
        second = sched.next_task("peer-2")
        assert first.item[1] == 0 and first.item[2].name == "a"
        assert second.item[1] == 1 and second.item[2].name == "b"
        assert sched.next_task("peer-1") is None  # queue empty → park
        assert sched.complete(second.lease_id, None, "B")
        assert not sched.batch_done(ticket)
        assert sched.complete(first.lease_id, None, "A")
        assert sched.batch_done(ticket)
        batch = sched.finish_batch(ticket)
        assert batch.results == ["A", "B"]
        assert batch.errors == []

    def test_interleaved_batches_keep_separate_bookkeeping(self):
        sched = make_scheduler()
        one = sched.add_batch([_Task("a")])
        two = sched.add_batch([_Task("b")])
        lease_a = sched.next_task("p")
        lease_b = sched.next_task("p")
        sched.complete(lease_b.lease_id, None, "B")
        assert sched.batch_done(two) and not sched.batch_done(one)
        sched.complete(lease_a.lease_id, None, "A")
        assert sched.finish_batch(one).results == ["A"]
        assert sched.finish_batch(two).results == ["B"]

    def test_unknown_ticket_raises(self):
        sched = make_scheduler()
        with pytest.raises(ValueError, match="unknown"):
            sched.batch(99)

    def test_error_completion_recorded_on_batch(self):
        sched = make_scheduler()
        ticket = sched.add_batch([_Task("a")])
        lease = sched.next_task("p")
        sched.complete(lease.lease_id, "ValueError: boom", None)
        batch = sched.finish_batch(ticket)
        assert batch.remaining == 0
        assert batch.errors == ["ValueError: boom"]


class TestLeaseLifecycle:
    def test_stale_completion_after_release_is_dropped(self):
        sched = make_scheduler()
        ticket = sched.add_batch([_Task("a")])
        lost = sched.next_task("dead-peer")
        assert sched.release_peer("dead-peer") == [lost.item]
        # The dead peer's result arrives late: recognised and ignored.
        assert not sched.complete(lost.lease_id, None, "stale")
        retry = sched.next_task("live-peer")
        assert retry.item == lost.item
        assert sched.complete(retry.lease_id, None, "fresh")
        assert sched.finish_batch(ticket).results == ["fresh"]

    def test_double_completion_is_dropped(self):
        sched = make_scheduler()
        sched.add_batch([_Task("a")])
        lease = sched.next_task("p")
        assert sched.complete(lease.lease_id, None, "once")
        assert not sched.complete(lease.lease_id, None, "twice")

    def test_expiry_requeues_at_front(self):
        sched = make_scheduler(lease_timeout=5.0)
        sched.add_batch([_Task("a"), _Task("b")])
        slow = sched.next_task("slow", now=100.0)
        assert sched.expire_leases(now=104.0) == []  # not yet due
        assert sched.expire_leases(now=105.0) == [slow.item]
        # Requeued ahead of the never-granted second task.
        regrant = sched.next_task("fast", now=106.0)
        assert regrant.item == slow.item

    def test_retry_budget_exhaustion_fails_the_batch(self):
        sched = make_scheduler(max_task_retries=1)
        ticket = sched.add_batch([_Task("a")])
        sched.next_task("p1")
        sched.release_peer("p1")  # loss 1: requeued
        sched.next_task("p2")
        assert sched.release_peer("p2") == []  # loss 2: over budget
        batch = sched.finish_batch(ticket)
        assert batch.remaining == 0
        assert "giving up" in batch.errors[0]

    def test_successful_retry_resets_the_death_counter(self):
        sched = make_scheduler(max_task_retries=1)
        one = sched.add_batch([_Task("a")])
        sched.next_task("p")
        sched.release_peer("p")
        lease = sched.next_task("p")
        sched.complete(lease.lease_id, None, "ok")
        assert sched.finish_batch(one).results == ["ok"]
        # A later batch's task at the same (ticket, index) shape starts
        # with a fresh budget.
        two = sched.add_batch([_Task("b")])
        sched.next_task("p")
        sched.release_peer("p")
        retry = sched.next_task("p")
        sched.complete(retry.lease_id, None, "ok2")
        assert sched.finish_batch(two).results == ["ok2"]

    def test_rescind_requeues_without_charging(self):
        sched = make_scheduler(max_task_retries=0)  # any charged loss fails
        ticket = sched.add_batch([_Task("a")])
        lease = sched.next_task("p")
        sched.rescind(lease.lease_id)  # dispatch failed before start
        retry = sched.next_task("p")
        assert retry.item == lease.item
        sched.complete(retry.lease_id, None, "ok")
        assert sched.finish_batch(ticket).results == ["ok"]

    def test_release_peer_only_touches_that_peer(self):
        sched = make_scheduler()
        sched.add_batch([_Task("a"), _Task("b")])
        mine = sched.next_task("keep")
        sched.next_task("drop")
        sched.release_peer("drop")
        assert sched.lease_for(mine.lease_id) is not None

    def test_fail_all_outstanding_marks_incomplete_batches(self):
        sched = make_scheduler()
        ticket = sched.add_batch([_Task("a")])
        sched.next_task("p")
        sched.fail_all_outstanding("coordinator closed")
        batch = sched.finish_batch(ticket)
        assert batch.remaining == 0
        assert batch.errors == ["coordinator closed"]


class TestChargeTaxonomy:
    def test_charge_free_release_never_burns_the_budget(self):
        """Transport faults (corrupt frames, failed dispatches) requeue
        without charging — only real losses count against the retries."""
        sched = make_scheduler(max_task_retries=0)  # any charged loss fails
        ticket = sched.add_batch([_Task("a")])
        for attempt in range(3):
            lease = sched.next_task(f"p{attempt}")
            assert sched.release_peer(f"p{attempt}", charge=False) == [lease.item]
        lease = sched.next_task("survivor")
        sched.complete(lease.lease_id, None, "ok")
        assert sched.finish_batch(ticket).results == ["ok"]

    def test_fault_counters_ledger(self):
        sched = make_scheduler(max_task_retries=10, lease_timeout=5.0)
        sched.add_batch([_Task("a"), _Task("b")])
        lost = sched.next_task("p1", now=100.0)
        sched.release_peer("p1")  # charged
        freed = sched.next_task("p2", now=100.0)
        sched.release_peer("p2", charge=False)  # charge-free
        expired = sched.next_task("p3", now=100.0)
        assert sched.expire_leases(now=106.0) == [expired.item]  # charged too
        stale = sched.next_task("p4", now=106.0)
        sched.release_peer("p4")  # charged
        assert not sched.complete(stale.lease_id, None, "late")  # stale
        counters = sched.fault_counters()
        assert counters["charged_retries"] == 3  # p1 loss + expiry + p4 loss
        assert counters["free_requeues"] == 1
        assert counters["lease_expiries"] == 1
        assert counters["stale_completions"] == 1
        assert counters["tasks_failed"] == 0
        assert lost.item == freed.item  # same task bounced through both

    def test_over_budget_loss_counts_tasks_failed(self):
        sched = make_scheduler(max_task_retries=0)
        ticket = sched.add_batch([_Task("a")])
        sched.next_task("p")
        sched.release_peer("p")
        assert sched.fault_counters()["tasks_failed"] == 1
        assert "giving up" in sched.finish_batch(ticket).errors[0]


class TestCapacityAccounting:
    def test_outstanding_tracks_grants_and_completions(self):
        sched = make_scheduler()
        sched.add_batch([_Task("a"), _Task("b"), _Task("c")])
        assert sched.outstanding_for("p") == 0
        first = sched.next_task("p")
        second = sched.next_task("p")
        assert sched.outstanding_for("p") == 2
        sched.complete(first.lease_id, None, "A")
        assert sched.outstanding_for("p") == 1
        sched.rescind(second.lease_id)
        assert sched.outstanding_for("p") == 0

    def test_outstanding_cleared_on_release_and_expiry(self):
        sched = make_scheduler(lease_timeout=5.0)
        sched.add_batch([_Task("a"), _Task("b")])
        sched.next_task("gone", now=100.0)
        sched.next_task("slow", now=100.0)
        sched.release_peer("gone")
        assert sched.outstanding_for("gone") == 0
        sched.expire_leases(now=106.0)
        assert sched.outstanding_for("slow") == 0


class TestValidation:
    def test_constructor_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            PullScheduler(lease_timeout=0)
        with pytest.raises(ValueError):
            PullScheduler(max_task_retries=-1)

"""Injected network faults land in the documented failure taxonomy.

Each test arms a :class:`NetworkFaultInjector` on the *sending* side of a
``socket.socketpair`` and asserts the receiver raises the exact exception
class the coordinator's charging logic dispatches on: checksum damage and
stream desync are :class:`FrameCorruption` (charge-free requeue), torn
connections are ``EOFError``/:class:`WireError` (charged — the lease's
peer really is gone), and silence is :class:`ChannelTimeout` (no charge,
nothing happened).  The injector itself is deterministic, so every case
reproduces from its plan alone.
"""

import socket

import pytest

from repro.cluster.chaos import FaultPlan, NetworkFaultInjector, coerce_plan
from repro.cluster.wire import (
    ChannelTimeout,
    FrameCorruption,
    SocketChannel,
    WireError,
    recv_message,
    send_message,
)


def chaotic_pair(plan, peer="agent-under-test"):
    left_sock, right_sock = socket.socketpair()
    injector = NetworkFaultInjector(plan, peer)
    left = SocketChannel(left_sock, chaos=injector)
    right = SocketChannel(right_sock)
    return left, right, injector


class TestInjectedFaults:
    def test_corruption_caught_by_receiver_checksum(self):
        left, right, injector = chaotic_pair(FaultPlan(seed=1, corrupt=1.0))
        try:
            left.send_bytes(b"model weights go here")
            with pytest.raises(FrameCorruption, match="checksum"):
                right.recv_bytes()
            assert injector.fault_counts() == {"corrupt": 1}
        finally:
            left.close()
            right.close()

    def test_tear_is_wire_error_for_sender_eof_for_receiver(self):
        left, right, injector = chaotic_pair(FaultPlan(seed=2, tear=1.0))
        try:
            with pytest.raises(WireError, match="torn"):
                left.send_bytes(b"x" * 4096)
            with pytest.raises(EOFError, match="mid-frame"):
                right.recv_bytes()
            assert injector.fault_counts() == {"tear": 1}
        finally:
            left.close()
            right.close()

    def test_dropped_frame_is_silence_then_idle_timeout(self):
        left, right, injector = chaotic_pair(FaultPlan(seed=3, drop=1.0))
        try:
            left.send_bytes(b"vanishes")
            assert left.bytes_sent == 0  # nothing hit the wire
            with pytest.raises(ChannelTimeout):
                right.recv_bytes(timeout=0.05)
            assert injector.fault_counts() == {"drop": 1}
        finally:
            left.close()
            right.close()

    def test_duplicated_frame_desyncs_the_message_stream(self):
        # Duplicate the first frame of a two-frame message: the second
        # copy is a perfectly valid *frame* (its CRC passes) that is
        # nonsense at the *message* layer — exactly the desync case
        # recv_message converts to FrameCorruption.
        left, right, injector = chaotic_pair(
            FaultPlan(seed=4, duplicate=1.0, max_faults=1)
        )
        try:
            send_message(left, ("pull",))
            with pytest.raises(FrameCorruption, match="undecodable"):
                recv_message(right)
            assert injector.fault_counts() == {"duplicate": 1}
        finally:
            left.close()
            right.close()

    def test_delay_reorders_nothing_and_content_survives(self):
        left, right, injector = chaotic_pair(
            FaultPlan(seed=5, delay=1.0, delay_range=(0.001, 0.002))
        )
        try:
            send_message(left, ("heartbeat",))
            message, _ = recv_message(right, timeout=5.0)
            assert message == ("heartbeat",)
            assert injector.fault_counts()["delay"] >= 1
        finally:
            left.close()
            right.close()

    def test_partition_tears_down_and_gates_redial(self):
        left, right, injector = chaotic_pair(
            FaultPlan(seed=6, partitions=((0, 0.2),))
        )
        try:
            with pytest.raises(WireError):
                left.send_bytes(b"never makes it")
            assert injector.partition_remaining() > 0.0
            assert injector.fault_counts() == {"partition": 1}
        finally:
            left.close()
            right.close()

    def test_stall_vs_idle_timeout_stay_distinct_under_chaos(self):
        # Idle (nothing arrived) is ChannelTimeout; a frame that *started*
        # and stopped is a WireError stall — chaos must not blur them.
        left, right, injector = chaotic_pair(
            FaultPlan(seed=7, tear=1.0, max_faults=1)
        )
        try:
            right.frame_timeout = 0.1
            with pytest.raises(ChannelTimeout):
                right.recv_bytes(timeout=0.05)  # idle: no frame yet
            with pytest.raises(WireError):
                left.send_bytes(b"z" * (1 << 16))  # torn mid-frame
            with pytest.raises((EOFError, WireError)):
                right.recv_bytes(timeout=5.0)
        finally:
            left.close()
            right.close()


class TestDeterminism:
    def test_same_plan_same_peer_same_schedule(self):
        plan = FaultPlan(seed=11, drop=0.2, corrupt=0.2, tear=0.1, delay=0.3)
        a = NetworkFaultInjector(plan, "agent-1")
        b = NetworkFaultInjector(plan, "agent-1")
        assert [a.next_send_fault() for _ in range(400)] == [
            b.next_send_fault() for _ in range(400)
        ]

    def test_different_peers_draw_different_schedules(self):
        plan = FaultPlan(seed=11, drop=0.5)
        a = NetworkFaultInjector(plan, "agent-1")
        b = NetworkFaultInjector(plan, "agent-2")
        assert [a.next_send_fault() for _ in range(64)] != [
            b.next_send_fault() for _ in range(64)
        ]

    def test_max_faults_budget_lets_the_run_settle(self):
        plan = FaultPlan(seed=12, drop=1.0, max_faults=3)
        injector = NetworkFaultInjector(plan, "agent-1")
        faults = [injector.next_send_fault() for _ in range(50)]
        assert sum(f is not None for f in faults) == 3
        assert all(f is None for f in faults[3:])

    def test_partition_fires_on_frame_index_crossing(self):
        plan = FaultPlan(seed=13, partitions=((5, 0.05),))
        injector = NetworkFaultInjector(plan, "agent-1")
        first_five = [injector.next_send_fault() for _ in range(5)]
        assert all(f is None for f in first_five)
        kind, seconds = injector.next_send_fault()
        assert kind == "partition" and seconds == 0.05


class TestFaultPlanGrammar:
    def test_parse_format_roundtrip(self):
        plan = FaultPlan(
            seed=7,
            drop=0.05,
            corrupt=0.01,
            delay=0.1,
            delay_range=(0.002, 0.02),
            partitions=((40, 0.5), (90, 0.25)),
            max_faults=12,
        )
        assert FaultPlan.parse(plan.format()) == plan

    def test_parse_examples(self):
        plan = FaultPlan.parse("seed=7,drop=0.05,partition=40@0.5+90@0.25")
        assert plan.seed == 7
        assert plan.drop == 0.05
        assert plan.partitions == ((40, 0.5), (90, 0.25))

    def test_probability_overflow_rejected(self):
        with pytest.raises(ValueError, match="sum"):
            FaultPlan(drop=0.6, corrupt=0.6)

    def test_unknown_key_rejected_with_known_list(self):
        with pytest.raises(ValueError, match="known"):
            FaultPlan.parse("seed=1,jitter=0.5")

    def test_coerce_accepts_plan_string_none(self):
        plan = FaultPlan(seed=1, drop=0.1)
        assert coerce_plan(plan) is plan
        assert coerce_plan("seed=1,drop=0.1") == plan
        assert coerce_plan(None) is None
        with pytest.raises(TypeError):
            coerce_plan(42)

    def test_inactive_plan_detected(self):
        assert not FaultPlan(seed=5).active
        assert FaultPlan(seed=5, drop=0.01).active
        assert FaultPlan(seed=5, partitions=((1, 0.1),)).active

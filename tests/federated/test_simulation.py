"""FederatedSimulation round mechanics."""

import numpy as np
import pytest

from repro.data import FederatedDataset
from repro.federated import FederatedSimulation, FedAvgAggregator, make_aggregator
from repro.nn.models import MLP
from repro.training import TrainConfig

from ..conftest import make_blob_federation, make_blobs


def build_sim(num_clients=3, seed=0, epochs=2):
    clients, test = make_blob_federation(num_clients, per_client=30, test_size=60,
                                         seed=seed)
    fed = FederatedDataset(client_datasets=clients, test_set=test)
    factory = lambda: MLP(16, 3, np.random.default_rng(42))
    config = TrainConfig(epochs=epochs, batch_size=10, learning_rate=0.1)
    return FederatedSimulation(factory, fed, FedAvgAggregator(), config, seed=seed)


class TestRounds:
    def test_accuracy_improves_over_rounds(self):
        sim = build_sim()
        history = sim.run(5)
        assert history.final_accuracy > history.accuracies[0]
        assert history.final_accuracy > 0.5

    def test_round_records(self):
        sim = build_sim()
        history = sim.run(2)
        assert len(history) == 2
        assert history.rounds[0].round_index == 0
        assert 0.0 <= history.rounds[0].global_accuracy <= 1.0

    def test_client_metrics_recorded_on_request(self):
        sim = build_sim(num_clients=3)
        history = sim.run(1, record_client_metrics=True)
        assert len(history.rounds[0].client_accuracies) == 3

    def test_client_metrics_skipped_by_default(self):
        sim = build_sim()
        history = sim.run(1)
        assert history.rounds[0].client_accuracies == []

    def test_round_callback_invoked(self):
        sim = build_sim()
        seen = []
        sim.run(3, round_callback=lambda record: seen.append(record.round_index))
        assert seen == [0, 1, 2]

    def test_invalid_round_count(self):
        with pytest.raises(ValueError):
            build_sim().run(0)

    def test_global_model_detached_copy(self):
        sim = build_sim()
        sim.run(1)
        snapshot = sim.global_model()
        sim.run(1)
        after = sim.global_model()
        # at least one parameter should have moved
        diffs = [
            np.abs(pa.data - pb.data).max()
            for (_, pa), (_, pb) in zip(
                snapshot.named_parameters(), after.named_parameters()
            )
        ]
        assert max(diffs) > 0


class TestDeterminism:
    def test_same_seed_same_result(self):
        h1 = build_sim(seed=5).run(3)
        h2 = build_sim(seed=5).run(3)
        np.testing.assert_allclose(h1.accuracies, h2.accuracies)

    def test_different_seed_differs(self):
        h1 = build_sim(seed=5).run(3)
        h2 = build_sim(seed=6).run(3)
        assert h1.accuracies != h2.accuracies


class TestMakeAggregator:
    def test_fedavg(self):
        assert isinstance(make_aggregator("fedavg"), FedAvgAggregator)

    def test_adaptive_requires_args(self):
        with pytest.raises(ValueError):
            make_aggregator("adaptive")

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_aggregator("krum")

    def test_empty_federation_rejected(self):
        fed = FederatedDataset(client_datasets=[], test_set=make_blobs())
        with pytest.raises(ValueError):
            FederatedSimulation(
                lambda: MLP(16, 3, np.random.default_rng(0)),
                fed, FedAvgAggregator(),
                TrainConfig(epochs=1),
                seed=0,
            )

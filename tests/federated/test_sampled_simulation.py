"""FederatedSimulation with a client sampler attached."""

import numpy as np
import pytest

from repro.data.dataset import FederatedDataset
from repro.federated import (
    DropoutInjector,
    FedAvgAggregator,
    FederatedSimulation,
    FullParticipation,
    RoundHistoryStore,
    UniformSampler,
    attach_history,
)
from repro.nn.models import MLP
from repro.training.config import TrainConfig

from ..conftest import make_blob_federation


def make_sim(sampler, num_clients=4, seed=0):
    clients, test = make_blob_federation(
        num_clients=num_clients, per_client=12, test_size=12, seed=seed
    )
    fed = FederatedDataset(client_datasets=clients, test_set=test)
    factory = lambda: MLP(16, 3, np.random.default_rng(0))
    return FederatedSimulation(
        factory, fed, FedAvgAggregator(),
        TrainConfig(epochs=1, batch_size=6, learning_rate=0.05),
        seed=seed, sampler=sampler,
    )


class TestSampledRounds:
    def test_default_is_full_participation(self):
        sim = make_sim(sampler=None)
        sim.run_round(0)
        assert [c.client_id for c in sim.last_participants] == [0, 1, 2, 3]

    def test_uniform_sampler_limits_participants(self):
        sim = make_sim(UniformSampler(num_selected=2))
        sim.run_round(0)
        assert len(sim.last_participants) == 2

    def test_sampled_training_still_learns(self):
        sim = make_sim(UniformSampler(num_selected=2))
        history = sim.run(6)
        assert history.final_accuracy > 0.5

    def test_explicit_full_participation_matches_none(self):
        sim_none = make_sim(sampler=None, seed=3)
        sim_full = make_sim(sampler=FullParticipation(), seed=3)
        record_none = sim_none.run_round(0)
        record_full = sim_full.run_round(0)
        assert record_none.global_accuracy == pytest.approx(
            record_full.global_accuracy
        )

    def test_dropout_injector_composes(self):
        sampler = DropoutInjector(FullParticipation(), dropout_rate=0.4,
                                  min_survivors=1)
        sim = make_sim(sampler, seed=7)
        sizes = []
        for round_index in range(8):
            sim.run_round(round_index)
            sizes.append(len(sim.last_participants))
        assert min(sizes) >= 1
        assert min(sizes) < 4  # some round actually lost someone


class TestHistoryWithSampler:
    def test_history_records_only_participants(self):
        sim = make_sim(UniformSampler(num_selected=2), seed=1)
        store = attach_history(sim, RoundHistoryStore())
        sim.run(3)
        for snapshot in store.snapshots:
            assert len(snapshot.client_ids) == 2
            # Each recorded state must belong to a real client.
            assert set(snapshot.client_ids) <= {0, 1, 2, 3}

"""Client-vectorized rounds: parity, fallback and accounting.

The contract of :mod:`repro.federated.vectorized`:

* ``vectorize=True`` on an eligible cohort is **bit-identical** to the
  per-client path — global states, client models, client RNG streams,
  round accuracies and (on lazy backends) per-round byte counts — on
  every backend, in sync and buffered-async modes, under every codec;
* ineligible cohorts fall back per client with a recorded reason,
  logged once per distinct reason — never silently;
* ``vectorize_report()`` tallies what actually happened.
"""

import logging

import numpy as np
import pytest

from repro.data import FederatedDataset
from repro.federated import (
    AsyncRoundConfig,
    FedAvgAggregator,
    FederatedSimulation,
    SeededLatency,
)
from repro.nn.layers import BatchNorm2d, Conv2d, Flatten, Linear, Sequential
from repro.nn.models import RegistryModelFactory
from repro.runtime import PoolBackend
from repro.training import TrainConfig

from ..conftest import make_blob_federation, make_blobs

FACTORY = RegistryModelFactory(name="mlp", num_classes=3, in_channels=1, image_size=4)
ASYNC = AsyncRoundConfig(buffer_size=3, max_staleness=2, straggler_timeout=2.5)
LATENCY = SeededLatency(low=0.5, high=1.5, seed=11, slow_every=3, slow_factor=4.0)
ROUNDS = 3


def build_sim(vectorize=False, codec="raw", backend=None, async_mode=False,
              seed=0, shared=False, config=None, factory=FACTORY,
              client_sizes=None):
    if client_sizes is None:
        clients, test = make_blob_federation(5, per_client=24, test_size=48,
                                             seed=seed)
    else:
        total = sum(client_sizes) + 48
        ds = make_blobs(num_samples=total, num_classes=3, shape=(1, 4, 4),
                        seed=seed, separation=1.2, noise=1.0)
        clients, start = [], 0
        for size in client_sizes:
            clients.append(ds.subset(np.arange(start, start + size)))
            start += size
        test = ds.subset(np.arange(start, total))
    fed = FederatedDataset(client_datasets=clients, test_set=test)
    if shared:
        fed = fed.share()
    if config is None:
        config = TrainConfig(epochs=1, batch_size=8, learning_rate=0.1)
    return FederatedSimulation(
        factory, fed, FedAvgAggregator(), config, seed=seed, backend=backend,
        async_config=ASYNC if async_mode else None,
        latency_model=LATENCY if async_mode else None,
        codec=codec, vectorize=vectorize,
    )


def run_sim(**kwargs):
    backend = kwargs.get("backend")
    sim = build_sim(**kwargs)
    history = sim.run(ROUNDS)
    state = sim.server.global_state
    if hasattr(backend, "close"):
        backend.close()
    return sim, history, state


def assert_states_equal(a, b):
    assert set(a) == set(b)
    for key in a:
        assert a[key].dtype == b[key].dtype
        np.testing.assert_array_equal(a[key], b[key])


class TestSyncParity:
    def test_bit_identical_to_per_client_path(self):
        per_client, ref_history, ref_state = run_sim(vectorize=False)
        vectorized, history, state = run_sim(vectorize=True)
        assert history.accuracies == ref_history.accuracies
        assert_states_equal(state, ref_state)
        for a, b in zip(per_client.clients, vectorized.clients):
            assert_states_equal(a.model.state_dict(), b.model.state_dict())
            assert a.rng.bit_generator.state == b.rng.bit_generator.state
        report = vectorized.vectorize_report()
        assert report["rounds_vectorized"] == ROUNDS
        assert report["rounds_fallback"] == 0

    def test_bit_identical_across_backends(self):
        _, ref_history, ref_state = run_sim(vectorize=False)
        for backend_factory, shared in (
            (lambda: "serial", False),
            (lambda: "thread", False),
            (lambda: "process:2", False),
            (lambda: PoolBackend(max_workers=2), True),
        ):
            _, history, state = run_sim(
                vectorize=True, backend=backend_factory(), shared=shared
            )
            assert history.accuracies == ref_history.accuracies
            assert_states_equal(state, ref_state)

    def test_round_record_bytes_identical_on_lazy_backends(self):
        # Vectorization fuses host-side execution only: the simulated
        # federation still broadcast to every member and received every
        # member's return, so the per-round byte accounting is unchanged.
        _, ref_history, _ = run_sim(vectorize=False)
        _, history, _ = run_sim(vectorize=True)
        for ref, got in zip(ref_history.rounds, history.rounds):
            assert got.bytes_down == ref.bytes_down
            assert got.bytes_up == ref.bytes_up

    @pytest.mark.parametrize("codec", ["delta", "topk:0.2", "quant:8"])
    def test_codecs_match_their_per_client_twin(self, codec):
        _, ref_history, ref_state = run_sim(vectorize=False, codec=codec)
        _, history, state = run_sim(vectorize=True, codec=codec)
        assert history.accuracies == ref_history.accuracies
        assert_states_equal(state, ref_state)


class TestAsyncParity:
    def test_engine_rounds_bit_identical(self):
        per_client, ref_history, ref_state = run_sim(
            vectorize=False, async_mode=True
        )
        vectorized, history, state = run_sim(vectorize=True, async_mode=True)
        assert history.accuracies == ref_history.accuracies
        assert_states_equal(state, ref_state)
        for ref, got in zip(ref_history.rounds, history.rounds):
            assert got.bytes_down == ref.bytes_down
            assert got.bytes_up == ref.bytes_up
        assert vectorized.vectorize_report()["rounds_vectorized"] > 0


class TestGradClipParity:
    """grad_clip no longer forces a fallback: clipping runs per-slice on
    the stacked gradients, bit-identical to each member clipping alone."""

    def test_grad_clip_with_momentum_bit_identical(self):
        config = TrainConfig(epochs=2, batch_size=8, learning_rate=0.1,
                             momentum=0.9, grad_clip=1.0)
        per_client, ref_history, ref_state = run_sim(
            vectorize=False, config=config
        )
        vectorized, history, state = run_sim(vectorize=True, config=config)
        assert history.accuracies == ref_history.accuracies
        assert_states_equal(state, ref_state)
        for a, b in zip(per_client.clients, vectorized.clients):
            assert_states_equal(a.model.state_dict(), b.model.state_dict())
            assert a.rng.bit_generator.state == b.rng.bit_generator.state
        report = vectorized.vectorize_report()
        assert report["rounds_vectorized"] == ROUNDS
        assert report["fallback_reasons"] == {}

    @pytest.mark.parametrize("grad_clip", [0.05, 5.0])
    def test_tight_and_loose_thresholds(self, grad_clip):
        # A tight threshold clips every step, a loose one almost never:
        # both must agree bitwise with the per-client path.
        config = TrainConfig(epochs=1, batch_size=8, learning_rate=0.1,
                             grad_clip=grad_clip)
        _, ref_history, ref_state = run_sim(vectorize=False, config=config)
        _, history, state = run_sim(vectorize=True, config=config)
        assert history.accuracies == ref_history.accuracies
        assert_states_equal(state, ref_state)


class TestRaggedParity:
    """Unequal member dataset sizes no longer force a fallback when the
    per-member step counts still agree: the final short batches are
    zero-padded and every padded row is excluded from forward GEMMs,
    loss, and gradients."""

    # batch_size=8 -> 3 steps each, final batches of 8/4/2 rows.
    SIZES = [24, 20, 18]

    def test_ragged_cohort_vectorizes_bit_identical(self):
        per_client, ref_history, ref_state = run_sim(
            vectorize=False, client_sizes=self.SIZES
        )
        vectorized, history, state = run_sim(
            vectorize=True, client_sizes=self.SIZES
        )
        assert history.accuracies == ref_history.accuracies
        assert_states_equal(state, ref_state)
        for a, b in zip(per_client.clients, vectorized.clients):
            assert_states_equal(a.model.state_dict(), b.model.state_dict())
            assert a.rng.bit_generator.state == b.rng.bit_generator.state
        report = vectorized.vectorize_report()
        assert report["rounds_vectorized"] == ROUNDS
        assert report["rounds_fallback"] == 0

    def test_ragged_with_grad_clip_and_codec(self):
        config = TrainConfig(epochs=1, batch_size=8, learning_rate=0.1,
                             momentum=0.9, grad_clip=1.0)
        _, ref_history, ref_state = run_sim(
            vectorize=False, client_sizes=self.SIZES, config=config,
            codec="delta",
        )
        _, history, state = run_sim(
            vectorize=True, client_sizes=self.SIZES, config=config,
            codec="delta",
        )
        assert history.accuracies == ref_history.accuracies
        assert_states_equal(state, ref_state)

    def test_ragged_async_bit_identical(self):
        _, ref_history, ref_state = run_sim(
            vectorize=False, client_sizes=self.SIZES, async_mode=True
        )
        vectorized, history, state = run_sim(
            vectorize=True, client_sizes=self.SIZES, async_mode=True
        )
        assert history.accuracies == ref_history.accuracies
        assert_states_equal(state, ref_state)
        assert vectorized.vectorize_report()["rounds_vectorized"] > 0


class TestStackChunkSharding:
    """Vectorized rounds shard the stacked task across backend workers;
    the reassembled results stay bit-identical and the chunk fan-out is
    tallied in the report."""

    def test_single_worker_backends_run_one_chunk(self):
        sim, _, _ = run_sim(vectorize=True)
        assert sim.vectorize_report()["chunks"] == {1: ROUNDS}

    def test_pool_backend_splits_and_stays_bit_identical(self):
        _, ref_history, ref_state = run_sim(vectorize=False)
        sim, history, state = run_sim(
            vectorize=True, backend=PoolBackend(max_workers=2), shared=True
        )
        assert history.accuracies == ref_history.accuracies
        assert_states_equal(state, ref_state)
        assert sim.vectorize_report()["chunks"] == {2: ROUNDS}

    def test_chunked_ragged_cohort_bit_identical(self):
        sizes = [24, 20, 18, 17, 23]  # all 3 steps at batch_size=8
        _, ref_history, ref_state = run_sim(
            vectorize=False, client_sizes=sizes
        )
        sim, history, state = run_sim(
            vectorize=True, client_sizes=sizes,
            backend=PoolBackend(max_workers=4), shared=True,
        )
        assert history.accuracies == ref_history.accuracies
        assert_states_equal(state, ref_state)
        assert sim.vectorize_report()["chunks"] == {4: ROUNDS}

    @pytest.mark.parametrize("codec", ["delta", "quant:8"])
    def test_chunked_codecs_match_per_client_twin(self, codec):
        _, ref_history, ref_state = run_sim(vectorize=False, codec=codec)
        _, history, state = run_sim(
            vectorize=True, codec=codec,
            backend=PoolBackend(max_workers=2), shared=True,
        )
        assert history.accuracies == ref_history.accuracies
        assert_states_equal(state, ref_state)

    def test_chunked_async_bit_identical(self):
        _, ref_history, ref_state = run_sim(vectorize=False, async_mode=True)
        sim, history, state = run_sim(
            vectorize=True, async_mode=True,
            backend=PoolBackend(max_workers=2), shared=True,
        )
        assert history.accuracies == ref_history.accuracies
        assert_states_equal(state, ref_state)
        report = sim.vectorize_report()
        assert report["rounds_vectorized"] > 0
        assert 2 in report["chunks"]


class TestFallback:
    def test_single_participant_falls_back(self):
        clients, test = make_blob_federation(1, per_client=24, test_size=48)
        fed = FederatedDataset(client_datasets=clients, test_set=test)
        sim = FederatedSimulation(
            FACTORY, fed, FedAvgAggregator(),
            TrainConfig(epochs=1, batch_size=8, learning_rate=0.1),
            vectorize=True,
        )
        sim.run(1)
        report = sim.vectorize_report()
        assert report["rounds_vectorized"] == 0
        assert report["rounds_fallback"] == 1
        assert "single participant" in str(report["fallback_reasons"])

    def test_unequal_dataset_sizes_fall_back(self):
        sim, _, _ = run_sim(vectorize=True, client_sizes=[24, 24, 16])
        report = sim.vectorize_report()
        assert report["rounds_vectorized"] == 0
        assert report["rounds_fallback"] == ROUNDS
        assert "sizes differ" in str(report["fallback_reasons"])

    def test_conv_architecture_falls_back_on_ragged_cohorts_only(self):
        # Conv2d weight gradients contract over batch rows x spatial
        # positions, so zero-padded rows would change the reduction
        # extent: ragged cohorts must fall back with a recorded reason,
        # while equal-size cohorts still vectorize the same arch.
        def factory():
            rng = np.random.default_rng(5)
            return Sequential(
                Conv2d(1, 3, 3, rng, padding=1), Flatten(), Linear(48, 3, rng),
            )

        sim, _, _ = run_sim(vectorize=True, factory=factory,
                            client_sizes=[24, 20, 18])
        report = sim.vectorize_report()
        assert report["rounds_vectorized"] == 0
        assert "ragged cohort" in str(report["fallback_reasons"])
        assert "Conv2d" in str(report["fallback_reasons"])

        _, ref_history, ref_state = run_sim(vectorize=False, factory=factory,
                                            client_sizes=[24, 20, 18])
        _, history, state = run_sim(vectorize=True, factory=factory,
                                    client_sizes=[24, 20, 18])
        assert history.accuracies == ref_history.accuracies
        assert_states_equal(state, ref_state)

        sim, _, _ = run_sim(vectorize=True, factory=factory)
        assert sim.vectorize_report()["rounds_vectorized"] == ROUNDS

    def test_unstackable_architecture_falls_back(self):
        def factory():
            rng = np.random.default_rng(5)
            return Sequential(
                Conv2d(1, 3, 3, rng, padding=1), BatchNorm2d(3),
                Flatten(), Linear(48, 3, rng),
            )

        sim, _, _ = run_sim(vectorize=True, factory=factory)
        report = sim.vectorize_report()
        assert report["rounds_vectorized"] == 0
        assert "not stackable" in str(report["fallback_reasons"])

    def test_fallback_logged_once_per_distinct_reason(self, caplog):
        with caplog.at_level(logging.WARNING, logger="repro.federated.simulation"):
            sim, _, _ = run_sim(vectorize=True, client_sizes=[24, 24, 16])
        warnings = [
            record for record in caplog.records
            if "fell back" in record.getMessage()
        ]
        assert len(warnings) == 1  # three rounds, one distinct reason
        assert sim.vectorize_report()["rounds_fallback"] == ROUNDS

    def test_fallback_rounds_still_bit_identical(self):
        _, ref_history, ref_state = run_sim(
            vectorize=False, client_sizes=[24, 24, 16]
        )
        _, history, state = run_sim(vectorize=True, client_sizes=[24, 24, 16])
        assert history.accuracies == ref_history.accuracies
        assert_states_equal(state, ref_state)


class TestReport:
    def test_off_by_default_and_unrequested(self):
        sim, _, _ = run_sim()
        report = sim.vectorize_report()
        assert report == {
            "requested": False,
            "rounds_vectorized": 0,
            "rounds_fallback": 0,
            "fallback_reasons": {},
            "chunks": {},
        }

    def test_transport_report_totals_match_round_records(self):
        _, history, _ = run_sim(vectorize=True)
        sim, history, _ = run_sim(vectorize=True)
        report = sim.transport_report()
        assert report["bytes_down"] == sum(r.bytes_down for r in history.rounds)
        assert report["bytes_up"] == sum(r.bytes_up for r in history.rounds)

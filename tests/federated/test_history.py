"""Round-history retention for update-adjustment unlearning."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.federated import (
    ClientUpdate,
    FedAvgAggregator,
    FederatedSimulation,
    RoundHistoryStore,
    attach_history,
)
from repro.data.dataset import FederatedDataset
from repro.nn.models import MLP
from repro.training.config import TrainConfig

from ..conftest import make_blob_federation


def make_update(seed: int, client_id: int, num_samples: int = 10) -> ClientUpdate:
    rng = np.random.default_rng(seed)
    return ClientUpdate(
        state={"w": rng.normal(size=(3, 2)), "b": rng.normal(size=(2,))},
        num_samples=num_samples,
        client_id=client_id,
    )


def global_state(seed: int = 99):
    rng = np.random.default_rng(seed)
    return {"w": rng.normal(size=(3, 2)), "b": rng.normal(size=(2,))}


class TestRecording:
    def test_stores_round_and_copies_state(self):
        store = RoundHistoryStore()
        update = make_update(0, client_id=0)
        before = global_state()
        assert store.record_round(0, before, [update])
        # Mutating the caller's arrays must not corrupt the snapshot.
        update.state["w"] += 100.0
        before["w"] += 100.0
        snapshot = store.snapshot_at(0)
        assert abs(snapshot.client_states[0]["w"]).max() < 50.0
        assert abs(snapshot.global_before["w"]).max() < 50.0

    def test_out_of_order_rejected(self):
        store = RoundHistoryStore()
        store.record_round(3, global_state(), [make_update(0, 0)])
        with pytest.raises(ValueError, match="out of order"):
            store.record_round(3, global_state(), [make_update(0, 0)])
        with pytest.raises(ValueError, match="out of order"):
            store.record_round(1, global_state(), [make_update(0, 0)])

    def test_duplicate_client_rejected(self):
        store = RoundHistoryStore()
        with pytest.raises(ValueError, match="duplicate client"):
            store.record_round(
                0, global_state(), [make_update(0, 7), make_update(1, 7)]
            )

    def test_empty_round_rejected(self):
        store = RoundHistoryStore()
        with pytest.raises(ValueError, match="no client updates"):
            store.record_round(0, global_state(), [])

    def test_retention_interval_skips_rounds(self):
        store = RoundHistoryStore(retention_interval=3)
        for round_index in range(7):
            stored = store.record_round(
                round_index, global_state(), [make_update(round_index, 0)]
            )
            assert stored == (round_index % 3 == 0)
        assert store.stored_round_indices == [0, 3, 6]

    def test_retention_interval_validation(self):
        with pytest.raises(ValueError):
            RoundHistoryStore(retention_interval=0)


class TestQueries:
    def _store_with_rounds(self):
        store = RoundHistoryStore()
        store.record_round(
            0, global_state(1), [make_update(0, 0), make_update(1, 1)]
        )
        store.record_round(1, global_state(2), [make_update(2, 0)])
        return store

    def test_client_update_is_delta(self):
        store = RoundHistoryStore()
        before = global_state()
        update = make_update(5, client_id=2)
        store.record_round(0, before, [update])
        delta = store.snapshot_at(0).client_update(2)
        np.testing.assert_allclose(delta["w"], update.state["w"] - before["w"])

    def test_missing_round_and_client_raise(self):
        store = self._store_with_rounds()
        with pytest.raises(KeyError):
            store.snapshot_at(42)
        with pytest.raises(KeyError):
            store.snapshot_at(1).client_update(1)

    def test_rounds_with_client(self):
        store = self._store_with_rounds()
        assert [s.round_index for s in store.rounds_with_client(0)] == [0, 1]
        assert [s.round_index for s in store.rounds_with_client(1)] == [0]
        assert store.rounds_with_client(9) == []

    def test_storage_report_counts_bytes(self):
        store = self._store_with_rounds()
        report = store.storage_report()
        assert report.num_rounds_stored == 2
        assert report.num_client_states == 3
        per_state = 3 * 2 * 8 + 2 * 8  # w float64 + b float64
        assert report.bytes_client_states == 3 * per_state
        assert report.bytes_global_states == 2 * per_state
        assert report.total_bytes == report.bytes_client_states + report.bytes_global_states

    def test_clear(self):
        store = self._store_with_rounds()
        store.clear()
        assert len(store) == 0


class TestAttachToSimulation:
    def test_records_every_round_of_a_real_simulation(self):
        clients, test = make_blob_federation(
            num_clients=3, per_client=12, test_size=12
        )
        fed = FederatedDataset(client_datasets=clients, test_set=test)
        factory = lambda: MLP(16, 3, np.random.default_rng(0))
        sim = FederatedSimulation(
            model_factory=factory,
            fed_data=fed,
            aggregator=FedAvgAggregator(),
            train_config=TrainConfig(epochs=1, batch_size=6, learning_rate=0.05),
            seed=0,
        )
        store = attach_history(sim, RoundHistoryStore())
        sim.run(3)
        assert len(store) == 3
        for snapshot in store.snapshots:
            assert snapshot.client_ids == [0, 1, 2]
            assert snapshot.global_after is not None
        # The recorded client states are what went into aggregation: the
        # size-weighted mean must equal the recorded post-round global.
        last = store.snapshot_at(2)
        sizes = [last.client_sizes[c] for c in last.client_ids]
        total = sum(sizes)
        for key in last.global_after:
            expected = sum(
                (size / total) * last.client_states[cid][key]
                for cid, size in zip(last.client_ids, sizes)
            )
            np.testing.assert_allclose(last.global_after[key], expected, rtol=1e-10)


class TestProperties:
    @given(interval=st.integers(1, 5), num_rounds=st.integers(1, 20))
    @settings(max_examples=30, deadline=None)
    def test_property_retention_stores_exactly_multiples(self, interval, num_rounds):
        store = RoundHistoryStore(retention_interval=interval)
        for round_index in range(num_rounds):
            store.record_round(
                round_index, global_state(), [make_update(round_index, 0)]
            )
        assert store.stored_round_indices == [
            r for r in range(num_rounds) if r % interval == 0
        ]
        report = store.storage_report()
        assert report.num_rounds_stored == len(store.stored_round_indices)

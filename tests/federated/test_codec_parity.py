"""Update-codec parity across backends, engines and deletion overlap.

The transport contract of the zero-redundancy layer:

* ``raw`` and ``delta`` are **bit-identical** to the historical pipeline
  on every backend (serial / thread / process / pool), in sync and
  buffered-async modes, and while a :class:`DeletionService` overlaps
  federation rounds on a shared pool;
* lossy codecs (``topk``/``quant``) are deterministic per seed and
  identical across backends (the transform runs inside the task);
* per-round byte counts land in :class:`RoundRecord` and cumulative
  totals in :meth:`FederatedSimulation.transport_report`.
"""

import numpy as np
import pytest

from repro.data import FederatedDataset
from repro.federated import (
    AsyncRoundConfig,
    FedAvgAggregator,
    FederatedSimulation,
    SeededLatency,
)
from repro.nn.models import RegistryModelFactory
from repro.runtime import PoolBackend
from repro.training import TrainConfig
from repro.unlearning import (
    BatchSizePolicy,
    DeletionManager,
    DeletionService,
    SisaConfig,
    SisaEnsemble,
)

from ..conftest import make_blob_federation, make_blobs

FACTORY = RegistryModelFactory(name="mlp", num_classes=3, in_channels=1, image_size=4)
ASYNC = AsyncRoundConfig(buffer_size=3, max_staleness=2, straggler_timeout=2.5)
LATENCY = SeededLatency(low=0.5, high=1.5, seed=11, slow_every=3, slow_factor=4.0)
ROUNDS = 4


def build_sim(codec="raw", backend=None, async_mode=False, seed=0, shared=False):
    clients, test = make_blob_federation(5, per_client=24, test_size=48, seed=seed)
    fed = FederatedDataset(client_datasets=clients, test_set=test)
    if shared:
        fed = fed.share()
    config = TrainConfig(epochs=1, batch_size=8, learning_rate=0.1)
    return FederatedSimulation(
        FACTORY, fed, FedAvgAggregator(), config, seed=seed, backend=backend,
        async_config=ASYNC if async_mode else None,
        latency_model=LATENCY if async_mode else None,
        codec=codec,
    )


def global_state(sim):
    return sim.server.global_state


def assert_states_equal(a, b):
    assert set(a) == set(b)
    for key in a:
        np.testing.assert_array_equal(a[key], b[key])


def run_history(codec, backend=None, async_mode=False, shared=False):
    sim = build_sim(codec=codec, backend=backend, async_mode=async_mode,
                    shared=shared)
    history = sim.run(ROUNDS)
    state = global_state(sim)
    report = sim.transport_report()
    if hasattr(backend, "close"):
        backend.close()
    return history, state, report


class TestSyncParity:
    def test_raw_unchanged_and_delta_bit_identical_across_backends(self):
        reference_history, reference_state, _ = run_history("raw")
        for codec in ("raw", "delta"):
            for backend_factory in (
                lambda: "serial",
                lambda: "thread",
                lambda: "process:2",
                lambda: PoolBackend(max_workers=2),
            ):
                history, state, _ = run_history(codec, backend_factory())
                assert history.accuracies == reference_history.accuracies
                assert_states_equal(state, reference_state)

    def test_client_models_and_rngs_match_after_delta_rounds(self):
        raw = build_sim("raw")
        raw.run(ROUNDS)
        delta = build_sim("delta")
        delta.run(ROUNDS)
        for a, b in zip(raw.clients, delta.clients):
            assert_states_equal(a.model.state_dict(), b.model.state_dict())
            assert a.rng.bit_generator.state == b.rng.bit_generator.state


class TestAsyncParity:
    def test_delta_bit_identical_to_raw_async_across_backends(self):
        _, reference_state, _ = run_history("raw", async_mode=True)
        for codec in ("raw", "delta"):
            for backend_factory in (
                lambda: "serial",
                lambda: PoolBackend(max_workers=2),
            ):
                history, state, _ = run_history(
                    codec, backend_factory(), async_mode=True,
                    shared=not isinstance(backend_factory(), str),
                )
                assert_states_equal(state, reference_state)

    def test_async_records_carry_bytes(self):
        history, _, report = run_history("delta", async_mode=True)
        assert all(r.bytes_down > 0 for r in history.rounds)
        assert sum(r.bytes_up for r in history.rounds) > 0
        assert report["codec"] == "delta"


class TestMeteringUnderCodecs:
    def test_async_meter_records_actual_bytes_not_dense_pricing(self):
        from repro.federated import CostMeter, MeteredSimulationProxy

        raw_sim = build_sim("raw", async_mode=True)
        raw_metered = MeteredSimulationProxy(raw_sim, CostMeter())
        raw_records = raw_metered.run(ROUNDS)

        quant_sim = build_sim("quant:8", async_mode=True)
        quant_metered = MeteredSimulationProxy(quant_sim, CostMeter())
        quant_records = quant_metered.run(ROUNDS)

        # Under a codec the meter charges what actually moved — exactly
        # the per-round transport counts — instead of dense pricing.
        assert quant_metered.meter.download_bytes == sum(
            r.bytes_down for r in quant_records
        )
        assert quant_metered.meter.upload_bytes == sum(
            r.bytes_up for r in quant_records
        )
        # A compressed async run must report less uplink than raw's dense
        # float32 pricing, not the identical number.
        assert quant_metered.meter.upload_bytes < raw_metered.meter.upload_bytes

    def test_sync_meter_matches_round_records_under_codec(self):
        from repro.federated import CostMeter, MeteredSimulationProxy

        sim = build_sim("delta")
        metered = MeteredSimulationProxy(sim, CostMeter())
        records = metered.run(ROUNDS)
        assert metered.meter.download_bytes == sum(r.bytes_down for r in records)
        assert metered.meter.upload_bytes == sum(r.bytes_up for r in records)


class TestLossyDeterminism:
    @pytest.mark.parametrize("codec", ["quant:8", "topk:0.2"])
    def test_deterministic_per_seed_and_backend_independent(self, codec):
        _, first_state, _ = run_history(codec)
        _, second_state, _ = run_history(codec)
        assert_states_equal(first_state, second_state)
        pool = PoolBackend(max_workers=2)
        _, pool_state, _ = run_history(codec, pool, shared=True)
        assert_states_equal(first_state, pool_state)

    def test_lossy_differs_from_raw_but_stays_close(self):
        _, raw_state, _ = run_history("raw")
        _, quant_state, _ = run_history("quant:8")
        assert any(
            not np.array_equal(raw_state[key], quant_state[key])
            for key in raw_state
        )
        for key in raw_state:
            scale = float(np.abs(raw_state[key]).max()) + 1e-9
            assert float(np.abs(raw_state[key] - quant_state[key]).max()) < scale


class TestByteAccounting:
    def test_round_records_and_report_are_consistent(self):
        history, _, report = run_history("delta")
        assert all(r.bytes_down > 0 and r.bytes_up > 0 for r in history.rounds)
        assert report["bytes_down"] == sum(r.bytes_down for r in history.rounds)
        assert report["bytes_up"] == sum(r.bytes_up for r in history.rounds)
        assert report["bytes_total"] == report["bytes_down"] + report["bytes_up"]

    def test_delta_uplink_cheaper_than_raw_on_serial_accounting(self):
        _, _, raw_report = run_history("raw")
        _, _, delta_report = run_history("delta")
        assert delta_report["bytes_up"] < raw_report["bytes_up"]

    def test_bytes_up_uniform_across_backends(self):
        # Uplink is the encoded return payload on every backend — pool
        # framing overhead never leaks into the per-round counts.
        _, _, serial_report = run_history("delta")
        pool = PoolBackend(max_workers=2)
        _, _, pool_report = run_history("delta", pool, shared=True)
        assert pool_report["bytes_up"] == serial_report["bytes_up"]

    def test_pool_broadcast_cache_shrinks_downlink(self):
        _, _, serial_report = run_history("delta")
        pool = PoolBackend(max_workers=1)
        _, _, pool_report = run_history("delta", pool, shared=True)
        # 5 clients × 4 rounds on one worker: 1 full + 3 deltas + 16 refs.
        assert pool_report["broadcast_ref"] >= 12
        assert pool_report["broadcast_full"] == 1
        assert pool_report["bytes_down"] < serial_report["bytes_down"] / 2


class TestDeletionServiceOverlap:
    """Federation rounds under ``delta`` while a DeletionService retrains
    SISA shards on the *same* pool: both must stay bit-identical to their
    isolated serial/raw counterparts (chain init states interleave with
    federation broadcasts in the worker caches)."""

    SISA = SisaConfig(num_shards=3, num_slices=2, epochs_per_slice=1, batch_size=8)
    REQUESTS = {1: [3, 40], 2: [41, 70]}

    def run_overlapped(self, codec, backend):
        dataset = make_blobs(num_samples=72, num_classes=3, shape=(1, 4, 4), seed=0)
        ensemble = SisaEnsemble(
            FACTORY, dataset, self.SISA, seed=5, backend=backend
        ).fit()
        manager = DeletionManager(BatchSizePolicy(2))
        service = DeletionService(manager, ensemble)
        sim = build_sim(codec=codec, backend=backend,
                        shared=not isinstance(backend, str))
        records = []
        for round_index in range(ROUNDS):
            service.poll(round_index)
            for index in self.REQUESTS.get(round_index, []):
                manager.submit(
                    client_id=0, indices=[index], round_index=round_index
                )
            service.maybe_submit(round_index)
            records.append(sim.run_round(round_index))
        service.drain(ROUNDS)
        while manager.num_pending:
            service.maybe_submit(ROUNDS)
            service.drain(ROUNDS)
        return sim, ensemble, records

    def shard_states(self, ensemble):
        return [shard.model.state_dict() for shard in ensemble._shards]

    def test_delta_overlap_bit_identical_to_raw_serial(self):
        serial_sim, serial_ensemble, _ = self.run_overlapped("raw", "serial")
        pool = PoolBackend(max_workers=2)
        try:
            pool_sim, pool_ensemble, records = self.run_overlapped("delta", pool)
        finally:
            pool.close()
        assert_states_equal(global_state(serial_sim), global_state(pool_sim))
        for a, b in zip(
            self.shard_states(serial_ensemble), self.shard_states(pool_ensemble)
        ):
            assert_states_equal(a, b)
        assert all(r.bytes_down > 0 for r in records)

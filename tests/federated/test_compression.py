"""Top-k / quantization compressors and error feedback."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.federated import (
    ErrorFeedback,
    IdentityCompressor,
    QuantizationCompressor,
    TopKCompressor,
)


def example_state(seed=0):
    rng = np.random.default_rng(seed)
    return {"w": rng.normal(size=(8, 8)), "b": rng.normal(size=(8,))}


class TestTopK:
    def test_keeps_largest_magnitudes(self):
        state = {"w": np.array([[0.1, -5.0], [3.0, 0.01]])}
        compressor = TopKCompressor(fraction=0.5)
        restored = compressor.decompress(compressor.compress(state))
        np.testing.assert_allclose(
            restored["w"], np.array([[0.0, -5.0], [3.0, 0.0]])
        )

    def test_full_fraction_is_lossless(self):
        state = example_state()
        compressor = TopKCompressor(fraction=1.0)
        restored = compressor.decompress(compressor.compress(state))
        for key in state:
            np.testing.assert_allclose(restored[key], state[key], rtol=1e-6)

    def test_keeps_at_least_one_entry_per_tensor(self):
        state = {"b": np.array([0.5, -0.1])}
        compressed = TopKCompressor(fraction=0.01).compress(state)
        restored = TopKCompressor(fraction=0.01).decompress(compressed)
        assert np.count_nonzero(restored["b"]) == 1
        assert restored["b"][0] == pytest.approx(0.5, rel=1e-6)

    def test_wire_size_shrinks(self):
        state = example_state()
        compressed = TopKCompressor(fraction=0.1).compress(state)
        assert compressed.payload_bytes < compressed.original_bytes
        assert compressed.compression_ratio > 1.0
        assert compressed.scheme == "topk(0.1)"

    def test_validation(self):
        with pytest.raises(ValueError):
            TopKCompressor(0.0)
        with pytest.raises(ValueError):
            TopKCompressor(1.5)

    @given(fraction=st.floats(0.05, 1.0), seed=st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_property_reconstruction_error_shrinks_with_fraction(
        self, fraction, seed
    ):
        """Top-k error is never larger than dropping everything, and a
        kept entry is always exact."""
        state = example_state(seed)
        compressor = TopKCompressor(fraction)
        restored = compressor.decompress(compressor.compress(state))
        for key in state:
            kept = restored[key] != 0.0
            np.testing.assert_allclose(
                restored[key][kept], state[key][kept], rtol=1e-6
            )
            # error bounded by the norm of what was dropped
            assert np.linalg.norm(restored[key] - state[key]) <= np.linalg.norm(
                state[key]
            ) + 1e-9


class TestQuantization:
    def test_roundtrip_error_bounded_by_half_level(self):
        state = example_state()
        for bits in (4, 8, 12):
            compressor = QuantizationCompressor(num_bits=bits)
            restored = compressor.decompress(compressor.compress(state))
            for key in state:
                span = state[key].max() - state[key].min()
                half_level = span / ((1 << bits) - 1) / 2
                assert np.abs(restored[key] - state[key]).max() <= half_level + 1e-12

    def test_constant_tensor_exact(self):
        state = {"b": np.full(5, 3.14)}
        compressor = QuantizationCompressor(num_bits=2)
        restored = compressor.decompress(compressor.compress(state))
        np.testing.assert_allclose(restored["b"], state["b"])

    def test_wire_size_accounts_bits(self):
        state = {"w": np.arange(16, dtype=np.float64).reshape(4, 4)}
        compressed = QuantizationCompressor(num_bits=8).compress(state)
        # 16 bytes of codes + 8 bytes codebook
        assert compressed.payload_bytes == 16 + 8
        assert compressed.original_bytes == 16 * 4

    def test_validation(self):
        with pytest.raises(ValueError):
            QuantizationCompressor(num_bits=0)
        with pytest.raises(ValueError):
            QuantizationCompressor(num_bits=17)

    def test_more_bits_less_error(self):
        state = example_state(3)
        errors = []
        for bits in (2, 6, 12):
            compressor = QuantizationCompressor(num_bits=bits)
            restored = compressor.decompress(compressor.compress(state))
            errors.append(
                sum(np.abs(restored[k] - state[k]).max() for k in state)
            )
        assert errors[0] > errors[1] > errors[2]


class TestIdentity:
    def test_roundtrip_and_ratio_one(self):
        state = example_state()
        compressor = IdentityCompressor()
        compressed = compressor.compress(state)
        assert compressed.compression_ratio == pytest.approx(1.0)
        restored = compressor.decompress(compressed)
        for key in state:
            np.testing.assert_allclose(restored[key], state[key], rtol=1e-6)


class TestErrorFeedback:
    def test_residual_carries_dropped_signal(self):
        feedback = ErrorFeedback(TopKCompressor(fraction=0.25))
        state = example_state(1)
        _, reconstructed = feedback.compress(state)
        assert feedback.residual_norm > 0.0
        # residual = what the server did not see this round
        for key in state:
            residual = state[key] - reconstructed[key]
            assert np.linalg.norm(residual) > 0.0

    def test_cumulative_signal_preserved(self):
        """Over many rounds of the SAME update, the cumulative transmitted
        signal converges to the cumulative true signal (error feedback's
        raison d'être)."""
        feedback = ErrorFeedback(TopKCompressor(fraction=0.2))
        update = example_state(2)
        transmitted_total = {k: np.zeros_like(v) for k, v in update.items()}
        rounds = 30
        for _ in range(rounds):
            _, reconstructed = feedback.compress(update)
            for key in update:
                transmitted_total[key] += reconstructed[key]
        for key in update:
            # Average transmitted per round ≈ the true update.
            np.testing.assert_allclose(
                transmitted_total[key] / rounds, update[key], atol=0.25
            )

    def test_structure_change_rejected(self):
        feedback = ErrorFeedback(TopKCompressor(fraction=0.5))
        feedback.compress(example_state())
        with pytest.raises(KeyError, match="structure changed"):
            feedback.compress({"other": np.ones(3)})

    def test_reset_clears_residual(self):
        feedback = ErrorFeedback(TopKCompressor(fraction=0.2))
        feedback.compress(example_state())
        feedback.reset()
        assert feedback.residual_norm == 0.0

    def test_identity_wrapper_rejected(self):
        with pytest.raises(ValueError, match="pointless"):
            ErrorFeedback(IdentityCompressor())

"""State-dict arithmetic, including hypothesis property tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.federated import state_math


def make_state(seed, keys=("w", "b")):
    rng = np.random.default_rng(seed)
    return {"w": rng.normal(size=(3, 2)), "b": rng.normal(size=(2,))}


class TestCompatibility:
    def test_key_mismatch(self):
        with pytest.raises(KeyError):
            state_math.check_compatible([{"a": np.ones(1)}, {"b": np.ones(1)}])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            state_math.check_compatible([{"a": np.ones(1)}, {"a": np.ones(2)}])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            state_math.check_compatible([])


class TestBasicOps:
    def test_add_subtract_inverse(self):
        a, b = make_state(0), make_state(1)
        roundtrip = state_math.subtract(state_math.add(a, b), b)
        for key in a:
            np.testing.assert_allclose(roundtrip[key], a[key])

    def test_scale(self):
        a = make_state(0)
        doubled = state_math.scale(a, 2.0)
        for key in a:
            np.testing.assert_allclose(doubled[key], 2 * a[key])

    def test_zeros_like(self):
        z = state_math.zeros_like(make_state(0))
        assert all((v == 0).all() for v in z.values())

    def test_mean(self):
        a, b = make_state(0), make_state(1)
        mean = state_math.mean([a, b])
        for key in a:
            np.testing.assert_allclose(mean[key], (a[key] + b[key]) / 2)


class TestWeightedSum:
    def test_matches_manual(self):
        states = [make_state(i) for i in range(3)]
        weights = [0.2, 0.3, 0.5]
        combined = state_math.weighted_sum(states, weights)
        for key in states[0]:
            expected = sum(w * s[key] for w, s in zip(weights, states))
            np.testing.assert_allclose(combined[key], expected)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            state_math.weighted_sum([make_state(0)], [0.5, 0.5])

    def test_identity_weight(self):
        a = make_state(0)
        out = state_math.weighted_sum([a], [1.0])
        for key in a:
            np.testing.assert_allclose(out[key], a[key])


class TestDistances:
    def test_l2_zero_for_identical(self):
        a = make_state(0)
        assert state_math.l2_distance(a, {k: v.copy() for k, v in a.items()}) == 0.0

    def test_l2_matches_flat_norm(self):
        a, b = make_state(0), make_state(1)
        expected = np.linalg.norm(state_math.flatten(a) - state_math.flatten(b))
        np.testing.assert_allclose(state_math.l2_distance(a, b), expected)

    def test_flatten_sorted_by_key(self):
        state = {"z": np.array([3.0]), "a": np.array([1.0, 2.0])}
        np.testing.assert_allclose(state_math.flatten(state), [1.0, 2.0, 3.0])


@settings(max_examples=40, deadline=None)
@given(
    seed_a=st.integers(0, 100),
    seed_b=st.integers(0, 100),
    alpha=st.floats(-3, 3, allow_nan=False),
)
def test_property_weighted_sum_linear(seed_a, seed_b, alpha):
    """weighted_sum([a, b], [α, 1-α]) == α·a + (1-α)·b elementwise."""
    a, b = make_state(seed_a), make_state(seed_b)
    combined = state_math.weighted_sum([a, b], [alpha, 1 - alpha])
    for key in a:
        np.testing.assert_allclose(
            combined[key], alpha * a[key] + (1 - alpha) * b[key], atol=1e-10
        )


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 100), factor=st.floats(0.1, 10))
def test_property_l2_scales_linearly(seed, factor):
    """‖(a+δ) − a‖ scales linearly with the perturbation magnitude."""
    a = make_state(seed)
    delta = make_state(seed + 1)
    perturbed = state_math.add(a, state_math.scale(delta, factor))
    base = state_math.l2_distance(state_math.add(a, delta), a)
    scaled = state_math.l2_distance(perturbed, a)
    np.testing.assert_allclose(scaled, factor * base, rtol=1e-9)


class TestCheckFinite:
    def test_finite_state_passes(self):
        state_math.check_finite({"w": np.ones((2, 2))})

    def test_nan_rejected_with_context(self):
        bad = {"w": np.array([1.0, np.nan, np.inf])}
        with pytest.raises(ValueError, match="client 3 upload.*2 non-finite"):
            state_math.check_finite(bad, context="client 3 upload")

    def test_aggregator_rejects_diverged_upload(self):
        from repro.federated import ClientUpdate, FedAvgAggregator

        good = ClientUpdate(state={"w": np.ones(3)}, num_samples=5, client_id=0)
        bad = ClientUpdate(
            state={"w": np.array([1.0, np.inf, 0.0])}, num_samples=5, client_id=1
        )
        with pytest.raises(ValueError, match="non-finite"):
            FedAvgAggregator().aggregate([good, bad])

"""Cost metering and client-participation sampling."""

import numpy as np
import pytest

from repro.data.dataset import FederatedDataset
from repro.federated import (
    CostMeter,
    DropoutInjector,
    FedAvgAggregator,
    FederatedSimulation,
    FullParticipation,
    MeteredSimulationProxy,
    ParticipationLog,
    UniformSampler,
    WeightedSampler,
    state_bytes,
)
from repro.nn.models import MLP
from repro.training.config import TrainConfig

from ..conftest import make_blob_federation


class TestStateBytes:
    def test_prices_float32_wire_format(self):
        state = {"w": np.zeros((10, 10)), "b": np.zeros(10)}
        assert state_bytes(state) == (100 + 10) * 4


class TestCostMeter:
    def test_accumulates_and_reports(self):
        meter = CostMeter("run")
        meter.record_upload(100)
        meter.record_download(50)
        meter.record_training(num_samples=200, epochs=3)
        meter.record_round()
        report = meter.report()
        assert report.upload_bytes == 100
        assert report.download_bytes == 50
        assert report.total_bytes == 150
        assert report.samples_processed == 600
        assert report.local_epochs == 3
        assert report.rounds == 1
        assert set(report.as_dict()) >= {"total_bytes", "samples_processed"}

    def test_broadcast_multiplies_by_clients(self):
        meter = CostMeter()
        state = {"w": np.zeros(25)}
        meter.record_broadcast(state, num_clients=4)
        assert meter.download_bytes == 25 * 4 * 4

    def test_time_block_measures(self):
        meter = CostMeter()
        with meter.time_block():
            sum(range(10000))
        assert meter.wall_clock_seconds > 0.0

    def test_merge(self):
        a, b = CostMeter(), CostMeter()
        a.record_upload(10)
        b.record_upload(20)
        b.record_round()
        a.merge(b)
        assert a.upload_bytes == 30
        assert a.rounds == 1

    def test_negative_rejected(self):
        meter = CostMeter()
        with pytest.raises(ValueError):
            meter.record_upload(-1)
        with pytest.raises(ValueError):
            meter.record_training(-5, 1)
        with pytest.raises(ValueError):
            meter.record_broadcast({"w": np.zeros(2)}, -1)


class TestMeteredSimulation:
    def test_meters_a_real_run(self):
        clients, test = make_blob_federation(num_clients=3, per_client=10, test_size=9)
        fed = FederatedDataset(client_datasets=clients, test_set=test)
        factory = lambda: MLP(16, 3, np.random.default_rng(0))
        sim = FederatedSimulation(
            factory, fed, FedAvgAggregator(),
            TrainConfig(epochs=2, batch_size=5, learning_rate=0.05), seed=0,
        )
        metered = MeteredSimulationProxy(sim)
        metered.run(2)
        report = metered.meter.report()
        per_state = state_bytes(factory().state_dict())
        assert report.rounds == 2
        assert report.download_bytes == per_state * 3 * 2
        assert report.upload_bytes == per_state * 3 * 2
        assert report.samples_processed == 3 * 10 * 2 * 2  # clients×data×epochs×rounds
        assert report.wall_clock_seconds > 0.0

    def test_invalid_rounds(self):
        metered = MeteredSimulationProxy(simulation=None)
        with pytest.raises(ValueError):
            metered.run(0)


class TestSamplers:
    def test_full_participation(self, rng):
        sampler = FullParticipation()
        assert sampler.sample([3, 1, 2], 0, rng) == [1, 2, 3]
        with pytest.raises(ValueError):
            sampler.sample([], 0, rng)
        with pytest.raises(ValueError):
            sampler.sample([1, 1], 0, rng)

    def test_uniform_sampler_size_and_membership(self, rng):
        sampler = UniformSampler(num_selected=3)
        chosen = sampler.sample(list(range(10)), 0, rng)
        assert len(chosen) == 3
        assert len(set(chosen)) == 3
        assert all(c in range(10) for c in chosen)

    def test_uniform_sampler_validation(self, rng):
        with pytest.raises(ValueError):
            UniformSampler(0)
        with pytest.raises(ValueError):
            UniformSampler(5).sample([0, 1], 0, rng)

    def test_weighted_sampler_prefers_large_clients(self):
        rng = np.random.default_rng(0)
        sampler = WeightedSampler(num_selected=1, sizes=[1, 1, 100])
        picks = [sampler.sample([0, 1, 2], r, rng)[0] for r in range(200)]
        assert picks.count(2) > 150

    def test_weighted_sampler_validation(self, rng):
        with pytest.raises(ValueError):
            WeightedSampler(1, sizes=[0, 5])
        with pytest.raises(ValueError):
            WeightedSampler(1, sizes=[5]).sample([0, 1], 0, rng)
        with pytest.raises(ValueError):
            WeightedSampler(3, sizes=[5, 5]).sample([0, 1], 0, rng)


class TestDropoutInjector:
    def test_no_dropout_is_identity(self, rng):
        injector = DropoutInjector(FullParticipation(), dropout_rate=0.0)
        assert injector.sample([0, 1, 2], 0, rng) == [0, 1, 2]

    def test_dropout_removes_some_clients_on_average(self):
        rng = np.random.default_rng(1)
        injector = DropoutInjector(FullParticipation(), dropout_rate=0.4)
        survivor_counts = [
            len(injector.sample(list(range(10)), r, rng)) for r in range(100)
        ]
        mean_survivors = np.mean(survivor_counts)
        assert 4.0 < mean_survivors < 8.0
        assert all(count >= 1 for count in survivor_counts)

    def test_min_survivors_enforced(self):
        rng = np.random.default_rng(2)
        injector = DropoutInjector(
            FullParticipation(), dropout_rate=0.95, min_survivors=2
        )
        for round_index in range(20):
            assert len(injector.sample([0, 1, 2, 3], round_index, rng)) >= 2

    def test_validation(self):
        with pytest.raises(ValueError):
            DropoutInjector(FullParticipation(), dropout_rate=1.0)
        with pytest.raises(ValueError):
            DropoutInjector(FullParticipation(), dropout_rate=0.5, min_survivors=0)


class TestParticipationLog:
    def test_rates(self):
        log = ParticipationLog(
            selected=[[0, 1, 2], [0, 1, 2], [0, 1, 2]],
            survived=[[0, 1], [0], [0, 2]],
        )
        assert log.num_rounds == 3
        assert log.participation_rate(0) == pytest.approx(1.0)
        assert log.participation_rate(1) == pytest.approx(1 / 3)
        assert log.participation_rate(9) == 0.0

    def test_empty_log_rejected(self):
        with pytest.raises(ValueError):
            ParticipationLog(selected=[], survived=[]).participation_rate(0)

"""Client deletion semantics and server broadcast/aggregate behaviour."""

import numpy as np
import pytest

from repro.federated import Client, FedAvgAggregator, Server
from repro.nn.models import MLP
from repro.training import TrainConfig

from ..conftest import make_blobs


def make_client(client_id=0, num_samples=30, seed=0):
    return Client(
        client_id=client_id,
        dataset=make_blobs(num_samples=num_samples, num_classes=3, shape=(1, 4, 4), seed=seed),
        model=MLP(16, 3, np.random.default_rng(seed)),
        rng=np.random.default_rng(seed + 1),
    )


class TestClientBasics:
    def test_empty_dataset_rejected(self):
        from repro.data import ArrayDataset
        with pytest.raises(ValueError):
            Client(0, ArrayDataset(np.zeros((0, 1, 4, 4)), np.zeros(0, dtype=int), 3),
                   MLP(16, 3, np.random.default_rng(0)), np.random.default_rng(0))

    def test_receive_global_installs_weights(self):
        client = make_client()
        other = MLP(16, 3, np.random.default_rng(77))
        client.receive_global(other.state_dict())
        for (_, pa), (_, pb) in zip(
            client.model.named_parameters(), other.named_parameters()
        ):
            np.testing.assert_allclose(pa.data, pb.data)

    def test_upload_reports_active_size(self):
        client = make_client(num_samples=30)
        assert client.upload().num_samples == 30
        client.request_deletion(np.arange(5))
        assert client.upload().num_samples == 25

    def test_local_train_reduces_loss(self):
        client = make_client()
        config = TrainConfig(epochs=5, batch_size=10, learning_rate=0.2)
        history = client.local_train(config)
        assert history.losses[-1] < history.losses[0]


class TestDeletionRequests:
    def test_forget_and_retain_split(self):
        client = make_client(num_samples=20)
        client.request_deletion(np.array([0, 1, 2]))
        assert client.has_pending_deletion
        assert len(client.forget_set) == 3
        assert len(client.retain_set) == 17
        assert len(client.active_dataset) == 17

    def test_no_pending_deletion_defaults(self):
        client = make_client()
        assert not client.has_pending_deletion
        assert client.forget_set is None
        assert len(client.retain_set) == len(client.dataset)

    def test_finalize_drops_data(self):
        client = make_client(num_samples=20)
        client.request_deletion(np.array([0, 1]))
        client.finalize_deletion()
        assert len(client.dataset) == 18
        assert not client.has_pending_deletion

    def test_finalize_without_pending_is_noop(self):
        client = make_client(num_samples=20)
        client.finalize_deletion()
        assert len(client.dataset) == 20

    def test_duplicate_indices_deduplicated(self):
        client = make_client(num_samples=20)
        client.request_deletion(np.array([3, 3, 4]))
        assert len(client.forget_set) == 2

    def test_validation(self):
        client = make_client(num_samples=10)
        with pytest.raises(ValueError):
            client.request_deletion(np.array([], dtype=int))
        with pytest.raises(ValueError):
            client.request_deletion(np.array([100]))
        with pytest.raises(ValueError):
            client.request_deletion(np.arange(10))  # entire dataset


class TestServer:
    def test_initial_state_remembered(self):
        model = MLP(16, 3, np.random.default_rng(0))
        server = Server(model, FedAvgAggregator())
        initial = server.initial_state
        for p in model.parameters():
            p.data += 5.0
        server.reinitialize()
        for name, p in model.named_parameters():
            np.testing.assert_allclose(p.data, initial[name])

    def test_initial_state_is_copied(self):
        model = MLP(16, 3, np.random.default_rng(0))
        server = Server(model, FedAvgAggregator())
        state = server.initial_state
        state["net.layer0.weight"][:] = 0
        assert not np.allclose(server.initial_state["net.layer0.weight"], 0)

    def test_broadcast_synchronises_clients(self):
        model = MLP(16, 3, np.random.default_rng(0))
        server = Server(model, FedAvgAggregator())
        clients = [make_client(i, seed=i) for i in range(3)]
        server.broadcast(clients)
        reference = model.state_dict()
        for client in clients:
            for name, p in client.model.named_parameters():
                np.testing.assert_allclose(p.data, reference[name])

    def test_aggregate_installs_result(self):
        model = MLP(16, 3, np.random.default_rng(0))
        server = Server(model, FedAvgAggregator())
        clients = [make_client(i, seed=i) for i in range(2)]
        updates = [c.upload() for c in clients]
        new_state = server.aggregate(updates)
        for name, p in model.named_parameters():
            np.testing.assert_allclose(p.data, new_state[name])

    def test_evaluate_without_test_set_raises(self):
        server = Server(MLP(16, 3, np.random.default_rng(0)), FedAvgAggregator())
        with pytest.raises(ValueError):
            server.evaluate_global()

"""Pairwise-masking secure aggregation: cancellation and dropout recovery."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.federated import (
    SecureAggregationRound,
    pairwise_seed,
    state_math,
)


def random_state(seed, shapes=(("w", (4, 3)), ("b", (3,)))):
    rng = np.random.default_rng(seed)
    return {name: rng.normal(size=shape) for name, shape in shapes}


def plain_fedavg(states, sizes):
    total = sum(sizes)
    return state_math.weighted_sum(states, [s / total for s in sizes])


class TestPairwiseSeed:
    def test_symmetric_in_ids(self):
        assert pairwise_seed(3, 7, round_index=0) == pairwise_seed(7, 3, round_index=0)

    def test_distinct_across_rounds_and_pairs(self):
        seeds = {
            pairwise_seed(0, 1, 0),
            pairwise_seed(0, 1, 1),
            pairwise_seed(0, 2, 0),
            pairwise_seed(1, 2, 0),
            pairwise_seed(0, 1, 0, salt=9),
        }
        assert len(seeds) == 5

    def test_self_pair_rejected(self):
        with pytest.raises(ValueError):
            pairwise_seed(4, 4, 0)


class TestRoundSetup:
    def test_validation(self):
        with pytest.raises(ValueError, match="unique"):
            SecureAggregationRound([0, 0, 1], 0)
        with pytest.raises(ValueError, match="at least 2"):
            SecureAggregationRound([0], 0)
        with pytest.raises(ValueError, match="mask_scale"):
            SecureAggregationRound([0, 1], 0, mask_scale=0.0)

    def test_non_participant_rejected_everywhere(self):
        secure_round = SecureAggregationRound([0, 1, 2], 0)
        state = random_state(0)
        with pytest.raises(KeyError):
            secure_round.net_mask(5, state)
        update = secure_round.masked_update(0, state, 10)
        update.client_id = 5
        with pytest.raises(KeyError):
            secure_round.receive(update)

    def test_double_submission_rejected(self):
        secure_round = SecureAggregationRound([0, 1], 0)
        update = secure_round.masked_update(0, random_state(0), 10)
        secure_round.receive(update)
        with pytest.raises(ValueError, match="already submitted"):
            secure_round.receive(update)

    def test_zero_samples_rejected(self):
        secure_round = SecureAggregationRound([0, 1], 0)
        with pytest.raises(ValueError, match="num_samples"):
            secure_round.masked_update(0, random_state(0), 0)


class TestMaskCancellation:
    def test_aggregate_equals_plain_fedavg(self):
        clients = [0, 1, 2, 3]
        sizes = [10, 20, 30, 40]
        states = [random_state(i) for i in clients]
        secure_round = SecureAggregationRound(clients, round_index=5)
        for cid, state, size in zip(clients, states, sizes):
            secure_round.receive(secure_round.masked_update(cid, state, size))
        recovered = secure_round.aggregate()
        expected = plain_fedavg(states, sizes)
        for key in expected:
            np.testing.assert_allclose(recovered[key], expected[key], atol=1e-9)

    def test_masked_upload_hides_the_true_state(self):
        """A single masked upload must be far from the true (scaled) state."""
        secure_round = SecureAggregationRound([0, 1], 0, mask_scale=10.0)
        state = random_state(3)
        update = secure_round.masked_update(0, state, 1)
        distance = state_math.l2_distance(update.masked_state, state)
        assert distance > 5.0  # masks at scale 10 dominate unit-scale weights

    def test_missing_upload_blocks_plain_aggregate(self):
        secure_round = SecureAggregationRound([0, 1, 2], 0)
        secure_round.receive(secure_round.masked_update(0, random_state(0), 10))
        assert secure_round.missing_ids == [1, 2]
        with pytest.raises(RuntimeError, match="missing uploads"):
            secure_round.aggregate()

    @given(
        num_clients=st.integers(2, 6),
        round_index=st.integers(0, 50),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_cancellation_exact_for_any_round(
        self, num_clients, round_index, seed
    ):
        clients = list(range(num_clients))
        rng = np.random.default_rng(seed)
        sizes = [int(s) for s in rng.integers(1, 50, size=num_clients)]
        states = [random_state(seed + i) for i in clients]
        secure_round = SecureAggregationRound(clients, round_index)
        for cid, state, size in zip(clients, states, sizes):
            secure_round.receive(secure_round.masked_update(cid, state, size))
        recovered = secure_round.aggregate()
        expected = plain_fedavg(states, sizes)
        for key in expected:
            np.testing.assert_allclose(recovered[key], expected[key], atol=1e-8)


class TestDropoutRecovery:
    def test_recovery_equals_survivor_fedavg(self):
        clients = [0, 1, 2, 3]
        sizes = [5, 10, 15, 20]
        states = [random_state(i + 100) for i in clients]
        secure_round = SecureAggregationRound(clients, round_index=2)
        # Client 2 drops before submitting.
        for cid in (0, 1, 3):
            secure_round.receive(
                secure_round.masked_update(cid, states[cid], sizes[cid])
            )
        recovered = secure_round.aggregate_with_dropouts()
        survivors = [0, 1, 3]
        expected = plain_fedavg(
            [states[c] for c in survivors], [sizes[c] for c in survivors]
        )
        for key in expected:
            np.testing.assert_allclose(recovered[key], expected[key], atol=1e-9)

    def test_multiple_dropouts_recovered(self):
        clients = [0, 1, 2, 3, 4]
        states = [random_state(i + 7) for i in clients]
        secure_round = SecureAggregationRound(clients, round_index=9)
        for cid in (1, 3, 4):
            secure_round.receive(secure_round.masked_update(cid, states[cid], 10))
        recovered = secure_round.aggregate_with_dropouts()
        expected = plain_fedavg([states[c] for c in (1, 3, 4)], [10, 10, 10])
        for key in expected:
            np.testing.assert_allclose(recovered[key], expected[key], atol=1e-9)

    def test_no_dropout_falls_back_to_plain(self):
        secure_round = SecureAggregationRound([0, 1], 0)
        states = [random_state(0), random_state(1)]
        for cid in (0, 1):
            secure_round.receive(secure_round.masked_update(cid, states[cid], 10))
        np.testing.assert_allclose(
            state_math.flatten(secure_round.aggregate_with_dropouts()),
            state_math.flatten(secure_round.aggregate()),
        )

    def test_too_few_survivors_rejected(self):
        secure_round = SecureAggregationRound([0, 1, 2], 0)
        secure_round.receive(secure_round.masked_update(0, random_state(0), 10))
        with pytest.raises(RuntimeError, match="at least 2 surviving"):
            secure_round.aggregate_with_dropouts()

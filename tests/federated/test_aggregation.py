"""FedAvg and adaptive-weight aggregation."""

import numpy as np
import pytest

from repro.federated import (
    AdaptiveWeightAggregator,
    ClientUpdate,
    FedAvgAggregator,
)
from repro.nn.models import MLP

from ..conftest import make_blobs


def update(seed, num_samples):
    rng = np.random.default_rng(seed)
    return ClientUpdate(
        state={"w": rng.normal(size=(2, 2)), "b": rng.normal(size=(2,))},
        num_samples=num_samples,
    )


class TestFedAvg:
    def test_weighted_by_size(self):
        a, b = update(0, 10), update(1, 30)
        out = FedAvgAggregator().aggregate([a, b])
        for key in out:
            expected = 0.25 * a.state[key] + 0.75 * b.state[key]
            np.testing.assert_allclose(out[key], expected)

    def test_single_client_identity(self):
        a = update(0, 5)
        out = FedAvgAggregator().aggregate([a])
        for key in out:
            np.testing.assert_allclose(out[key], a.state[key])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            FedAvgAggregator().aggregate([])

    def test_zero_samples_rejected(self):
        with pytest.raises(ValueError):
            FedAvgAggregator().aggregate([update(0, 0)])


class TestAdaptiveWeights:
    def _setup(self, seed=0):
        test_set = make_blobs(num_samples=40, num_classes=3, shape=(1, 4, 4), seed=seed)
        factory = lambda: MLP(16, 3, np.random.default_rng(42))
        return test_set, factory

    def test_better_model_gets_larger_weight(self):
        test_set, factory = self._setup()
        # Build one "good" model (trained) and one random model.
        from repro.nn import SGD, Tensor, losses
        good = factory()
        opt = SGD(good.parameters(), lr=0.3, momentum=0.9)
        for _ in range(60):
            opt.zero_grad()
            losses.cross_entropy(good(Tensor(test_set.images)), test_set.labels).backward()
            opt.step()
        bad = MLP(16, 3, np.random.default_rng(7))

        agg = AdaptiveWeightAggregator(test_set, factory)
        updates = [
            ClientUpdate(state=good.state_dict(), num_samples=10),
            ClientUpdate(state=bad.state_dict(), num_samples=10),
        ]
        weights = agg.compute_weights(updates)
        assert weights[0] > weights[1]

    def test_equal_models_get_equal_weights(self):
        test_set, factory = self._setup()
        model = factory()
        updates = [
            ClientUpdate(state=model.state_dict(), num_samples=10),
            ClientUpdate(state=model.state_dict(), num_samples=10),
        ]
        weights = AdaptiveWeightAggregator(test_set, factory).compute_weights(updates)
        np.testing.assert_allclose(weights[0], weights[1])

    def test_aggregate_is_convex_combination(self):
        test_set, factory = self._setup()
        a = MLP(16, 3, np.random.default_rng(1))
        b = MLP(16, 3, np.random.default_rng(2))
        agg = AdaptiveWeightAggregator(test_set, factory)
        out = agg.aggregate([
            ClientUpdate(state=a.state_dict(), num_samples=10),
            ClientUpdate(state=b.state_dict(), num_samples=10),
        ])
        weights = agg.last_weights / agg.last_weights.sum()
        for key in out:
            expected = weights[0] * a.state_dict()[key] + weights[1] * b.state_dict()[key]
            np.testing.assert_allclose(out[key], expected)

    def test_weight_formula_eq12(self):
        """W_c = exp(-(me_c - mean) / mean) exactly."""
        test_set, factory = self._setup()
        agg = AdaptiveWeightAggregator(test_set, factory)
        a = MLP(16, 3, np.random.default_rng(1))
        b = MLP(16, 3, np.random.default_rng(2))
        weights = agg.compute_weights([
            ClientUpdate(state=a.state_dict(), num_samples=1),
            ClientUpdate(state=b.state_dict(), num_samples=1),
        ])
        mses = agg.last_mse
        expected = np.exp(-(mses - mses.mean()) / mses.mean())
        np.testing.assert_allclose(weights, expected)

    def test_empty_test_set_rejected(self):
        _, factory = self._setup()
        import pytest
        from repro.data import ArrayDataset
        with pytest.raises(ValueError):
            AdaptiveWeightAggregator(
                ArrayDataset(np.zeros((0, 1, 4, 4)), np.zeros(0, dtype=int), 3),
                factory,
            )

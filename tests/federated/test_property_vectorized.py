"""Property test: the vectorize=True contract over sampled cohorts.

For any sampled cohort shape (member count, member dataset sizes),
train config (batch size, epochs, momentum, grad_clip), architecture,
and data dtype, turning ``vectorize=True`` on must NEVER raise and must
leave every observable bit-identical to the per-client twin.  When the
cohort is ineligible the round falls back per client **with a recorded
reason** — fallbacks are allowed, silent or crashing behaviour is not.
"""

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.data import FederatedDataset  # noqa: E402
from repro.data.dataset import ArrayDataset  # noqa: E402
from repro.federated import FedAvgAggregator, FederatedSimulation  # noqa: E402
from repro.nn.layers import Conv2d, Flatten, Linear, Sequential  # noqa: E402
from repro.nn.models import MLP  # noqa: E402
from repro.training import TrainConfig  # noqa: E402

from ..conftest import make_blobs  # noqa: E402


def mlp_factory():
    return MLP(16, 3, np.random.default_rng(42))


def conv_factory():
    rng = np.random.default_rng(42)
    return Sequential(
        Conv2d(1, 3, 3, rng, padding=1), Flatten(), Linear(48, 3, rng)
    )


FACTORIES = {"mlp": mlp_factory, "conv": conv_factory}

cohorts = st.fixed_dictionaries(
    {
        "sizes": st.lists(st.integers(8, 24), min_size=1, max_size=4),
        "batch_size": st.sampled_from([4, 8, 10]),
        "epochs": st.integers(1, 2),
        "momentum": st.sampled_from([0.0, 0.9]),
        "grad_clip": st.sampled_from([0.0, 1.0]),
        "arch": st.sampled_from(sorted(FACTORIES)),
        "dtype": st.sampled_from(["float64", "float32", "mixed"]),
    }
)


def build_sim(params, vectorize):
    sizes = params["sizes"]
    total = sum(sizes) + 24
    ds = make_blobs(num_samples=total, num_classes=3, shape=(1, 4, 4),
                    seed=3, separation=1.2, noise=1.0)
    clients, start = [], 0
    for index, size in enumerate(sizes):
        subset = ds.subset(np.arange(start, start + size))
        if params["dtype"] == "float32" or (
            params["dtype"] == "mixed" and index == 0
        ):
            subset = ArrayDataset(
                images=subset.images, labels=subset.labels,
                num_classes=subset.num_classes, name=subset.name,
                dtype=np.float32,
            )
        clients.append(subset)
        start += size
    fed = FederatedDataset(
        client_datasets=clients, test_set=ds.subset(np.arange(start, total))
    )
    factory = FACTORIES[params["arch"]]
    if params["dtype"] == "float32":
        base = factory
        factory = lambda: base().astype(np.float32)  # noqa: E731
    config = TrainConfig(
        epochs=params["epochs"], batch_size=params["batch_size"],
        learning_rate=0.1, momentum=params["momentum"],
        grad_clip=params["grad_clip"],
    )
    return FederatedSimulation(
        factory, fed, FedAvgAggregator(), config, seed=0, vectorize=vectorize,
    )


@settings(max_examples=25, deadline=None)
@given(cohorts)
def test_vectorize_is_parity_or_recorded_fallback(params):
    ref_sim = build_sim(params, vectorize=False)
    ref_history = ref_sim.run(1)

    vec_sim = build_sim(params, vectorize=True)  # must never raise
    history = vec_sim.run(1)

    assert history.accuracies == ref_history.accuracies
    ref_state = ref_sim.server.global_state
    state = vec_sim.server.global_state
    assert set(state) == set(ref_state)
    for key in state:
        assert state[key].dtype == ref_state[key].dtype
        np.testing.assert_array_equal(state[key], ref_state[key])
    for a, b in zip(ref_sim.clients, vec_sim.clients):
        assert a.rng.bit_generator.state == b.rng.bit_generator.state

    report = vec_sim.vectorize_report()
    assert report["requested"] is True
    if report["rounds_vectorized"] == 0:
        # Nothing fused this round: the fallback must be on the record.
        assert report["rounds_fallback"] == 1
        assert report["fallback_reasons"]
    else:
        assert sum(report["chunks"].values()) > 0

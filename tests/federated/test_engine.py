"""The event-driven round engine: determinism, folding, stragglers.

The engine's contract has three legs:

* the synchronous path is untouched — a simulation without an
  ``AsyncRoundConfig`` never builds an engine and its records carry only
  the historical fields;
* async runs are a pure function of (seed, latency model): identical
  across repetitions and across backends, because events are consumed in
  virtual-arrival order, never real completion order;
* the moving parts behave as specified — buffer folds, staleness
  discounts/discards, straggler drops with sampler resampling, history
  retention and metering of exactly what was folded.
"""

import numpy as np
import pytest

from repro.data import FederatedDataset
from repro.federated import (
    AsyncRoundConfig,
    BufferedAggregator,
    BufferedUpdate,
    ConstantLatency,
    CostMeter,
    FedAvgAggregator,
    FederatedSimulation,
    MeteredSimulationProxy,
    RoundHistoryStore,
    SeededLatency,
    StragglerAwareSampler,
    UniformSampler,
    attach_history,
    state_math,
)
from repro.nn.models import RegistryModelFactory
from repro.runtime import PoolBackend
from repro.training import TrainConfig

from ..conftest import make_blob_federation

FACTORY = RegistryModelFactory(name="mlp", num_classes=3, in_channels=1, image_size=4)


def build_sim(
    num_clients=5,
    seed=0,
    async_config=None,
    latency_model=None,
    sampler=None,
    backend=None,
    epochs=1,
):
    clients, test = make_blob_federation(
        num_clients, per_client=24, test_size=48, seed=seed
    )
    fed = FederatedDataset(client_datasets=clients, test_set=test)
    config = TrainConfig(epochs=epochs, batch_size=8, learning_rate=0.1)
    return FederatedSimulation(
        FACTORY, fed, FedAvgAggregator(), config, seed=seed,
        sampler=sampler, backend=backend,
        async_config=async_config, latency_model=latency_model,
    )


ASYNC = AsyncRoundConfig(buffer_size=3, max_staleness=2, straggler_timeout=2.5)
LATENCY = SeededLatency(low=0.5, high=1.5, seed=11, slow_every=3, slow_factor=4.0)


def async_sim(backend=None, seed=0):
    return build_sim(
        num_clients=6, seed=seed, async_config=ASYNC, latency_model=LATENCY,
        sampler=StragglerAwareSampler(UniformSampler(4)), backend=backend,
    )


def assert_histories_identical(a, b):
    for r1, r2 in zip(a.rounds, b.rounds):
        assert r1.global_loss == r2.global_loss
        assert r1.global_accuracy == r2.global_accuracy
        assert r1.applied_clients == r2.applied_clients
        assert r1.staleness == r2.staleness
        assert r1.dropped_clients == r2.dropped_clients
        assert r1.stale_discarded == r2.stale_discarded
        assert r1.sim_time == r2.sim_time


class TestSyncPathUntouched:
    def test_no_engine_without_async_config(self):
        sim = build_sim()
        sim.run(2)
        assert sim._engine is None
        with pytest.raises(ValueError, match="not configured for async"):
            sim.engine()

    def test_sync_records_have_default_async_fields(self):
        record = build_sim().run_round(0)
        assert record.applied_clients == []
        assert record.staleness == []
        assert record.dropped_clients == []
        assert record.stale_discarded == []
        assert record.sim_time == 0.0
        assert record.version == 0


class TestAsyncDeterminism:
    def test_identical_across_runs(self):
        assert_histories_identical(async_sim().run(4), async_sim().run(4))

    def test_identical_across_backends(self):
        serial_history = async_sim().run(4)
        pool = PoolBackend(max_workers=2)
        try:
            pool_history = async_sim(backend=pool).run(4)
        finally:
            pool.close()
        assert_histories_identical(serial_history, pool_history)

    def test_seed_changes_results(self):
        h0, h9 = async_sim(seed=0).run(3), async_sim(seed=9).run(3)
        assert [r.global_loss for r in h0.rounds] != [
            r.global_loss for r in h9.rounds
        ]


class TestFoldSemantics:
    def test_full_cohort_constant_latency_matches_sync_fedavg(self):
        """buffer=cohort + equal latencies + staleness 0 ≡ FedAvg."""
        sync = build_sim(seed=3)
        sync_record = sync.run_round(0)
        buffered = build_sim(
            seed=3, async_config=AsyncRoundConfig(buffer_size=0),
            latency_model=ConstantLatency(),
        )
        async_record = buffered.run_round(0)
        sync_state = sync.server.global_state
        async_state = buffered.server.global_state
        for key in sync_state:
            np.testing.assert_allclose(
                sync_state[key], async_state[key], rtol=1e-10, atol=1e-12
            )
        assert async_record.staleness == [0] * len(buffered.clients)

    def test_buffer_size_bounds_fold(self):
        sim = build_sim(
            num_clients=5,
            async_config=AsyncRoundConfig(buffer_size=2),
            latency_model=ConstantLatency(),
        )
        record = sim.run_round(0)
        assert len(record.applied_clients) == 2
        assert len(sim.engine().in_flight_clients) == 3

    def test_leftovers_fold_with_staleness(self):
        sim = build_sim(
            num_clients=5,
            async_config=AsyncRoundConfig(buffer_size=2, max_staleness=5),
            latency_model=ConstantLatency(),
        )
        sim.run_round(0)
        second = sim.run_round(1)
        # Round 1 folds leftovers from round 0's cohort: staleness 1.
        assert 1 in second.staleness

    def test_max_staleness_discards(self):
        # Client 2 is moderately slow: its update arrives a few folds late
        # (slow enough to exceed max_staleness, fast enough that its
        # arrival eventually precedes the fresh cohort's and gets popped).
        slow = SeededLatency(low=0.9, high=1.1, seed=0, slow_every=3,
                             slow_factor=3.5)
        sim = build_sim(
            num_clients=3,
            async_config=AsyncRoundConfig(buffer_size=2, max_staleness=1),
            latency_model=slow,
        )
        discarded = []
        for round_index in range(12):
            discarded += sim.run_round(round_index).stale_discarded
        assert 2 in discarded
        assert sim.engine().total_stale_discarded >= 1

    def test_version_advances_per_fold(self):
        sim = build_sim(async_config=AsyncRoundConfig(),
                        latency_model=ConstantLatency())
        history = sim.run(3)
        assert [r.version for r in history.rounds] == [1, 2, 3]

    def test_abandoned_inflight_cleared_after_run(self):
        sim = build_sim(
            num_clients=5, async_config=AsyncRoundConfig(buffer_size=2),
            latency_model=ConstantLatency(),
        )
        sim.run(2)
        assert sim.engine().in_flight_clients == []


class TestStragglers:
    def test_timeout_drops_and_resamples(self):
        sampler = StragglerAwareSampler(UniformSampler(4))
        # slow_every=2 → clients 1, 3, 5 always exceed the timeout.
        slow = SeededLatency(low=0.5, high=1.0, seed=2, slow_every=2,
                             slow_factor=10.0)
        sim = build_sim(
            num_clients=6, sampler=sampler,
            async_config=AsyncRoundConfig(buffer_size=2, straggler_timeout=2.0),
            latency_model=slow,
        )
        history = sim.run(4)
        dropped = [c for r in history.rounds for c in r.dropped_clients]
        assert dropped, "expected straggler drops"
        assert all(c in (1, 3, 5) for c in dropped)
        # Every drop is in the sampler's log, so drops are auditable.
        logged = [c for ids in sampler.dropped_log.values() for c in ids]
        assert sorted(logged) == sorted(dropped)

    def test_all_dropped_raises(self):
        slow = SeededLatency(low=5.0, high=6.0, seed=0)
        sim = build_sim(
            num_clients=3,
            async_config=AsyncRoundConfig(straggler_timeout=1.0),
            latency_model=slow,
        )
        with pytest.raises(RuntimeError, match="drops every"):
            sim.run_round(0)

    def test_overflow_retries_wait_without_growing_round(self):
        sampler = StragglerAwareSampler(UniformSampler(2))
        sampler.note_dropped([3, 4, 5], 0)
        rng = np.random.default_rng(0)
        second = sampler.sample(range(6), 1, rng)
        # The base sampler decided on a round of 2: retries take those
        # slots but never grow the round; the overflow retry waits.
        assert len(second) == 2
        assert second == [3, 4]
        assert sampler.pending_retries == [5]
        third = sampler.sample(range(6), 2, rng)
        assert 5 in third and len(third) == 2

    def test_straggler_aware_sampler_retries_next_round(self):
        sampler = StragglerAwareSampler(UniformSampler(2))
        rng = np.random.default_rng(0)
        first = sampler.sample(range(6), 0, rng)
        sampler.note_dropped([5], 0)
        assert sampler.pending_retries == [5]
        second = sampler.sample(range(6), 1, rng)
        assert 5 in second
        assert len(second) == 2
        assert sampler.pending_retries == []


class TestBufferedAggregator:
    def _update(self, client_id, delta_value, n=10, staleness=0):
        delta = {"w": np.full(3, float(delta_value))}
        return BufferedUpdate(
            client_id=client_id, delta=delta, num_samples=n,
            staleness=staleness, state=delta,
        )

    def test_zero_staleness_size_weighting_is_fedavg_delta(self):
        aggregator = BufferedAggregator(weighting="size")
        folded = aggregator.fold(
            {"w": np.zeros(3)},
            [self._update(0, 1.0, n=30), self._update(1, 4.0, n=10)],
        )
        np.testing.assert_allclose(folded["w"], np.full(3, 1.75))

    def test_staleness_downweights(self):
        aggregator = BufferedAggregator(weighting="uniform",
                                        staleness_exponent=0.5)
        fresh_only = aggregator.fold(
            {"w": np.zeros(3)}, [self._update(0, 1.0)]
        )
        with_stale = aggregator.fold(
            {"w": np.zeros(3)},
            [self._update(0, 1.0), self._update(1, 0.0, staleness=8)],
        )
        # The stale zero-delta pulls the fold toward zero, but less than a
        # fresh zero-delta would (weight 1/3 instead of 1/2).
        assert 0.5 < float(with_stale["w"][0]) < float(fresh_only["w"][0])

    def test_staleness_weight_monotonic(self):
        aggregator = BufferedAggregator()
        weights = [aggregator.staleness_weight(s) for s in range(5)]
        assert weights == sorted(weights, reverse=True)
        assert weights[0] == 1.0

    def test_exponent_zero_disables_discount(self):
        aggregator = BufferedAggregator(staleness_exponent=0.0)
        assert aggregator.staleness_weight(100) == 1.0

    def test_empty_fold_rejected(self):
        with pytest.raises(ValueError, match="no buffered updates"):
            BufferedAggregator().fold({"w": np.zeros(2)}, [])

    def test_bad_config_rejected(self):
        with pytest.raises(ValueError):
            BufferedAggregator(weighting="magic")
        with pytest.raises(ValueError):
            BufferedAggregator(staleness_exponent=-1.0)
        with pytest.raises(ValueError):
            AsyncRoundConfig(buffer_size=-1)
        with pytest.raises(ValueError):
            AsyncRoundConfig(straggler_timeout=-0.5)


class TestUnsupportedAggregators:
    def test_adaptive_aggregator_rejected_in_async_mode(self):
        from repro.federated import AdaptiveWeightAggregator

        clients, test = make_blob_federation(3, per_client=24, test_size=48)
        from repro.data import FederatedDataset as FD

        fed = FD(client_datasets=clients, test_set=test)
        sim = FederatedSimulation(
            FACTORY, fed, AdaptiveWeightAggregator(test, FACTORY),
            TrainConfig(epochs=1, batch_size=8, learning_rate=0.1),
            async_config=AsyncRoundConfig(), latency_model=ConstantLatency(),
        )
        with pytest.raises(ValueError, match="FedAvg-family"):
            sim.run_round(0)


class TestRetentionAndMetering:
    def test_history_records_folded_clients_only(self):
        sim = build_sim(
            num_clients=5, async_config=AsyncRoundConfig(buffer_size=2),
            latency_model=ConstantLatency(),
        )
        store = attach_history(sim, RoundHistoryStore())
        sim.run_round(0)
        snapshot = store.snapshot_at(0)
        assert len(snapshot.client_ids) == 2

    def test_history_replay_matches_folded_delta(self):
        """The retained uploads reconstruct exactly what was folded."""
        sim = build_sim(
            num_clients=4, async_config=AsyncRoundConfig(),
            latency_model=ConstantLatency(),
        )
        store = attach_history(sim, RoundHistoryStore())
        sim.run_round(0)
        snapshot = store.snapshot_at(0)
        deltas = [
            snapshot.client_update(cid) for cid in snapshot.client_ids
        ]
        sizes = [snapshot.client_sizes[cid] for cid in snapshot.client_ids]
        weights = [s / sum(sizes) for s in sizes]
        reconstructed = state_math.add(
            snapshot.global_before, state_math.weighted_sum(deltas, weights)
        )
        installed = sim.server.global_state
        for key in installed:
            np.testing.assert_allclose(reconstructed[key], installed[key])

    def test_metering_counts_events_not_cohort(self):
        sim = build_sim(
            num_clients=5, async_config=AsyncRoundConfig(buffer_size=2),
            latency_model=ConstantLatency(),
        )
        metered = MeteredSimulationProxy(sim, CostMeter())
        metered.run_round(0)
        meter = metered.meter
        from repro.federated import state_bytes

        per_state = state_bytes(sim.server.global_state)
        assert meter.download_bytes == 5 * per_state  # 5 dispatches
        assert meter.upload_bytes == 2 * per_state  # 2 folded uploads
        assert meter.rounds == 1

    def test_provenance_facts(self):
        sim = async_sim()
        sim.run(3)
        provenance = sim.engine().provenance()
        assert provenance["engine"] == "async"
        assert provenance["folds"] == 3
        assert provenance["latency_model"] == "SeededLatency"
        assert provenance["dispatched"] >= 3

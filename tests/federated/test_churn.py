"""Client join/leave dynamics."""

import numpy as np
import pytest

from repro.data import FederatedDataset
from repro.federated import (
    ChurnEvent,
    ChurnSchedule,
    ChurnSimulation,
    FedAvgAggregator,
    FederatedSimulation,
)
from repro.nn.models import MLP
from repro.training import TrainConfig

from ..conftest import make_blob_federation


def build_sim(num_clients=4, seed=0):
    clients, test = make_blob_federation(num_clients, per_client=25, test_size=50,
                                         seed=seed)
    fed = FederatedDataset(client_datasets=clients, test_set=test)
    return FederatedSimulation(
        lambda: MLP(16, 3, np.random.default_rng(42)),
        fed, FedAvgAggregator(),
        TrainConfig(epochs=1, batch_size=10, learning_rate=0.1),
        seed=seed,
    )


class TestScheduleValidation:
    def test_event_validation(self):
        with pytest.raises(ValueError):
            ChurnEvent(0, 1, "vanish")
        with pytest.raises(ValueError):
            ChurnEvent(-1, 1, "join")

    def test_schedule_needs_initial_clients(self):
        with pytest.raises(ValueError):
            ChurnSchedule(initial_clients=[])

    def test_unknown_client_rejected(self):
        sim = build_sim(num_clients=2)
        schedule = ChurnSchedule(initial_clients=[0, 1]).add(1, 9, "join")
        with pytest.raises(ValueError):
            ChurnSimulation(sim, schedule)

    def test_events_at(self):
        schedule = ChurnSchedule(initial_clients=[0])
        schedule.add(2, 1, "join").add(2, 2, "join").add(3, 1, "leave")
        assert len(schedule.events_at(2)) == 2
        assert len(schedule.events_at(0)) == 0


class TestChurnRuns:
    def test_join_expands_participation(self):
        sim = build_sim(num_clients=3)
        schedule = ChurnSchedule(initial_clients=[0]).add(1, 1, "join").add(2, 2, "join")
        churn = ChurnSimulation(sim, schedule)
        churn.run(3)
        assert churn.activity_log[0] == [0]
        assert churn.activity_log[1] == [0, 1]
        assert churn.activity_log[2] == [0, 1, 2]

    def test_leave_shrinks_participation(self):
        sim = build_sim(num_clients=3)
        schedule = ChurnSchedule(initial_clients=[0, 1, 2]).add(1, 2, "leave")
        churn = ChurnSimulation(sim, schedule)
        churn.run(2)
        assert churn.activity_log[0] == [0, 1, 2]
        assert churn.activity_log[1] == [0, 1]
        assert 2 in churn.departed

    def test_departed_client_cannot_rejoin(self):
        sim = build_sim(num_clients=2)
        schedule = (
            ChurnSchedule(initial_clients=[0, 1])
            .add(1, 1, "leave")
            .add(2, 1, "join")
        )
        churn = ChurnSimulation(sim, schedule)
        with pytest.raises(ValueError):
            churn.run(3)

    def test_all_leave_raises(self):
        sim = build_sim(num_clients=2)
        schedule = ChurnSchedule(initial_clients=[0]).add(1, 0, "leave")
        churn = ChurnSimulation(sim, schedule)
        with pytest.raises(RuntimeError):
            churn.run(2)

    def test_history_recorded(self):
        sim = build_sim()
        churn = ChurnSimulation(sim, ChurnSchedule(initial_clients=[0, 1, 2, 3]))
        history = churn.run(3)
        assert len(history) == 3
        assert all(0 <= r.global_accuracy <= 1 for r in history.rounds)

    def test_training_still_learns_under_churn(self):
        sim = build_sim(num_clients=4, seed=3)
        schedule = (
            ChurnSchedule(initial_clients=[0, 1])
            .add(2, 2, "join")
            .add(3, 0, "leave")
        )
        churn = ChurnSimulation(sim, schedule)
        history = churn.run(6)
        assert history.final_accuracy >= history.accuracies[0]
        assert history.final_accuracy > 0.6

    def test_invalid_rounds(self):
        sim = build_sim()
        churn = ChurnSimulation(sim, ChurnSchedule(initial_clients=[0]))
        with pytest.raises(ValueError):
            churn.run(0)

"""Gaussian mechanism, clipping and zCDP accountant."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.privacy import (
    GaussianMechanism,
    PrivacyAccountant,
    add_gaussian_noise,
    clip_state_by_l2,
    clip_vector_by_l2,
    gaussian_sigma,
    rho_to_epsilon,
    zcdp_rho,
)


def state_norm(state):
    return math.sqrt(sum(float((v ** 2).sum()) for v in state.values()))


class TestClipping:
    def test_vector_below_norm_unchanged(self):
        v = np.array([3.0, 4.0])  # norm 5
        np.testing.assert_allclose(clip_vector_by_l2(v, 10.0), v)

    def test_vector_above_norm_scaled(self):
        v = np.array([3.0, 4.0])
        clipped = clip_vector_by_l2(v, 1.0)
        assert np.linalg.norm(clipped) == pytest.approx(1.0)
        # Direction preserved.
        np.testing.assert_allclose(clipped / np.linalg.norm(clipped), v / 5.0)

    def test_zero_vector_stays_zero(self):
        v = np.zeros(4)
        np.testing.assert_allclose(clip_vector_by_l2(v, 1.0), v)

    def test_state_clipped_as_one_vector(self):
        state = {"a": np.array([3.0]), "b": np.array([4.0])}
        clipped = clip_state_by_l2(state, 2.5)
        assert state_norm(clipped) == pytest.approx(2.5)
        # Per-key ratio preserved (global, not per-tensor, clipping).
        assert clipped["a"][0] / clipped["b"][0] == pytest.approx(3.0 / 4.0)

    def test_returns_copies(self):
        state = {"a": np.array([1.0])}
        clipped = clip_state_by_l2(state, 10.0)
        clipped["a"][0] = 99.0
        assert state["a"][0] == 1.0

    def test_invalid_norm_rejected(self):
        with pytest.raises(ValueError):
            clip_vector_by_l2(np.ones(2), 0.0)
        with pytest.raises(ValueError):
            clip_state_by_l2({"a": np.ones(2)}, -1.0)

    @given(
        values=st.lists(
            st.floats(-1e3, 1e3, allow_nan=False), min_size=1, max_size=20
        ),
        max_norm=st.floats(0.01, 100.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_clip_never_exceeds_bound(self, values, max_norm):
        v = np.asarray(values, dtype=np.float64)
        clipped = clip_vector_by_l2(v, max_norm)
        assert np.linalg.norm(clipped) <= max_norm * (1 + 1e-9)


class TestGaussianMechanism:
    def test_sigma_formula(self):
        sigma = gaussian_sigma(epsilon=1.0, delta=1e-5, sensitivity=2.0)
        assert sigma == pytest.approx(2.0 * math.sqrt(2 * math.log(1.25e5)))

    def test_sigma_validation(self):
        with pytest.raises(ValueError):
            gaussian_sigma(0.0, 1e-5, 1.0)
        with pytest.raises(ValueError):
            gaussian_sigma(1.0, 0.0, 1.0)
        with pytest.raises(ValueError):
            gaussian_sigma(1.0, 1e-5, -1.0)

    def test_noise_changes_state_and_zero_sigma_is_identity(self, rng):
        state = {"w": np.ones((4, 4)), "b": np.zeros(4)}
        noisy = add_gaussian_noise(state, 0.5, rng)
        assert not np.allclose(noisy["w"], state["w"])
        clean = add_gaussian_noise(state, 0.0, rng)
        np.testing.assert_allclose(clean["w"], state["w"])
        clean["w"][0, 0] = 9.0  # copy, not alias
        assert state["w"][0, 0] == 1.0

    def test_noise_statistics(self):
        rng = np.random.default_rng(7)
        state = {"w": np.zeros(200_00)}
        noisy = add_gaussian_noise(state, 2.0, rng)
        assert noisy["w"].std() == pytest.approx(2.0, rel=0.05)
        assert abs(noisy["w"].mean()) < 0.1

    def test_for_budget_release_respects_clip(self, rng):
        mech = GaussianMechanism.for_budget(epsilon=1.0, delta=1e-5, max_norm=1.0)
        big = {"w": np.full(10, 100.0)}
        released = mech.release(big, rng)
        # Clipped to norm 1, then noise at sigma ~= 4.8: released norm
        # should be far below the unclipped norm of ~316.
        assert state_norm(released) < 100.0

    def test_mechanism_validation(self):
        with pytest.raises(ValueError):
            GaussianMechanism(max_norm=0.0, sigma=1.0)
        with pytest.raises(ValueError):
            GaussianMechanism(max_norm=1.0, sigma=-1.0)


class TestAccounting:
    def test_zcdp_rho_formula(self):
        assert zcdp_rho(sensitivity=2.0, sigma=4.0) == pytest.approx(4.0 / 32.0)

    def test_rho_to_epsilon_monotone_in_rho(self):
        eps = [rho_to_epsilon(rho, 1e-5) for rho in (0.01, 0.1, 1.0)]
        assert eps[0] < eps[1] < eps[2]

    def test_accountant_composes_additively(self):
        accountant = PrivacyAccountant(delta=1e-6)
        accountant.spend(0.1)
        accountant.spend(0.2)
        assert accountant.total_rho == pytest.approx(0.3)
        assert accountant.num_releases == 2
        assert accountant.epsilon() == pytest.approx(rho_to_epsilon(0.3, 1e-6))

    def test_accountant_validation(self):
        with pytest.raises(ValueError):
            PrivacyAccountant(delta=0.0)
        accountant = PrivacyAccountant(delta=1e-5)
        with pytest.raises(ValueError):
            accountant.spend(-0.1)

    @given(
        rhos=st.lists(st.floats(1e-6, 10.0), min_size=1, max_size=10),
        delta=st.floats(1e-10, 0.1),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_composition_never_cheaper_than_single(self, rhos, delta):
        """Composing k releases can never yield a smaller ε than any one."""
        accountant = PrivacyAccountant(delta=delta)
        for rho in rhos:
            accountant.spend(rho)
        assert accountant.epsilon() >= max(
            rho_to_epsilon(rho, delta) for rho in rhos
        ) - 1e-12

    def test_gaussian_mechanism_budget_roundtrip(self):
        """σ from (ε,δ) then accounted back through zCDP lands near ε.

        The two analyses (classic Gaussian-mechanism theorem vs zCDP
        conversion) are not identical but agree to within a few percent at
        small ε — a sanity check that both formulas are implemented right.
        """
        epsilon, delta = 0.8, 1e-6
        mech = GaussianMechanism.for_budget(epsilon, delta, max_norm=1.0)
        roundtrip = rho_to_epsilon(mech.rho, delta)
        assert roundtrip == pytest.approx(epsilon, rel=0.05)

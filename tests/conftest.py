"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import ArrayDataset


@pytest.fixture
def rng():
    """Deterministic generator, fresh per test."""
    return np.random.default_rng(12345)


def make_blobs(
    num_samples: int = 60,
    num_classes: int = 3,
    shape=(1, 8, 8),
    separation: float = 3.0,
    noise: float = 0.5,
    seed: int = 0,
    name: str = "blobs",
) -> ArrayDataset:
    """Tiny learnable image dataset: per-class mean + Gaussian noise.

    Small enough that a few SGD epochs reach high accuracy, which keeps
    behavioural tests fast.
    """
    rng = np.random.default_rng(seed)
    means = rng.normal(0.0, separation, size=(num_classes,) + tuple(shape))
    labels = np.arange(num_samples) % num_classes
    images = means[labels] + rng.normal(0.0, noise, size=(num_samples,) + tuple(shape))
    return ArrayDataset(images=images, labels=labels, num_classes=num_classes, name=name)


def make_blob_federation(num_clients: int, per_client: int, test_size: int,
                         num_classes: int = 3, shape=(1, 4, 4), seed: int = 0,
                         separation: float = 1.2, noise: float = 1.0):
    """Clients + test set drawn from ONE blob distribution (same class
    means), so federated training generalises to the test split. Defaults
    are tuned so a few FL rounds land in the 0.7–0.95 accuracy band (not
    saturated — round-over-round improvement stays observable)."""
    total = num_clients * per_client + test_size
    ds = make_blobs(num_samples=total, num_classes=num_classes, shape=shape,
                    seed=seed, separation=separation, noise=noise)
    order = np.random.default_rng(seed + 1).permutation(total)
    clients = [
        ds.subset(order[i * per_client : (i + 1) * per_client])
        for i in range(num_clients)
    ]
    test = ds.subset(order[num_clients * per_client :])
    return clients, test


def numeric_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar-valued ``fn`` at ``x``."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        upper = fn(x)
        flat[i] = original - eps
        lower = fn(x)
        flat[i] = original
        grad_flat[i] = (upper - lower) / (2 * eps)
    return grad

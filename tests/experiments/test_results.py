"""ExperimentResult table/series rendering."""

import pytest

from repro.experiments import ExperimentResult


class TestRows:
    def test_add_and_render(self):
        result = ExperimentResult("T1", "demo", columns=("a", "b"))
        result.add_row(a=1, b=2.5)
        text = result.render()
        assert "T1" in text and "demo" in text
        assert "2.50" in text

    def test_missing_column_rejected(self):
        result = ExperimentResult("T1", "demo", columns=("a", "b"))
        with pytest.raises(ValueError):
            result.add_row(a=1)

    def test_extra_keys_allowed(self):
        result = ExperimentResult("T1", "demo", columns=("a",))
        result.add_row(a=1, hidden="x")
        assert result.rows[0]["hidden"] == "x"


class TestSeries:
    def test_series_rendered(self):
        result = ExperimentResult("F1", "figure")
        result.add_series("ours", [0.1, 0.20001])
        text = result.render()
        assert "ours" in text
        assert "0.100" in text and "0.200" in text

    def test_series_coerced_to_float(self):
        result = ExperimentResult("F1", "figure")
        result.add_series("x", [1, 2])
        assert result.series["x"] == [1.0, 2.0]


class TestPersistence:
    def test_json_roundtrip(self, tmp_path):
        result = ExperimentResult("T1", "demo", columns=("a", "b"),
                                  notes="reduced scale")
        result.add_row(a=1, b=2.5)
        result.add_series("curve", [0.1, 0.2])
        path = str(tmp_path / "out" / "result.json")
        result.save_json(path)
        loaded = ExperimentResult.load_json(path)
        assert loaded.experiment_id == "T1"
        assert loaded.rows == [{"a": 1, "b": 2.5}]
        assert loaded.series == {"curve": [0.1, 0.2]}
        assert loaded.notes == "reduced scale"

    def test_to_dict_keys(self):
        d = ExperimentResult("X", "y").to_dict()
        assert set(d) == {"experiment_id", "title", "columns", "rows",
                          "series", "notes"}


class TestNotes:
    def test_notes_rendered(self):
        result = ExperimentResult("F1", "figure", notes="reduced scale")
        assert "reduced scale" in result.render()

    def test_print_smoke(self, capsys):
        ExperimentResult("F1", "fig").print()
        assert "F1" in capsys.readouterr().out

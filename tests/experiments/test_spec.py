"""The declarative scenario/experiment spec layer."""

import json
import subprocess
import sys

import numpy as np
import pytest

from repro.data import LabelFlipAttack
from repro.data.dataset import SharedArrayDataset
from repro.experiments import SMOKE
from repro.experiments.spec import (
    AttackSpec,
    DatasetSpec,
    DeletionSpec,
    ExperimentSpec,
    FederationSpec,
    PartitionSpec,
    SCENARIO_PRESETS,
    ScenarioSpec,
    build_scenario,
    get_scenario,
)

TINY = SMOKE.with_overrides(
    train_size=120, test_size=60, pretrain_rounds=1, local_epochs=1,
    unlearn_rounds=1, batch_size=20,
)


def _full_spec() -> ScenarioSpec:
    return ScenarioSpec(
        dataset=DatasetSpec(name="fmnist", train_size=200, test_size=80),
        partition=PartitionSpec(strategy="label_skewed", options={"alpha": 0.3}),
        attack=AttackSpec(kind="backdoor", trigger_size=5, trigger_value=4.0,
                          target_label=2),
        deletion=DeletionSpec(selector="attacked", rate=0.04, client_id=1),
        federation=FederationSpec(num_clients=4, aggregator="fedavg_uniform",
                                  share_datasets=False),
        model="lenet5",
    )


class TestRoundTrip:
    def test_scenario_json_round_trip(self):
        spec = _full_spec()
        payload = json.loads(json.dumps(spec.to_dict()))
        assert ScenarioSpec.from_dict(payload) == spec

    def test_default_scenario_round_trip(self):
        spec = ScenarioSpec()
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_experiment_json_round_trip(self):
        exp = ExperimentSpec(
            experiment_id="Fig X",
            title="t",
            kind="rate_table",
            scenario=_full_spec(),
            methods=("ours", "b1"),
            params={"rates": (0.02, 0.06), "variants": {"a": {"x": 1}}},
        )
        payload = json.loads(json.dumps(exp.to_dict()))
        restored = ExperimentSpec.from_dict(payload)
        assert restored == exp  # tuples canonicalised to lists on both sides
        assert restored.hash() == exp.hash()

    def test_hash_changes_with_content(self):
        spec = _full_spec()
        assert spec.hash() != spec.with_overrides(**{"deletion.rate": 0.08}).hash()

    def test_hash_stable_across_processes(self):
        """The spec hash must not depend on process state (PYTHONHASHSEED)."""
        spec = _full_spec()
        script = (
            "from repro.experiments.spec import ScenarioSpec;"
            "import json, sys;"
            "print(ScenarioSpec.from_dict(json.loads(sys.argv[1])).hash())"
        )
        import os
        import repro

        src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        for seed in ("0", "42"):
            out = subprocess.run(
                [sys.executable, "-c", script, json.dumps(spec.to_dict())],
                capture_output=True, text=True, check=True,
                env={**os.environ, "PYTHONPATH": src_dir, "PYTHONHASHSEED": seed},
            )
            assert out.stdout.strip() == spec.hash()


class TestOverrides:
    def test_dotted_override(self):
        spec = _full_spec().with_overrides(
            **{"deletion.rate": 0.10, "federation.num_clients": 7}
        )
        assert spec.deletion.rate == 0.10
        assert spec.federation.num_clients == 7
        assert spec.attack.trigger_size == 5  # untouched

    def test_top_level_override(self):
        assert _full_spec().with_overrides(model="resnet8_slim").model == "resnet8_slim"

    def test_unknown_path_rejected(self):
        with pytest.raises(ValueError, match="unknown spec path"):
            _full_spec().with_overrides(**{"deletion.ratee": 0.1})
        with pytest.raises(ValueError, match="unknown spec path"):
            _full_spec().with_overrides(**{"nope.rate": 0.1})


class TestValidation:
    def test_unknown_attack_kind(self):
        with pytest.raises(ValueError):
            AttackSpec(kind="gradient_inversion")

    def test_unknown_selector(self):
        with pytest.raises(ValueError):
            DeletionSpec(selector="everything")

    def test_bad_rate(self):
        with pytest.raises(ValueError):
            DeletionSpec(rate=1.5)

    def test_attack_with_random_selector_rejected(self):
        with pytest.raises(ValueError, match="random"):
            ScenarioSpec(
                attack=AttackSpec(kind="backdoor"),
                deletion=DeletionSpec(selector="random"),
            )


class TestBuilder:
    def test_unknown_dataset(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            build_scenario(
                ScenarioSpec(dataset=DatasetSpec(name="svhn")), TINY
            )

    def test_label_flip_scenario_builds(self):
        scenario = build_scenario(get_scenario("label_flip"), TINY, seed=1)
        assert isinstance(scenario.attack, LabelFlipAttack)
        client0 = scenario.sim.clients[0].dataset
        assert (
            client0.labels[scenario.poison_indices]
            == scenario.attack.target_label
        ).all()
        metrics = scenario.evaluate(scenario.sim.global_model())
        assert set(metrics) == {"acc", "backdoor"}

    def test_clean_deletion_scenario_builds(self):
        scenario = build_scenario(get_scenario("clean_deletion"), TINY, seed=1)
        assert scenario.attack is None
        assert len(scenario.poison_indices) == round(0.06 * TINY.train_size)
        metrics = scenario.evaluate(scenario.sim.global_model())
        assert set(metrics) == {"acc"}

    def test_class_deletion_scenario_builds(self):
        scenario = build_scenario(get_scenario("class_deletion"), TINY, seed=1)
        client0 = scenario.sim.clients[0].dataset
        deleted_labels = client0.labels[scenario.poison_indices]
        assert len(set(deleted_labels.tolist())) == 1  # exactly one class
        # every local sample of that class is covered
        target = deleted_labels[0]
        assert len(scenario.poison_indices) == int((client0.labels == target).sum())

    def test_deletion_requests_shape(self):
        scenario = build_scenario(get_scenario("backdoor"), TINY, seed=1)
        (request,) = scenario.deletion_requests()
        assert request.client_id == 0
        np.testing.assert_array_equal(
            np.asarray(request.indices), scenario.poison_indices
        )

    def test_share_flag_respected(self):
        spec = get_scenario("backdoor").with_overrides(
            **{"federation.share_datasets": True}
        )
        scenario = build_scenario(spec, TINY, seed=2)
        assert isinstance(scenario.sim.clients[0].dataset, SharedArrayDataset)

    def test_share_auto_follows_backend(self):
        scenario = build_scenario(get_scenario("backdoor"), TINY, seed=2,
                                  backend="pool:2")
        assert isinstance(scenario.sim.clients[0].dataset, SharedArrayDataset)
        serial = build_scenario(get_scenario("backdoor"), TINY, seed=2)
        assert not isinstance(serial.sim.clients[0].dataset, SharedArrayDataset)

    def test_all_presets_build(self):
        for name in SCENARIO_PRESETS:
            scenario = build_scenario(get_scenario(name), TINY, seed=3)
            assert len(scenario.poison_indices) > 0

    def test_unknown_preset(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            get_scenario("nope")

"""Spec-addressed result store: dedupe, matrix resume, atomic writes."""

import json
import os

import pytest

from repro.experiments import SMOKE, ExperimentResult, ResultStore, runner
from repro.experiments.spec import ExperimentSpec, get_scenario

MICRO = SMOKE.with_overrides(
    train_size=150, test_size=60, pretrain_rounds=1, local_epochs=1,
    unlearn_rounds=1, batch_size=30, deletion_rates=(0.06,),
)


def sample_result(spec_hash="abc123def456"):
    return ExperimentResult(
        experiment_id="t",
        title="t",
        columns=("x", "y"),
        rows=[{"x": 1, "y": 2.5}, {"x": 2, "y": 3.5}],
        spec_hash=spec_hash,
    )


def rate_table_spec():
    return ExperimentSpec(
        experiment_id="store-dedupe",
        title="rate table",
        kind="rate_table",
        scenario=get_scenario("label_flip"),
        methods=("ours",),
        params={"rates": [0.06]},
    )


def matrix_spec():
    return ExperimentSpec(
        experiment_id="store-resume",
        title="matrix",
        kind="matrix",
        scenario=get_scenario("backdoor"),
        methods=("ours",),
        params={"sweeps": {"deletion.rate": [0.04, 0.08]}},
    )


class TestStorePrimitives:
    def test_key_addresses_the_triple(self):
        assert ResultStore.key("abc", "smoke", 3) == "abc-smoke-s3"
        with pytest.raises(ValueError, match="spec hash"):
            ResultStore.key("", "smoke", 0)

    def test_put_get_roundtrip(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        assert store.get("abc123def456", "smoke", 0) is None
        assert store.misses == 1
        path = store.put(sample_result(), "smoke", 0)
        assert os.path.exists(path)
        loaded = store.get("abc123def456", "smoke", 0)
        assert store.hits == 1
        assert loaded.rows == sample_result().rows
        assert loaded.spec_hash == "abc123def456"
        assert store.keys() == ["abc123def456-smoke-s0"]
        assert len(store) == 1
        assert store.report() == {"hits": 1, "misses": 1}

    def test_distinct_scales_and_seeds_do_not_collide(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        store.put(sample_result(), "smoke", 0)
        store.put(sample_result(), "smoke", 1)
        store.put(sample_result(), "small", 0)
        assert len(store) == 3

    def test_failed_put_leaves_old_entry_and_no_tmp(self, tmp_path, monkeypatch):
        store = ResultStore(str(tmp_path / "store"))
        store.put(sample_result(), "smoke", 0)
        monkeypatch.setattr(
            json, "dump", lambda *a, **k: (_ for _ in ()).throw(OSError("disk"))
        )
        with pytest.raises(OSError, match="disk"):
            store.put(sample_result(), "smoke", 0)
        monkeypatch.undo()
        # The old entry survives and no temp litter remains.
        assert store.get("abc123def456", "smoke", 0) is not None
        assert not [
            name
            for name in os.listdir(store.directory)
            if not name.endswith(".json")
        ]


class TestRunSpecDedupe:
    def test_second_run_is_a_store_hit_with_identical_rows(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        exp = rate_table_spec()
        first = runner.run_spec(exp, MICRO, seed=0, store=store)
        assert first.runtime.get("result_store") != "hit"
        second = runner.run_spec(exp, MICRO, seed=0, store=store)
        assert second.runtime["result_store"] == "hit"
        assert second.rows == first.rows
        assert store.hits == 1

    def test_different_seed_misses(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        exp = rate_table_spec()
        runner.run_spec(exp, MICRO, seed=0, store=store)
        fresh = runner.run_spec(exp, MICRO, seed=1, store=store)
        assert fresh.runtime.get("result_store") != "hit"


class TestRunMatrixResume:
    def test_cells_checkpoint_and_resume(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        exp = matrix_spec()
        first = runner.run_matrix(exp, MICRO, seed=0, store=store)
        assert first.runtime["result_store"] == {
            "cells_resumed": 0,
            "cells_run": 2,
        }
        # A second process pointing at the same directory resumes every
        # cell without recomputing any of them.
        resumed = runner.run_matrix(
            exp, MICRO, seed=0, store=ResultStore(str(tmp_path / "store"))
        )
        assert resumed.runtime["result_store"] == {
            "cells_resumed": 2,
            "cells_run": 0,
        }
        assert resumed.rows == first.rows

    def test_partial_store_reruns_only_missing_cells(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        exp = matrix_spec()
        first = runner.run_matrix(exp, MICRO, seed=0, store=store)
        # Simulate an interrupted matrix: drop one cell's checkpoint.
        victim = sorted(
            name
            for name in os.listdir(store.directory)
            if name.endswith(".json")
        )[0]
        os.unlink(os.path.join(store.directory, victim))
        resumed = runner.run_matrix(
            exp, MICRO, seed=0, store=ResultStore(str(tmp_path / "store"))
        )
        assert resumed.runtime["result_store"] == {
            "cells_resumed": 1,
            "cells_run": 1,
        }
        # The re-run cell's science is identical; only wall clock moves.
        def science(rows):
            return [
                {k: v for k, v in row.items() if k != "wall_s"} for row in rows
            ]

        assert science(resumed.rows) == science(first.rows)

    def test_whole_matrix_dedupes_through_run_spec(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        exp = matrix_spec()
        first = runner.run_spec(exp, MICRO, seed=0, store=store)
        second = runner.run_spec(exp, MICRO, seed=0, store=store)
        assert second.runtime["result_store"] == "hit"
        assert second.rows == first.rows

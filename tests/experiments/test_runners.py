"""Every table/figure runner executes end-to-end at micro scale.

These tests verify the *harness* (wiring, columns, series), not the
paper-shape claims — those are exercised at larger scale by benchmarks/
and the integration tests.
"""

import pytest

import repro.experiments as ex
from repro.experiments import SMOKE

MICRO = SMOKE.with_overrides(
    train_size=150, test_size=60, pretrain_rounds=1, local_epochs=1,
    unlearn_rounds=1, batch_size=30, deletion_rates=(0.06,),
    shard_counts=(1, 2), client_counts=(3,),
)


class TestFig4:
    def test_runs_and_has_series(self):
        result = ex.fig4_retraining.run("mnist", MICRO, num_rounds=2)
        assert set(result.series) == {"ours", "b1", "b2"}
        assert all(len(v) == 2 for v in result.series.values())
        assert len(result.rows) == 3

    def test_unknown_dataset(self):
        with pytest.raises(ValueError):
            ex.fig4_retraining.run("svhn", MICRO)


class TestFig5Tables:
    def test_runs_one_rate(self):
        result = ex.fig5_backdoor.run("mnist", MICRO)
        assert len(result.rows) == 1
        row = result.rows[0]
        assert row["rate"] == "6%"
        for column in ("origin_acc", "ours_bd", "b1_acc", "b3_bd"):
            assert 0 <= row[column] <= 100
        assert "fig5_origin_backdoor" in result.series

    def test_unknown_dataset(self):
        with pytest.raises(ValueError):
            ex.fig5_backdoor.run("svhn", MICRO)


class TestTab7to9:
    def test_columns(self):
        result = ex.tab7_9_divergence.run("mnist", MICRO)
        row = result.rows[0]
        for column in ("b3_jsd", "b3_l2", "b3_t", "ours_jsd", "ours_l2", "ours_t"):
            assert row[column] >= 0

    def test_unknown_dataset(self):
        with pytest.raises(ValueError):
            ex.tab7_9_divergence.run("cifar100", MICRO)


class TestTab10and11:
    def test_ablation_variants_present(self):
        result = ex.tab10_ablation.run(MICRO, checkpoints=(1,), dataset="cifar10")
        metrics = {row["metric"] for row in result.rows}
        assert metrics == {"acc", "backdoor"}
        for row in result.rows:
            for variant in ("hard_only", "wo_distillation", "wo_confusion", "total"):
                assert 0 <= row[variant] <= 100

    def test_loss_compat_variants(self):
        result = ex.tab11_loss_compat.run(MICRO, checkpoints=(1,), dataset="cifar10")
        for row in result.rows:
            for variant in (
                "total_alpha", "total_beta", "total_gamma", "total_delta"
            ):
                assert 0 <= row[variant] <= 100


class TestFig6and7:
    def test_fig6_series_per_tau(self):
        result = ex.fig6_shards.run(MICRO, num_rounds=2)
        assert set(result.series) == {"tau=1", "tau=2"}

    def test_fig7_deletion_timeline(self):
        result = ex.fig7_shard_deletion.run_one_rate(
            MICRO, 0.06, deletion_round=1, num_rounds=3
        )
        for row in result.rows:
            assert row["affected_shards"] >= 1
        assert all(len(v) == 3 for v in result.series.values())

    def test_fig7_bad_deletion_round(self):
        with pytest.raises(ValueError):
            ex.fig7_shard_deletion.run_one_rate(MICRO, 0.06, deletion_round=5,
                                                num_rounds=3)


class TestFig8and9:
    def test_fig8_panel(self):
        result = ex.fig8_heterogeneous.run_one(MICRO, 3, num_rounds=2)
        assert set(result.series) >= {"fedavg", "adaptive"}
        assert len(result.rows) == 2

    def test_table12(self):
        result = ex.fig8_heterogeneous.run_table12(MICRO)
        assert result.rows[0]["variance"] > 0
        assert result.rows[0]["min_acc"] <= result.rows[0]["max_acc"]

    def test_fig9(self):
        result = ex.fig9_iid.run(MICRO, num_rounds=2)
        assert "fedavg_3clients" in result.series
        assert "adaptive_3clients" in result.series
        assert len(result.rows) == 2

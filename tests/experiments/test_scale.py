"""ExperimentScale presets and validation."""

import pytest

from repro.experiments import PAPER, SCALES, SMALL, SMOKE, ExperimentScale, get_scale


class TestPresets:
    def test_registry(self):
        assert set(SCALES) == {"smoke", "small", "paper"}
        assert get_scale("smoke") is SMOKE
        assert get_scale("paper") is PAPER

    def test_unknown_scale(self):
        with pytest.raises(ValueError):
            get_scale("huge")

    def test_paper_preset_matches_paper_setup(self):
        # Section IV-A of the paper.
        assert PAPER.batch_size == 100
        assert PAPER.learning_rate == 0.001
        assert PAPER.deletion_rates == (0.02, 0.04, 0.06, 0.08, 0.10, 0.12)
        assert PAPER.shard_counts == (1, 3, 6, 9, 12, 15, 18)
        assert PAPER.client_counts == (5, 15, 25)
        assert PAPER.models["cifar10_resnet"] == "resnet32"
        assert PAPER.models["cifar100"] == "resnet56"

    def test_reduced_scales_use_slim_resnet(self):
        assert SMOKE.models["cifar100"] == "resnet8_slim"
        assert SMALL.models["cifar100"] == "resnet8_slim"

    def test_every_scale_covers_every_dataset(self):
        keys = {"mnist", "fmnist", "cifar10", "cifar10_resnet", "cifar100"}
        for scale in SCALES.values():
            assert keys <= set(scale.models)


class TestScaleBehaviour:
    def test_model_for(self):
        assert SMOKE.model_for("mnist") == "lenet5"
        with pytest.raises(ValueError):
            SMOKE.model_for("imagenet")

    def test_with_overrides(self):
        out = SMOKE.with_overrides(train_size=123)
        assert out.train_size == 123
        assert out.test_size == SMOKE.test_size

    @pytest.mark.parametrize("kwargs", [
        {"train_size": 0},
        {"num_clients": 0},
        {"deletion_rates": ()},
        {"deletion_rates": (1.5,)},
    ])
    def test_validation(self, kwargs):
        base = dict(
            name="x", train_size=10, test_size=10, num_clients=2,
            pretrain_rounds=1, local_epochs=1, unlearn_rounds=1,
            batch_size=5, learning_rate=0.1, deletion_rates=(0.1,),
            shard_counts=(1,), client_counts=(2,),
        )
        base.update(kwargs)
        with pytest.raises(ValueError):
            ExperimentScale(**base)

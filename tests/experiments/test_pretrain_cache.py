"""The sweep-level pretrain cache: deletion.* cells share one snapshot.

Matrix cells that differ only in the deletion section pretrain identical
federations when no attack is planted (the deletion fields only *mark*
samples for later removal).  The cache keys on the spec hash with
deletion zeroed and must be bit-identical to a cold pretrain — and must
refuse to fire when the deletion fields *do* shape the training data
(attack scenarios poison exactly the to-be-deleted subset) or when
pretraining has a side effect the cache would lose (round history).
"""

import pytest

from repro.experiments import SMOKE, runner
from repro.experiments.runner import pretrain_cache_key
from repro.experiments.spec import ExperimentSpec, get_scenario

MICRO = SMOKE.with_overrides(
    train_size=150, test_size=60, pretrain_rounds=1, local_epochs=1,
    unlearn_rounds=1, batch_size=30, deletion_rates=(0.06,),
)


def clean_matrix_spec(**params):
    return ExperimentSpec(
        experiment_id="cache",
        title="cache",
        kind="matrix",
        scenario=get_scenario("clean_deletion"),
        methods=("b1",),
        params={"sweeps": {"deletion.rate": [0.04, 0.08]}, **params},
    )


class TestCacheKey:
    def test_deletion_fields_zeroed_out(self):
        scenario = get_scenario("clean_deletion")
        low = scenario.with_overrides(**{"deletion.rate": 0.04})
        high = scenario.with_overrides(**{"deletion.rate": 0.08})
        other_client = scenario.with_overrides(**{"deletion.client_id": 2})
        assert pretrain_cache_key(low) == pretrain_cache_key(high)
        assert pretrain_cache_key(low) == pretrain_cache_key(other_client)

    def test_non_deletion_fields_still_distinguish(self):
        scenario = get_scenario("clean_deletion")
        more_clients = scenario.with_overrides(**{"federation.num_clients": 9})
        assert pretrain_cache_key(scenario) != pretrain_cache_key(more_clients)
        assert pretrain_cache_key(scenario) != pretrain_cache_key(
            get_scenario("clean_deletion", dataset="fmnist")
        )


class TestCacheBehaviour:
    def test_cached_prepare_bitwise_identical_to_cold(self):
        """The strong form: the unlearned model's *state dict* matches
        bit for bit, not just the (coarse) row metrics.  The cache must
        restore the post-pretrain client RNG positions — a fresh build
        alone would shuffle mini-batches differently than a cold cell.
        """
        import numpy as np

        from repro.experiments.runner import (
            _CachedPretrain, PreparedScenario, prepare, run_method,
        )
        from repro.experiments.spec import build_scenario

        scenario = get_scenario("clean_deletion")
        high = scenario.with_overrides(**{"deletion.rate": 0.08})
        cold = prepare(high, MICRO, seed=0)
        cold_outcome = run_method(cold, "b1", MICRO)

        donor = prepare(
            scenario.with_overrides(**{"deletion.rate": 0.04}), MICRO, seed=0
        )
        cached = _CachedPretrain.capture(donor).restore_into(
            build_scenario(high, MICRO, seed=0)
        )
        cached_outcome = run_method(cached, "b1", MICRO)

        cold_state = cold_outcome.global_model.state_dict()
        cached_state = cached_outcome.global_model.state_dict()
        for key in cold_state:
            np.testing.assert_array_equal(cold_state[key], cached_state[key])

    def test_cache_hit_bit_identical_to_cold_pretrain(self):
        cached = runner.run_matrix(clean_matrix_spec(), MICRO, seed=0)
        cold = runner.run_matrix(
            clean_matrix_spec(pretrain_cache=False), MICRO, seed=0
        )
        assert cached.runtime["pretrain_cache"] == {"hits": 1, "misses": 1}
        assert "pretrain_cache" not in cold.runtime
        # Every metric of every row identical — the shared snapshot is
        # indistinguishable from pretraining each cell from scratch.
        assert len(cached.rows) == len(cold.rows)
        for cached_row, cold_row in zip(cached.rows, cold.rows):
            for key in cached_row:
                if key == "wall_s":  # timing differs by construction
                    continue
                assert cached_row[key] == cold_row[key], (key, cached_row, cold_row)

    def test_attack_scenarios_never_cache(self):
        """Backdoor cells poison the to-be-deleted subset, so different
        rates train different data — the cache must stay cold."""
        exp = ExperimentSpec(
            experiment_id="cache",
            title="cache",
            kind="matrix",
            scenario=get_scenario("backdoor"),
            methods=("ours",),
            params={"sweeps": {"deletion.rate": [0.04, 0.08]}},
        )
        result = runner.run_matrix(exp, MICRO, seed=0)
        assert result.runtime["pretrain_cache"] == {"hits": 0, "misses": 0}

    def test_async_scenarios_never_cache(self):
        """The event engine carries state beyond the snapshot (virtual
        clock, dispatch counts seeding latency draws), so async cells
        must pretrain cold."""
        from repro.experiments.spec import FederationSpec, ScenarioSpec

        base = get_scenario("clean_deletion")
        async_scenario = ScenarioSpec(
            dataset=base.dataset, partition=base.partition,
            attack=base.attack, deletion=base.deletion,
            federation=FederationSpec(async_mode=True),
        )
        exp = ExperimentSpec(
            experiment_id="cache", title="cache", kind="matrix",
            scenario=async_scenario, methods=("b1",),
            params={"sweeps": {"deletion.rate": [0.04, 0.08]}},
        )
        result = runner.run_matrix(exp, MICRO, seed=0)
        assert result.runtime["pretrain_cache"] == {"hits": 0, "misses": 0}

    def test_history_methods_disable_cache(self):
        exp = ExperimentSpec(
            experiment_id="cache",
            title="cache",
            kind="matrix",
            scenario=get_scenario("clean_deletion"),
            methods=("fedrecovery",),
            params={"sweeps": {"deletion.rate": [0.04, 0.08]}},
        )
        result = runner.run_matrix(exp, MICRO, seed=0)
        assert "pretrain_cache" not in result.runtime

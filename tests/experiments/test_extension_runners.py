"""The extension experiments (efficiency, certification) wire end to end."""

import pytest

import repro.experiments as ex
from repro.experiments import SMOKE

MICRO = SMOKE.with_overrides(
    train_size=150, test_size=60, pretrain_rounds=2, local_epochs=1,
    unlearn_rounds=1, batch_size=30, deletion_rates=(0.06,),
)


class TestEfficiency:
    def test_all_six_methods_reported(self):
        result = ex.efficiency.run("mnist", MICRO, seed=0)
        methods = [row["method"] for row in result.rows]
        assert methods == ["ours", "b1", "b2", "b3", "federaser", "fedrecovery"]
        for row in result.rows:
            assert 0 <= row["acc"] <= 100
            assert 0 <= row["backdoor"] <= 100
            assert row["wall_s"] >= 0
            assert row["comm_mb"] >= 0

    def test_storage_cost_split(self):
        result = ex.efficiency.run("mnist", MICRO, seed=1)
        rows = {row["method"]: row for row in result.rows}
        for method in ("ours", "b1", "b2", "b3"):
            assert rows[method]["storage_mb"] == 0.0
        assert rows["federaser"]["storage_mb"] > 0.0
        assert rows["fedrecovery"]["local_epochs"] == 0

    def test_unknown_dataset(self):
        with pytest.raises(ValueError):
            ex.efficiency.run("svhn", MICRO)


class TestCertification:
    def test_reference_certifies_itself(self):
        result = ex.certification.run("mnist", MICRO, seed=0)
        rows = {row["method"]: row for row in result.rows}
        assert set(rows) == {"origin", "ours", "b3", "b1"}
        assert rows["b1"]["eps_hat"] == 0.0
        assert rows["b1"]["mean_jsd"] == 0.0
        for row in result.rows:
            assert row["eps_hat"] >= 0.0
            assert -1.0 <= row["mia_adv"] <= 1.0
            assert row["relearn_speedup"] > 0.0

    def test_unknown_dataset(self):
        with pytest.raises(ValueError):
            ex.certification.run("svhn", MICRO)

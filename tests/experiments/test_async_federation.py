"""Async-mode federation through the spec/runner/CLI layers."""

import numpy as np
import pytest

from repro.experiments import SMOKE, runner
from repro.experiments.cli import build_parser, main as cli_main
from repro.experiments.spec import (
    ExperimentSpec,
    FederationSpec,
    ScenarioSpec,
    build_scenario,
    get_scenario,
)
from repro.federated.engine import AsyncRoundConfig, SeededLatency

MICRO = SMOKE.with_overrides(
    train_size=150, test_size=60, pretrain_rounds=2, local_epochs=1,
    unlearn_rounds=1, batch_size=30, deletion_rates=(0.06,),
)


def async_scenario(**federation_kwargs):
    base = get_scenario("clean_deletion")
    return ScenarioSpec(
        dataset=base.dataset,
        partition=base.partition,
        attack=base.attack,
        deletion=base.deletion,
        federation=FederationSpec(
            async_mode=True, buffer_size=2, max_staleness=3,
            straggler_timeout=0.0, **federation_kwargs,
        ),
    )


class TestSpecWiring:
    def test_round_trip_and_hash(self):
        spec = async_scenario()
        restored = ScenarioSpec.from_dict(spec.to_dict())
        assert restored == spec
        sync = get_scenario("clean_deletion")
        assert spec.hash() != sync.hash()
        assert spec.with_overrides(
            **{"federation.buffer_size": 4}
        ).hash() != spec.hash()

    def test_builder_configures_engine(self):
        scenario = build_scenario(async_scenario(), MICRO, seed=0)
        sim = scenario.sim
        assert sim.async_config == AsyncRoundConfig(
            buffer_size=2, max_staleness=3, straggler_timeout=0.0
        )
        assert isinstance(sim.latency_model, SeededLatency)

    def test_sync_spec_builds_no_engine(self):
        scenario = build_scenario(get_scenario("clean_deletion"), MICRO, seed=0)
        assert scenario.sim.async_config is None
        assert scenario.sim.latency_model is None

    def test_async_pretrain_deterministic_per_seed(self):
        first = build_scenario(async_scenario(), MICRO, seed=0)
        second = build_scenario(async_scenario(), MICRO, seed=0)
        history_a = first.sim.run(3)
        history_b = second.sim.run(3)
        assert [r.global_loss for r in history_a.rounds] == [
            r.global_loss for r in history_b.rounds
        ]
        assert history_a.rounds[-1].version == 3


class TestRunnerProvenance:
    def _matrix(self, scenario):
        return ExperimentSpec(
            experiment_id="async-matrix",
            title="async",
            kind="matrix",
            scenario=scenario,
            methods=("b1",),
        )

    def test_async_matrix_runs_and_stamps_engine(self):
        result = runner.run_matrix(self._matrix(async_scenario()), MICRO, seed=0)
        assert result.runtime["engine"] == "async"
        rows = {row["method"]: row for row in result.rows}
        assert np.isfinite(rows["b1"]["acc"])

    def test_sync_matrix_stamps_sync(self):
        result = runner.run_matrix(
            self._matrix(get_scenario("clean_deletion")), MICRO, seed=0
        )
        assert result.runtime["engine"] == "sync"

    def test_async_matrix_deterministic(self):
        first = runner.run_matrix(self._matrix(async_scenario()), MICRO, seed=0)
        second = runner.run_matrix(self._matrix(async_scenario()), MICRO, seed=0)
        strip = lambda rows: [
            {k: v for k, v in row.items() if k != "wall_s"} for row in rows
        ]
        assert strip(first.rows) == strip(second.rows)


class TestCli:
    def test_async_flags_parse(self):
        args = build_parser().parse_args(
            ["matrix", "--async-mode", "--buffer-size", "3",
             "--max-staleness", "2", "--straggler-timeout", "1.5"]
        )
        assert args.async_mode and args.buffer_size == 3
        assert args.max_staleness == 2 and args.straggler_timeout == 1.5

    def test_async_knobs_require_async_mode(self, capsys):
        assert cli_main(["matrix", "--buffer-size", "3"]) == 2
        assert "--async-mode" in capsys.readouterr().err
        # Every async knob is validated uniformly, including ones whose
        # async-mode default is non-zero.
        assert cli_main(["matrix", "--max-staleness", "10"]) == 2
        assert "--async-mode" in capsys.readouterr().err
        assert cli_main(["matrix", "--straggler-timeout", "1.0"]) == 2
        assert "--async-mode" in capsys.readouterr().err

    def test_matrix_cli_async_end_to_end(self, capsys, monkeypatch):
        from repro.experiments.scale import SCALES

        monkeypatch.setitem(SCALES, "micro", MICRO)
        code = cli_main(
            ["matrix", "--scale", "micro", "--scenario", "clean_deletion",
             "--method", "b1", "--async-mode", "--buffer-size", "2"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "engine=async" in out

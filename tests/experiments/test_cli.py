"""Command-line interface for the experiment harness."""

import pytest

from repro.experiments.cli import EXPERIMENTS, build_parser, main, run_experiment


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["fig5"])
        assert args.experiment == "fig5"
        assert args.scale == "smoke"
        assert args.dataset == ""
        assert args.seed == 0

    def test_scale_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig5", "--scale", "galactic"])

    def test_all_experiments_documented(self):
        for name in ("fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
                     "tab7_9", "tab10", "tab11", "all"):
            assert name in EXPERIMENTS


class TestMain:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig5" in out and "tab10" in out

    def test_unknown_experiment_errors(self, capsys):
        assert main(["figure99"]) == 2
        assert "error" in capsys.readouterr().err

    def test_runs_tiny_experiment(self, capsys, monkeypatch):
        # Shrink the smoke preset so the CLI test stays fast.
        from repro.experiments import SMOKE, scale as scale_module
        tiny = SMOKE.with_overrides(
            train_size=120, test_size=60, pretrain_rounds=1, local_epochs=1,
            unlearn_rounds=1, shard_counts=(1, 2),
        )
        monkeypatch.setitem(scale_module.SCALES, "smoke", tiny)
        assert main(["fig6", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "Fig 6" in out
        assert "done in" in out

    def test_dataset_restriction(self, capsys, monkeypatch):
        from repro.experiments import SMOKE, scale as scale_module
        tiny = SMOKE.with_overrides(
            train_size=120, test_size=60, pretrain_rounds=1, local_epochs=1,
            unlearn_rounds=1,
        )
        monkeypatch.setitem(scale_module.SCALES, "smoke", tiny)
        assert main(["fig5", "--dataset", "mnist"]) == 0
        out = capsys.readouterr().out
        assert "Table III" in out


class TestRunExperimentValidation:
    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            run_experiment("nope", "smoke", "", 0)

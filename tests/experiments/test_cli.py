"""Command-line interface for the experiment harness."""

import pytest

from repro.experiments.cli import EXPERIMENTS, build_parser, main, run_experiment


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["fig5"])
        assert args.experiment == "fig5"
        assert args.scale == "smoke"
        assert args.dataset == ""
        assert args.seed == 0

    def test_scale_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig5", "--scale", "galactic"])

    def test_all_experiments_documented(self):
        for name in ("fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
                     "tab7_9", "tab10", "tab11", "all"):
            assert name in EXPERIMENTS


class TestMain:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig5" in out and "tab10" in out

    def test_unknown_experiment_errors(self, capsys):
        assert main(["figure99"]) == 2
        assert "error" in capsys.readouterr().err

    def test_runs_tiny_experiment(self, capsys, monkeypatch):
        # Shrink the smoke preset so the CLI test stays fast.
        from repro.experiments import SMOKE, scale as scale_module
        tiny = SMOKE.with_overrides(
            train_size=120, test_size=60, pretrain_rounds=1, local_epochs=1,
            unlearn_rounds=1, shard_counts=(1, 2),
        )
        monkeypatch.setitem(scale_module.SCALES, "smoke", tiny)
        assert main(["fig6", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "Fig 6" in out
        assert "done in" in out

    def test_dataset_restriction(self, capsys, monkeypatch):
        from repro.experiments import SMOKE, scale as scale_module
        tiny = SMOKE.with_overrides(
            train_size=120, test_size=60, pretrain_rounds=1, local_epochs=1,
            unlearn_rounds=1,
        )
        monkeypatch.setitem(scale_module.SCALES, "smoke", tiny)
        assert main(["fig5", "--dataset", "mnist"]) == 0
        out = capsys.readouterr().out
        assert "Table III" in out


class TestRunExperimentValidation:
    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            run_experiment("nope", "smoke", "", 0)


class TestSweepParsing:
    def test_parse_sweeps_types(self):
        from repro.experiments.cli import parse_sweeps

        sweeps = parse_sweeps(
            ["deletion.rate=0.02,0.06", "federation.num_clients=5,10",
             "partition.strategy=iid,heterogeneous"]
        )
        assert sweeps["deletion.rate"] == [0.02, 0.06]
        assert sweeps["federation.num_clients"] == [5, 10]
        assert sweeps["partition.strategy"] == ["iid", "heterogeneous"]

    def test_parse_sweeps_rejects_garbage(self):
        from repro.experiments.cli import parse_sweeps

        with pytest.raises(ValueError):
            parse_sweeps(["no-equals-sign"])
        with pytest.raises(ValueError):
            parse_sweeps(["key="])

    def test_parse_methods_validates(self):
        from repro.experiments.cli import parse_methods

        assert parse_methods("ours, b1") == ("ours", "b1")
        assert parse_methods("") == ()
        with pytest.raises(ValueError):
            parse_methods("magic")


class TestMatrixDriver:
    def test_matrix_runs_from_cli(self, capsys, monkeypatch):
        from repro.experiments import SMOKE, scale as scale_module
        tiny = SMOKE.with_overrides(
            train_size=120, test_size=60, pretrain_rounds=1, local_epochs=1,
            unlearn_rounds=1,
        )
        monkeypatch.setitem(scale_module.SCALES, "smoke", tiny)
        assert main([
            "matrix", "--scenario", "clean_deletion", "--method", "b1",
            "--sweep", "deletion.rate=0.04,0.08",
        ]) == 0
        out = capsys.readouterr().out
        assert "matrix:clean_deletion" in out
        assert "spec:" in out
        assert out.count("b1") >= 2  # one row per sweep value

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["matrix", "--scenario", "alien"])


class TestAllHonorsDataset:
    def test_dataset_threads_through_all(self, capsys, monkeypatch):
        """`all --dataset X` restricts every experiment to X (satellite fix:
        the suite previously dropped the flag and ran every panel)."""
        from repro.experiments import SMOKE, scale as scale_module
        tiny = SMOKE.with_overrides(
            train_size=120, test_size=60, pretrain_rounds=1, local_epochs=1,
            unlearn_rounds=1, shard_counts=(1, 2), client_counts=(3,),
        )
        monkeypatch.setitem(scale_module.SCALES, "smoke", tiny)
        assert main(["all", "--dataset", "mnist"]) == 0
        out = capsys.readouterr().out
        # fig5 ran only the mnist table, not fmnist/cifar panels
        assert "Table III" in out
        assert "Table IV" not in out  # fmnist table absent
        assert "(fmnist)" not in out

    def test_unsupported_dataset_skips_restricted(self, capsys, monkeypatch):
        from repro.experiments.cli import _supports_dataset

        assert _supports_dataset("tab7_9", "mnist")
        assert not _supports_dataset("tab7_9", "cifar100")
        assert _supports_dataset("fig6", "cifar100")

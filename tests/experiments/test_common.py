"""The shared experiment plumbing (federation setup, snapshots, dispatch)."""

import numpy as np
import pytest

from repro.experiments import SMOKE
from repro.experiments.common import (
    DEFAULT_TRIGGER,
    build_backdoor_federation,
    evaluate_model,
    goldfish_config,
    model_factory_for,
    pretrain,
    run_unlearning_method,
    SimulationSnapshot,
    train_config,
)

TINY = SMOKE.with_overrides(
    train_size=120, test_size=60, pretrain_rounds=1, local_epochs=1,
    unlearn_rounds=1, batch_size=20,
)


@pytest.fixture(scope="module")
def setup():
    return build_backdoor_federation("mnist", TINY, deletion_rate=0.06, seed=0)


class TestBuildFederation:
    def test_partition_and_poison(self, setup):
        assert setup.sim.fed_data.num_clients == TINY.num_clients
        poisoned = setup.sim.clients[0].dataset
        # poisoned samples carry the trigger and the target label
        idx = setup.poison_indices
        assert (poisoned.labels[idx] == setup.attack.target_label).all()
        assert (
            poisoned.images[idx][..., -DEFAULT_TRIGGER.size:, -DEFAULT_TRIGGER.size:]
            == DEFAULT_TRIGGER.value
        ).all()

    def test_poison_count_matches_rate(self, setup):
        expected = int(round(0.06 * TINY.train_size))
        assert len(setup.poison_indices) == expected

    def test_rate_too_large_rejected(self):
        with pytest.raises(ValueError):
            build_backdoor_federation("mnist", TINY, deletion_rate=0.5)

    def test_unknown_dataset_rejected(self):
        with pytest.raises(ValueError):
            build_backdoor_federation("svhn", TINY, deletion_rate=0.06)

    def test_train_config_from_scale(self):
        config = train_config(TINY)
        assert config.epochs == TINY.local_epochs
        assert config.batch_size == TINY.batch_size

    def test_model_factory_consistent(self):
        from repro.data import make_dataset
        train_set, _ = make_dataset("mnist", 50, 20)
        factory = model_factory_for(train_set, "lenet5")
        a, b = factory(), factory()
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            np.testing.assert_allclose(pa.data, pb.data)


class TestSnapshot:
    def test_restore_models_and_data(self):
        setup = build_backdoor_federation("mnist", TINY, deletion_rate=0.06, seed=1)
        pretrain(setup, TINY)
        snapshot = SimulationSnapshot.capture(setup.sim)
        setup.register_deletion()
        run_unlearning_method("b1", setup, TINY)
        # deletion was finalized: data shrank
        assert len(setup.sim.clients[0].dataset) < TINY.train_size // TINY.num_clients + 1
        snapshot.restore(setup.sim)
        assert not setup.sim.clients[0].has_pending_deletion
        # dataset restored, so a second registration works
        setup.register_deletion()
        assert setup.sim.clients[0].has_pending_deletion


class TestMethodDispatch:
    @pytest.mark.parametrize("method", ["ours", "b1", "b2", "b3"])
    def test_all_methods_run(self, method):
        setup = build_backdoor_federation("mnist", TINY, deletion_rate=0.06, seed=2)
        pretrain(setup, TINY)
        setup.register_deletion()
        outcome = run_unlearning_method(method, setup, TINY)
        assert outcome.rounds_run == TINY.unlearn_rounds
        metrics = evaluate_model(outcome.global_model, setup)
        assert 0 <= metrics["acc"] <= 100
        assert 0 <= metrics["backdoor"] <= 100

    def test_unknown_method(self, setup):
        with pytest.raises(ValueError):
            run_unlearning_method("magic", setup, TINY)


class TestGoldfishConfigHelper:
    def test_paper_defaults(self):
        config = goldfish_config(TINY)
        assert config.loss.temperature == 3.0
        assert config.loss.mu_c == 0.25
        assert config.loss.mu_d == 1.0

    def test_ablation_toggles(self):
        config = goldfish_config(TINY, use_confusion=False, use_distillation=False)
        assert not config.loss.use_confusion
        assert not config.loss.use_distillation

    def test_hard_loss_override(self):
        config = goldfish_config(TINY, hard_loss="focal")
        assert config.loss.hard_loss == "focal"

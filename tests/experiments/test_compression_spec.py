"""CompressionSpec: spec layer, sweep, CLI and matrix-driver wiring."""

import pytest

from repro.experiments import SMOKE, scale as scale_module
from repro.experiments.cli import main
from repro.experiments.runner import run_matrix
from repro.experiments.spec import (
    CompressionSpec,
    ExperimentSpec,
    FederationSpec,
    ScenarioSpec,
    build_scenario,
    clean_deletion_scenario,
)

TINY = SMOKE.with_overrides(
    train_size=120, test_size=60, pretrain_rounds=1, local_epochs=1,
    unlearn_rounds=1,
)


class TestCompressionSpec:
    def test_default_is_raw(self):
        assert FederationSpec().compression == CompressionSpec()
        assert CompressionSpec().codec == "raw"

    def test_bad_codec_rejected_eagerly(self):
        with pytest.raises(ValueError):
            CompressionSpec(codec="nope")
        with pytest.raises(ValueError):
            CompressionSpec(codec="topk")  # missing argument

    def test_round_trips_through_dict(self):
        spec = ScenarioSpec(
            federation=FederationSpec(compression=CompressionSpec(codec="quant:8"))
        )
        restored = ScenarioSpec.from_dict(spec.to_dict())
        assert restored == spec
        assert restored.federation.compression.codec == "quant:8"
        assert restored.hash() == spec.hash()

    def test_codec_changes_the_spec_hash(self):
        base = ScenarioSpec()
        swept = base.with_overrides(**{"federation.compression.codec": "delta"})
        assert swept.federation.compression.codec == "delta"
        assert swept.hash() != base.hash()

    def test_non_mapping_compression_rejected_with_spec_path_hint(self):
        payload = ScenarioSpec().to_dict()
        payload["federation"]["compression"] = "delta"
        with pytest.raises(ValueError, match="federation.compression.codec"):
            ScenarioSpec.from_dict(payload)

    def test_builder_wires_codec_into_simulation(self):
        spec = clean_deletion_scenario().with_overrides(
            **{"federation.compression.codec": "delta"}
        )
        scenario = build_scenario(spec, TINY, seed=0)
        assert scenario.sim.codec == "delta"


class TestMatrixCodecSweep:
    def test_codec_sweep_runs_and_lossless_cells_match(self, monkeypatch):
        monkeypatch.setitem(scale_module.SCALES, "smoke", TINY)
        exp = ExperimentSpec(
            experiment_id="matrix:codec",
            title="codec sweep",
            kind="matrix",
            scenario=clean_deletion_scenario(),
            methods=("b1",),
            params={
                "sweeps": {"federation.compression.codec": ["raw", "delta"]}
            },
        )
        result = run_matrix(exp, TINY, seed=0)
        rows = {
            row["federation.compression.codec"]: row
            for row in result.rows
            if row["method"] == "b1"
        }
        assert set(rows) == {"raw", "delta"}
        # delta is lossless: identical metrics to the raw cell.
        assert rows["raw"]["acc"] == rows["delta"]["acc"]
        assert rows["raw"]["backdoor"] == rows["delta"]["backdoor"]
        transport = result.runtime["transport"]
        assert set(transport) == {"raw", "delta"}
        for bucket in transport.values():
            assert bucket["bytes_total"] > 0


class TestCliCodecFlag:
    def test_codec_flag_threads_into_matrix(self, capsys, monkeypatch):
        monkeypatch.setitem(scale_module.SCALES, "smoke", TINY)
        assert main([
            "matrix", "--scenario", "clean_deletion", "--method", "b1",
            "--codec", "delta",
        ]) == 0
        out = capsys.readouterr().out
        assert "matrix:clean_deletion" in out
        assert "transport" in out
        assert "delta" in out

    def test_bad_codec_rejected(self, capsys):
        assert main([
            "matrix", "--scenario", "clean_deletion", "--codec", "warp",
        ]) == 2
        assert "unknown codec" in capsys.readouterr().err

    def test_codec_outside_matrix_refused_not_ignored(self, capsys):
        assert main(["fig6", "--codec", "delta"]) == 2
        assert "matrix driver only" in capsys.readouterr().err

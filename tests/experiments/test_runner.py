"""The shared spec runner: kind dispatch, matrix driver, spec provenance."""

import pytest

from repro.experiments import SMOKE, runner
from repro.experiments.spec import ExperimentSpec, get_scenario

MICRO = SMOKE.with_overrides(
    train_size=150, test_size=60, pretrain_rounds=1, local_epochs=1,
    unlearn_rounds=1, batch_size=30, deletion_rates=(0.06,),
)


class TestRunSpecDispatch:
    def test_unknown_kind(self):
        exp = ExperimentSpec(experiment_id="x", title="x", kind="nope")
        with pytest.raises(ValueError, match="unknown experiment kind"):
            runner.run_spec(exp, MICRO)

    def test_rate_table_through_dispatch(self):
        exp = ExperimentSpec(
            experiment_id="custom",
            title="label-flip rate table",
            kind="rate_table",
            scenario=get_scenario("label_flip"),
            methods=("ours",),
            params={"rates": [0.06]},
        )
        result = runner.run_spec(exp, MICRO)
        assert result.experiment_id == "custom"
        assert result.spec_hash == exp.hash()
        row = result.rows[0]
        assert {"rate", "origin_acc", "origin_bd", "ours_acc", "ours_bd"} <= set(row)

    def test_spec_hash_stamped_everywhere(self):
        import repro.experiments as ex

        result = ex.fig5_backdoor.run("mnist", MICRO)
        assert len(result.spec_hash) == 12
        result = ex.fig6_shards.run(MICRO, num_rounds=2)
        assert len(result.spec_hash) == 12


class TestNewScenariosEndToEnd:
    """Non-backdoor scenarios run from specs — no new experiment module."""

    def test_label_flip_unlearning_collapses_contamination(self):
        exp = ExperimentSpec(
            experiment_id="label-flip e2e",
            title="label flip",
            kind="matrix",
            scenario=get_scenario("label_flip"),
            methods=("ours", "b1"),
        )
        result = runner.run_matrix(exp, MICRO, seed=0)
        rows = {row["method"]: row for row in result.rows}
        assert set(rows) == {"origin", "ours", "b1"}
        # contamination is present at the origin and reduced by unlearning
        assert rows["origin"]["backdoor"] >= rows["ours"]["backdoor"]

    def test_clean_deletion_runs(self):
        exp = ExperimentSpec(
            experiment_id="clean e2e",
            title="clean deletion",
            kind="matrix",
            scenario=get_scenario("clean_deletion"),
            methods=("b1",),
        )
        result = runner.run_matrix(exp, MICRO, seed=0)
        rows = {row["method"]: row for row in result.rows}
        assert rows["b1"]["backdoor"] == 0.0  # no attack to measure
        assert 0 <= rows["b1"]["acc"] <= 100


class TestMatrix:
    def test_sweep_enumeration(self):
        exp = ExperimentSpec(
            experiment_id="m",
            title="m",
            kind="matrix",
            scenario=get_scenario("backdoor"),
            methods=("ours",),
            params={"sweeps": {"deletion.rate": [0.04, 0.08]}},
        )
        result = runner.run_matrix(exp, MICRO, seed=0)
        # 2 sweep cells x (origin + 1 method)
        assert len(result.rows) == 4
        assert [row["deletion.rate"] for row in result.rows] == [
            0.04, 0.04, 0.08, 0.08
        ]
        for row in result.rows:
            if row["method"] != "origin":
                assert row["rounds"] == MICRO.unlearn_rounds
                assert row["chains"] > 0

    def test_client_level_method_gets_history(self):
        exp = ExperimentSpec(
            experiment_id="m",
            title="m",
            kind="matrix",
            scenario=get_scenario("backdoor"),
            methods=("fedrecovery",),
        )
        result = runner.run_matrix(exp, MICRO, seed=0)
        rows = {row["method"]: row for row in result.rows}
        assert rows["fedrecovery"]["chains"] == 0

"""FederationSpec.vectorize: spec layer, sweep, CLI and runner provenance."""

import pytest

from repro.experiments import SMOKE, scale as scale_module
from repro.experiments.cli import main
from repro.experiments.runner import run_matrix
from repro.experiments.spec import (
    ExperimentSpec,
    FederationSpec,
    ScenarioSpec,
    build_scenario,
    clean_deletion_scenario,
)

TINY = SMOKE.with_overrides(
    train_size=120, test_size=60, pretrain_rounds=1, local_epochs=1,
    unlearn_rounds=1,
)


class TestVectorizeSpec:
    def test_default_is_off(self):
        assert FederationSpec().vectorize is False

    def test_round_trips_through_dict(self):
        spec = ScenarioSpec(federation=FederationSpec(vectorize=True))
        restored = ScenarioSpec.from_dict(spec.to_dict())
        assert restored == spec
        assert restored.federation.vectorize is True
        assert restored.hash() == spec.hash()

    def test_vectorize_changes_the_spec_hash(self):
        base = ScenarioSpec()
        swept = base.with_overrides(**{"federation.vectorize": True})
        assert swept.federation.vectorize is True
        assert swept.hash() != base.hash()

    def test_builder_wires_vectorize_into_simulation(self):
        spec = clean_deletion_scenario().with_overrides(
            **{"federation.vectorize": True}
        )
        scenario = build_scenario(spec, TINY, seed=0)
        assert scenario.sim.vectorize is True
        off = build_scenario(clean_deletion_scenario(), TINY, seed=0)
        assert off.sim.vectorize is False


class TestMatrixVectorizeSweep:
    def test_sweep_cells_match_and_provenance_is_stamped(self, monkeypatch):
        monkeypatch.setitem(scale_module.SCALES, "smoke", TINY)
        exp = ExperimentSpec(
            experiment_id="matrix:vectorize",
            title="vectorize sweep",
            kind="matrix",
            scenario=clean_deletion_scenario(),
            methods=("b1",),
            params={"sweeps": {"federation.vectorize": [False, True]}},
        )
        result = run_matrix(exp, TINY, seed=0)
        rows = {
            row["federation.vectorize"]: row
            for row in result.rows
            if row["method"] == "b1"
        }
        assert set(rows) == {False, True}
        # Vectorization is an execution strategy, not a model change:
        # identical metrics in both cells.
        assert rows[False]["acc"] == rows[True]["acc"]
        assert rows[False]["backdoor"] == rows[True]["backdoor"]
        vectorize = result.runtime["vectorize"]
        assert vectorize["requested"] is True
        assert vectorize["rounds_vectorized"] > 0
        # Stack-chunk fan-out is part of the provenance: every
        # vectorized round records how many chunks it was sharded into.
        assert sum(vectorize["chunks"].values()) >= vectorize["rounds_vectorized"]

    def test_no_provenance_when_never_requested(self, monkeypatch):
        monkeypatch.setitem(scale_module.SCALES, "smoke", TINY)
        exp = ExperimentSpec(
            experiment_id="matrix:plain",
            title="plain",
            kind="matrix",
            scenario=clean_deletion_scenario(),
            methods=("b1",),
        )
        result = run_matrix(exp, TINY, seed=0)
        assert "vectorize" not in result.runtime


class TestCliVectorizeFlag:
    def test_vectorize_flag_threads_into_matrix(self, capsys, monkeypatch):
        monkeypatch.setitem(scale_module.SCALES, "smoke", TINY)
        assert main([
            "matrix", "--scenario", "clean_deletion", "--method", "b1",
            "--vectorize",
        ]) == 0
        out = capsys.readouterr().out
        assert "matrix:clean_deletion" in out
        assert "vectorize" in out

    def test_vectorize_outside_matrix_refused_not_ignored(self, capsys):
        assert main(["fig6", "--vectorize"]) == 2
        assert "matrix driver only" in capsys.readouterr().err

"""``runtime["cluster"]`` provenance: fault accounting rides the result.

A matrix run resolved onto a ``cluster:*`` backend stamps the run's
FaultReport *delta* (the shared backend's counters are cumulative across
a process) into ``result.runtime["cluster"]`` — retries, suspects,
reconnects, corrupt frames — so a persisted result records what the
recovery machinery did underneath it.  And because recovery re-runs
tasks carrying full state + RNG position, a chaos-armed cluster run's
metrics match a serial run bit-for-bit.
"""

import multiprocessing

import pytest

from repro.cluster.chaos import FaultReport
from repro.experiments import SMOKE, scale as scale_module
from repro.experiments.runner import run_matrix
from repro.experiments.spec import ExperimentSpec, clean_deletion_scenario
from repro.runtime.backends import BACKEND_ENV_VAR, get_backend

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

pytestmark = pytest.mark.skipif(
    not HAS_FORK, reason="cluster tests spawn local agents via fork"
)

TINY = SMOKE.with_overrides(
    train_size=120, test_size=60, pretrain_rounds=1, local_epochs=1,
    unlearn_rounds=1,
)

CHAOS_SPEC = "cluster:2:chaos=seed=17,drop=0.03"


def tiny_matrix(experiment_id):
    return ExperimentSpec(
        experiment_id=experiment_id,
        title="cluster provenance",
        kind="matrix",
        scenario=clean_deletion_scenario(),
        methods=("b1",),
    )


class TestClusterProvenance:
    def test_fault_report_delta_stamped_and_metrics_unperturbed(
        self, monkeypatch
    ):
        monkeypatch.setitem(scale_module.SCALES, "smoke", TINY)
        serial = run_matrix(tiny_matrix("matrix:serial-ref"), TINY, seed=0)

        monkeypatch.setenv(BACKEND_ENV_VAR, CHAOS_SPEC)
        backend = get_backend(CHAOS_SPEC)
        try:
            chaotic = run_matrix(tiny_matrix("matrix:chaos"), TINY, seed=0)
        finally:
            backend.close()

        report = chaotic.runtime["cluster"]
        assert set(report) == set(FaultReport.zero_dict())
        assert all(
            isinstance(value, int) and value >= 0 for value in report.values()
        )
        # Chaos under the backend never leaks into the science: identical
        # metric rows to the serial reference (wall clock aside).
        strip = lambda row: {k: v for k, v in row.items() if k != "wall_s"}
        assert [strip(r) for r in chaotic.rows] == [
            strip(r) for r in serial.rows
        ]

    def test_no_cluster_entry_off_cluster(self, monkeypatch):
        monkeypatch.setitem(scale_module.SCALES, "smoke", TINY)
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        result = run_matrix(tiny_matrix("matrix:no-cluster"), TINY, seed=0)
        assert "cluster" not in result.runtime

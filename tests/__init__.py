"""Test suite for the conf_dsn_WangZCE24 reproduction (package context
for the relative ``..conftest`` imports used by the test modules)."""

"""Layer behaviour: shapes, modes, batch-norm statistics."""

import numpy as np
import pytest

from repro.nn import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    Identity,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
    Tensor,
)


class TestLinear:
    def test_output_shape(self, rng):
        layer = Linear(8, 3, rng)
        assert layer(Tensor(rng.normal(size=(5, 8)))).shape == (5, 3)

    def test_no_bias(self, rng):
        layer = Linear(4, 2, rng, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_value(self, rng):
        layer = Linear(3, 2, rng)
        x = rng.normal(size=(4, 3))
        expected = x @ layer.weight.data.T + layer.bias.data
        np.testing.assert_allclose(layer(Tensor(x)).data, expected)

    def test_deterministic_init_given_rng(self):
        a = Linear(4, 2, np.random.default_rng(0))
        b = Linear(4, 2, np.random.default_rng(0))
        np.testing.assert_allclose(a.weight.data, b.weight.data)


class TestConv2dLayer:
    def test_output_shape_with_padding(self, rng):
        layer = Conv2d(3, 8, 3, rng, stride=2, padding=1)
        assert layer(Tensor(rng.normal(size=(2, 3, 8, 8)))).shape == (2, 8, 4, 4)

    def test_no_bias_param_count(self, rng):
        layer = Conv2d(2, 4, 3, rng, bias=False)
        assert len(layer.parameters()) == 1

    def test_repr(self, rng):
        assert "Conv2d" in repr(Conv2d(1, 2, 3, rng))


class TestPoolingLayers:
    def test_max_pool(self, rng):
        layer = MaxPool2d(2)
        assert layer(Tensor(rng.normal(size=(1, 2, 8, 8)))).shape == (1, 2, 4, 4)

    def test_avg_pool(self, rng):
        layer = AvgPool2d(2)
        out = layer(Tensor(np.ones((1, 1, 4, 4))))
        np.testing.assert_allclose(out.data, np.ones((1, 1, 2, 2)))


class TestActivationShape:
    def test_relu(self):
        out = ReLU()(Tensor(np.array([-1.0, 2.0])))
        np.testing.assert_allclose(out.data, [0.0, 2.0])

    def test_identity(self):
        x = Tensor(np.ones(3))
        assert Identity()(x) is x

    def test_flatten(self, rng):
        out = Flatten()(Tensor(rng.normal(size=(2, 3, 4, 5))))
        assert out.shape == (2, 60)


class TestDropout:
    def test_train_mode_zeroes_some(self):
        layer = Dropout(0.5, np.random.default_rng(0))
        out = layer(Tensor(np.ones((50, 50)))).data
        assert (out == 0).any()

    def test_eval_mode_identity(self):
        layer = Dropout(0.5, np.random.default_rng(0))
        layer.eval()
        x = Tensor(np.ones((5, 5)))
        assert layer(x) is x

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            Dropout(1.5, np.random.default_rng(0))


class TestBatchNorm:
    def test_normalises_batch(self, rng):
        bn = BatchNorm2d(3)
        x = rng.normal(loc=5.0, scale=2.0, size=(16, 3, 4, 4))
        out = bn(Tensor(x)).data
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-7)
        np.testing.assert_allclose(out.std(axis=(0, 2, 3)), 1.0, atol=1e-2)

    def test_running_stats_move_toward_batch(self, rng):
        bn = BatchNorm2d(2, momentum=0.5)
        x = rng.normal(loc=10.0, size=(8, 2, 3, 3))
        bn(Tensor(x))
        assert (bn.running_mean > 1.0).all()

    def test_eval_uses_running_stats(self, rng):
        bn = BatchNorm2d(2)
        for _ in range(50):
            bn(Tensor(rng.normal(loc=3.0, size=(32, 2, 2, 2))))
        bn.eval()
        x = rng.normal(loc=3.0, size=(4, 2, 2, 2))
        out = bn(Tensor(x)).data
        assert abs(out.mean()) < 0.5  # approximately centred by running stats

    def test_eval_deterministic(self, rng):
        bn = BatchNorm2d(2)
        bn(Tensor(rng.normal(size=(8, 2, 2, 2))))
        bn.eval()
        x = rng.normal(size=(4, 2, 2, 2))
        out1 = bn(Tensor(x)).data
        out2 = bn(Tensor(x)).data
        np.testing.assert_allclose(out1, out2)

    def test_gamma_beta_affect_output(self, rng):
        bn = BatchNorm2d(1)
        bn.gamma.data[:] = 2.0
        bn.beta.data[:] = 1.0
        x = rng.normal(size=(8, 1, 2, 2))
        out = bn(Tensor(x)).data
        np.testing.assert_allclose(out.mean(), 1.0, atol=1e-7)

    def test_rejects_non_4d(self, rng):
        with pytest.raises(ValueError):
            BatchNorm2d(2)(Tensor(rng.normal(size=(4, 2))))

    def test_gradients_flow_through(self, rng):
        bn = BatchNorm2d(2)
        x = Tensor(rng.normal(size=(4, 2, 3, 3)), requires_grad=True)
        bn(x).sum().backward()
        assert x.grad is not None
        assert bn.gamma.grad is not None
        assert bn.beta.grad is not None


class TestSequential:
    def test_applies_in_order(self, rng):
        model = Sequential(Linear(4, 8, rng), ReLU(), Linear(8, 2, rng))
        assert model(Tensor(rng.normal(size=(3, 4)))).shape == (3, 2)

    def test_len_and_getitem(self, rng):
        model = Sequential(Linear(2, 2, rng), ReLU())
        assert len(model) == 2
        assert isinstance(model[1], ReLU)

    def test_iteration(self, rng):
        model = Sequential(Linear(2, 2, rng), ReLU())
        assert [type(m).__name__ for m in model] == ["Linear", "ReLU"]

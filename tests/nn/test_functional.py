"""Convolution / pooling / softmax functional primitives."""

import numpy as np
import pytest

from repro.nn import Tensor
from repro.nn import functional as F

from ..conftest import numeric_grad


def reference_conv2d(x, w, b, stride, padding):
    """Naive loop convolution for value cross-checks."""
    n, c_in, h, w_in = x.shape
    c_out, _, kh, kw = w.shape
    xp = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    h_out = (h + 2 * padding - kh) // stride + 1
    w_out = (w_in + 2 * padding - kw) // stride + 1
    out = np.zeros((n, c_out, h_out, w_out))
    for ni in range(n):
        for co in range(c_out):
            for i in range(h_out):
                for j in range(w_out):
                    patch = xp[ni, :, i * stride : i * stride + kh, j * stride : j * stride + kw]
                    out[ni, co, i, j] = (patch * w[co]).sum() + (b[co] if b is not None else 0.0)
    return out


class TestConv2dForward:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 0), (2, 1), (3, 2)])
    def test_matches_reference(self, rng, stride, padding):
        x = rng.normal(size=(2, 3, 7, 7))
        w = rng.normal(size=(4, 3, 3, 3))
        b = rng.normal(size=(4,))
        out = F.conv2d(Tensor(x), Tensor(w), Tensor(b), stride=stride, padding=padding)
        expected = reference_conv2d(x, w, b, stride, padding)
        np.testing.assert_allclose(out.data, expected, atol=1e-10)

    def test_no_bias(self, rng):
        x = rng.normal(size=(1, 2, 5, 5))
        w = rng.normal(size=(3, 2, 3, 3))
        out = F.conv2d(Tensor(x), Tensor(w))
        expected = reference_conv2d(x, w, None, 1, 0)
        np.testing.assert_allclose(out.data, expected, atol=1e-10)

    def test_output_shape(self, rng):
        out = F.conv2d(
            Tensor(rng.normal(size=(2, 1, 28, 28))),
            Tensor(rng.normal(size=(6, 1, 5, 5))),
        )
        assert out.shape == (2, 6, 24, 24)

    def test_channel_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            F.conv2d(Tensor(rng.normal(size=(1, 2, 5, 5))),
                     Tensor(rng.normal(size=(3, 4, 3, 3))))

    def test_bad_dims_raise(self, rng):
        with pytest.raises(ValueError):
            F.conv2d(Tensor(rng.normal(size=(2, 5, 5))),
                     Tensor(rng.normal(size=(3, 2, 3, 3))))

    def test_kernel_too_large_raises(self, rng):
        with pytest.raises(ValueError):
            F.conv2d(Tensor(rng.normal(size=(1, 1, 2, 2))),
                     Tensor(rng.normal(size=(1, 1, 5, 5))))


class TestConv2dBackward:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (2, 1)])
    def test_input_grad(self, rng, stride, padding):
        x_val = rng.normal(size=(2, 2, 6, 6))
        w_val = rng.normal(size=(3, 2, 3, 3))
        b_val = rng.normal(size=(3,))
        x = Tensor(x_val.copy(), requires_grad=True)
        out = F.conv2d(x, Tensor(w_val), Tensor(b_val), stride=stride, padding=padding)
        (out * out).sum().backward()

        def f(v):
            o = reference_conv2d(v, w_val, b_val, stride, padding)
            return (o * o).sum()

        expected = numeric_grad(f, x_val.copy(), eps=1e-6)
        np.testing.assert_allclose(x.grad, expected, atol=1e-4)

    def test_weight_grad(self, rng):
        x_val = rng.normal(size=(2, 2, 5, 5))
        w_val = rng.normal(size=(3, 2, 3, 3))
        w = Tensor(w_val.copy(), requires_grad=True)
        out = F.conv2d(Tensor(x_val), w, None, stride=1, padding=1)
        (out * out).sum().backward()

        def f(v):
            o = reference_conv2d(x_val, v, None, 1, 1)
            return (o * o).sum()

        expected = numeric_grad(f, w_val.copy(), eps=1e-6)
        np.testing.assert_allclose(w.grad, expected, atol=1e-4)

    def test_bias_grad(self, rng):
        x_val = rng.normal(size=(2, 2, 4, 4))
        w_val = rng.normal(size=(3, 2, 3, 3))
        b = Tensor(np.zeros(3), requires_grad=True)
        out = F.conv2d(Tensor(x_val), Tensor(w_val), b)
        out.sum().backward()
        # d(sum)/db_c = number of output positions per channel
        np.testing.assert_allclose(b.grad, np.full(3, 2 * 2 * 2))


class TestPooling:
    def test_max_pool_values(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = F.max_pool2d(Tensor(x), 2)
        np.testing.assert_allclose(out.data, [[[[5, 7], [13, 15]]]])

    def test_max_pool_grad_goes_to_max_only(self):
        x = Tensor(np.arange(16, dtype=float).reshape(1, 1, 4, 4), requires_grad=True)
        F.max_pool2d(x, 2).sum().backward()
        expected = np.zeros((1, 1, 4, 4))
        expected[0, 0, 1, 1] = expected[0, 0, 1, 3] = 1
        expected[0, 0, 3, 1] = expected[0, 0, 3, 3] = 1
        np.testing.assert_allclose(x.grad, expected)

    def test_max_pool_indivisible_raises(self, rng):
        with pytest.raises(ValueError):
            F.max_pool2d(Tensor(rng.normal(size=(1, 1, 5, 5))), 2)

    def test_max_pool_gradcheck(self, rng):
        x_val = rng.normal(size=(2, 2, 4, 4))
        x = Tensor(x_val.copy(), requires_grad=True)
        (F.max_pool2d(x, 2) ** 2).sum().backward()

        def f(v):
            windows = v.reshape(2, 2, 2, 2, 2, 2).transpose(0, 1, 2, 4, 3, 5)
            pooled = windows.reshape(2, 2, 2, 2, 4).max(axis=-1)
            return (pooled ** 2).sum()

        expected = numeric_grad(f, x_val.copy())
        np.testing.assert_allclose(x.grad, expected, atol=1e-5)

    def test_avg_pool_values(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = F.avg_pool2d(Tensor(x), 2)
        np.testing.assert_allclose(out.data, [[[[2.5, 4.5], [10.5, 12.5]]]])

    def test_avg_pool_indivisible_raises(self, rng):
        with pytest.raises(ValueError):
            F.avg_pool2d(Tensor(rng.normal(size=(1, 1, 6, 5))), 2)

    def test_global_avg_pool(self, rng):
        x = rng.normal(size=(2, 3, 4, 4))
        out = F.global_avg_pool2d(Tensor(x))
        np.testing.assert_allclose(out.data, x.mean(axis=(2, 3)))


class TestSoftmax:
    def test_log_softmax_matches_scipy_style(self, rng):
        x = rng.normal(size=(4, 5)) * 10
        out = F.log_softmax(Tensor(x), axis=1).data
        shifted = x - x.max(axis=1, keepdims=True)
        expected = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        np.testing.assert_allclose(out, expected, atol=1e-12)

    def test_log_softmax_stable_for_huge_logits(self):
        x = Tensor(np.array([[1000.0, 0.0], [0.0, -1000.0]]))
        out = F.log_softmax(x, axis=1).data
        assert np.isfinite(out).all()

    def test_softmax_sums_to_one(self, rng):
        probs = F.softmax(Tensor(rng.normal(size=(3, 7))), axis=1).data
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(3))
        assert (probs >= 0).all()

    def test_temperature_smooths(self, rng):
        x = Tensor(rng.normal(size=(1, 10)) * 5)
        sharp = F.softmax(x, axis=1, temperature=1.0).data
        smooth = F.softmax(x, axis=1, temperature=10.0).data
        assert smooth.max() < sharp.max()
        assert smooth.var() < sharp.var()

    def test_invalid_temperature_raises(self):
        with pytest.raises(ValueError):
            F.softmax(Tensor(np.ones((1, 2))), temperature=0.0)

    def test_log_softmax_gradcheck(self, rng):
        x_val = rng.normal(size=(2, 4))
        x = Tensor(x_val.copy(), requires_grad=True)
        (F.log_softmax(x, axis=1) ** 2).sum().backward()

        def f(v):
            shifted = v - v.max(axis=1, keepdims=True)
            ls = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
            return (ls ** 2).sum()

        expected = numeric_grad(f, x_val.copy())
        np.testing.assert_allclose(x.grad, expected, atol=1e-5)


class TestOneHotDropoutLinear:
    def test_one_hot(self):
        out = F.one_hot(np.array([0, 2, 1]), 3)
        np.testing.assert_allclose(out, np.eye(3)[[0, 2, 1]])

    def test_one_hot_out_of_range(self):
        with pytest.raises(ValueError):
            F.one_hot(np.array([3]), 3)

    def test_one_hot_requires_1d(self):
        with pytest.raises(ValueError):
            F.one_hot(np.zeros((2, 2), dtype=int), 3)

    def test_dropout_eval_is_identity(self, rng):
        x = Tensor(rng.normal(size=(5, 5)))
        out = F.dropout(x, 0.5, rng, training=False)
        assert out is x

    def test_dropout_zero_p_is_identity(self, rng):
        x = Tensor(rng.normal(size=(5, 5)))
        assert F.dropout(x, 0.0, rng, training=True) is x

    def test_dropout_scales_survivors(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((100, 100)))
        out = F.dropout(x, 0.5, rng, training=True).data
        kept = out[out > 0]
        np.testing.assert_allclose(kept, 2.0)
        assert abs((out > 0).mean() - 0.5) < 0.05

    def test_dropout_invalid_p(self, rng):
        with pytest.raises(ValueError):
            F.dropout(Tensor(np.ones(2)), 1.0, rng)

    def test_linear(self, rng):
        x = rng.normal(size=(3, 4))
        w = rng.normal(size=(2, 4))
        b = rng.normal(size=(2,))
        out = F.linear(Tensor(x), Tensor(w), Tensor(b))
        np.testing.assert_allclose(out.data, x @ w.T + b)

    def test_flatten_images(self, rng):
        x = rng.normal(size=(5, 3, 4, 4))
        assert F.flatten_images(x).shape == (5, 48)


class TestFusedLogSoftmax:
    """log_softmax runs as one fused graph node whose backward reuses the
    forward's exp/sum intermediates.  The fusion must be invisible: values
    AND gradients bit-identical to the composed sub/exp/sum/log/sub graph
    it replaced (so every training trajectory in the repo is unmoved)."""

    @staticmethod
    def composed_log_softmax(x, axis=-1):
        # The pre-fusion implementation, kept here as the reference.
        shift = Tensor(x.data.max(axis=axis, keepdims=True))
        shifted = x - shift
        return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()

    @pytest.mark.parametrize("axis", [1, -1])
    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_forward_and_backward_bit_identical_to_composed(self, rng, axis, dtype):
        x_val = (rng.normal(size=(16, 7)) * 5).astype(dtype)
        labels = np.arange(16) % 7

        fused_in = Tensor(x_val.copy(), requires_grad=True)
        composed_in = Tensor(x_val.copy(), requires_grad=True)
        fused = F.log_softmax(fused_in, axis=axis)
        composed = self.composed_log_softmax(composed_in, axis=axis)
        np.testing.assert_array_equal(fused.data, composed.data)

        # Cross-entropy-shaped downstream graph (the training hot path).
        (-(fused[np.arange(16), labels])).mean().backward()
        (-(composed[np.arange(16), labels])).mean().backward()
        np.testing.assert_array_equal(fused_in.grad, composed_in.grad)

    def test_backward_bit_identical_under_dense_upstream_grad(self, rng):
        # A gradient flowing into every output element (not just the
        # picked labels) exercises the summed broadcast path.
        x_val = rng.normal(size=(5, 6))
        fused_in = Tensor(x_val.copy(), requires_grad=True)
        composed_in = Tensor(x_val.copy(), requires_grad=True)
        (F.log_softmax(fused_in, axis=1) ** 2).sum().backward()
        (self.composed_log_softmax(composed_in, axis=1) ** 2).sum().backward()
        np.testing.assert_array_equal(fused_in.grad, composed_in.grad)

    def test_no_grad_produces_plain_tensor(self, rng):
        from repro.nn.tensor import no_grad

        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        with no_grad():
            out = F.log_softmax(x, axis=1)
        assert not out.requires_grad

    def test_gradient_sums_to_zero_per_row(self, rng):
        # Softmax gradient identity: rows of d(log_softmax)/dx sum to 0
        # when the upstream gradient is uniform over a row's element.
        x = Tensor(rng.normal(size=(4, 5)), requires_grad=True)
        F.log_softmax(x, axis=1).sum().backward()
        np.testing.assert_allclose(x.grad.sum(axis=1), np.zeros(4), atol=1e-12)

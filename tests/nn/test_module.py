"""Module registration, traversal and state-dict semantics."""

import numpy as np
import pytest

from repro.nn import Linear, Module, Parameter, Sequential, Tensor
from repro.nn.layers import BatchNorm2d


class Toy(Module):
    def __init__(self, rng):
        super().__init__()
        self.fc1 = Linear(4, 3, rng)
        self.fc2 = Linear(3, 2, rng)
        self.scale = Parameter(np.ones(1))

    def forward(self, x):
        return self.fc2(self.fc1(x)) * self.scale


class TestRegistration:
    def test_parameters_found(self, rng):
        model = Toy(rng)
        names = dict(model.named_parameters())
        assert set(names) == {
            "fc1.weight", "fc1.bias", "fc2.weight", "fc2.bias", "scale"
        }

    def test_num_parameters(self, rng):
        model = Toy(rng)
        assert model.num_parameters() == 4 * 3 + 3 + 3 * 2 + 2 + 1

    def test_modules_traversal(self, rng):
        model = Toy(rng)
        kinds = [type(m).__name__ for m in model.modules()]
        assert kinds == ["Toy", "Linear", "Linear"]

    def test_named_modules_prefixes(self, rng):
        model = Toy(rng)
        names = [name for name, _ in model.named_modules()]
        assert names == ["", "fc1", "fc2"]

    def test_nested_sequential_names(self, rng):
        model = Sequential(Linear(2, 2, rng), Sequential(Linear(2, 2, rng)))
        names = {name for name, _ in model.named_parameters()}
        assert "layer0.weight" in names
        assert "layer1.layer0.weight" in names


class TestTrainEval:
    def test_mode_propagates(self, rng):
        model = Toy(rng)
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_zero_grad(self, rng):
        model = Toy(rng)
        out = model(Tensor(np.ones((2, 4))))
        out.sum().backward()
        assert all(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())


class TestStateDict:
    def test_roundtrip_restores_values(self, rng):
        model = Toy(rng)
        state = model.state_dict()
        for p in model.parameters():
            p.data += 1.0
        model.load_state_dict(state)
        for name, p in model.named_parameters():
            np.testing.assert_allclose(p.data, state[name])

    def test_state_dict_is_a_copy(self, rng):
        model = Toy(rng)
        state = model.state_dict()
        state["scale"][0] = 123.0
        assert model.scale.data[0] != 123.0

    def test_load_missing_key_raises(self, rng):
        model = Toy(rng)
        state = model.state_dict()
        del state["scale"]
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_load_unexpected_key_raises(self, rng):
        model = Toy(rng)
        state = model.state_dict()
        state["ghost"] = np.ones(1)
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_load_shape_mismatch_raises(self, rng):
        model = Toy(rng)
        state = model.state_dict()
        state["scale"] = np.ones(5)
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_buffers_in_state_dict(self):
        bn = BatchNorm2d(3)
        state = bn.state_dict()
        assert "running_mean" in state and "running_var" in state

    def test_buffer_roundtrip(self, rng):
        bn = BatchNorm2d(2)
        bn(Tensor(rng.normal(size=(4, 2, 3, 3))))  # updates running stats
        state = bn.state_dict()
        bn2 = BatchNorm2d(2)
        bn2.load_state_dict(state)
        np.testing.assert_allclose(bn2.running_mean, bn.running_mean)
        np.testing.assert_allclose(bn2.running_var, bn.running_var)

    def test_set_unknown_buffer_raises(self):
        bn = BatchNorm2d(2)
        with pytest.raises(KeyError):
            bn._set_buffer("nope", np.ones(2))


class TestForwardContract:
    def test_base_forward_raises(self):
        with pytest.raises(NotImplementedError):
            Module()(1)

    def test_repr_contains_children(self, rng):
        assert "Linear" in repr(Toy(rng))

"""Loss function values, gradients and edge cases."""

import numpy as np
import pytest

from repro.nn import Tensor
from repro.nn import functional as F
from repro.nn import losses as L

from ..conftest import numeric_grad


def manual_ce(logits, labels):
    shifted = logits - logits.max(axis=1, keepdims=True)
    log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    return -log_probs[np.arange(len(labels)), labels]


class TestCrossEntropy:
    def test_value_matches_manual(self, rng):
        logits = rng.normal(size=(6, 4))
        labels = rng.integers(0, 4, size=6)
        loss = L.cross_entropy(Tensor(logits), labels)
        np.testing.assert_allclose(loss.item(), manual_ce(logits, labels).mean())

    def test_sum_reduction(self, rng):
        logits = rng.normal(size=(6, 4))
        labels = rng.integers(0, 4, size=6)
        loss = L.cross_entropy(Tensor(logits), labels, reduction="sum")
        np.testing.assert_allclose(loss.item(), manual_ce(logits, labels).sum())

    def test_none_reduction_shape(self, rng):
        logits = rng.normal(size=(6, 4))
        labels = rng.integers(0, 4, size=6)
        loss = L.cross_entropy(Tensor(logits), labels, reduction="none")
        assert loss.shape == (6,)

    def test_unknown_reduction(self, rng):
        with pytest.raises(ValueError):
            L.cross_entropy(Tensor(rng.normal(size=(2, 3))), np.array([0, 1]),
                            reduction="bogus")

    def test_perfect_prediction_near_zero(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        loss = L.cross_entropy(Tensor(logits), np.array([0, 1]))
        assert loss.item() < 1e-6

    def test_gradcheck(self, rng):
        logits_val = rng.normal(size=(3, 4))
        labels = np.array([1, 0, 3])
        x = Tensor(logits_val.copy(), requires_grad=True)
        L.cross_entropy(x, labels).backward()
        expected = numeric_grad(lambda v: manual_ce(v, labels).mean(), logits_val.copy())
        np.testing.assert_allclose(x.grad, expected, atol=1e-5)

    def test_label_validation(self, rng):
        logits = Tensor(rng.normal(size=(2, 3)))
        with pytest.raises(ValueError):
            L.cross_entropy(logits, np.array([0, 5]))
        with pytest.raises(ValueError):
            L.cross_entropy(logits, np.array([0]))
        with pytest.raises(ValueError):
            L.cross_entropy(logits, np.array([[0], [1]]))

    def test_logits_must_be_2d(self, rng):
        with pytest.raises(ValueError):
            L.cross_entropy(Tensor(rng.normal(size=(2, 3, 4))), np.array([0, 1]))


class TestNLL:
    def test_nll_on_log_probs(self, rng):
        logits = rng.normal(size=(4, 3))
        labels = rng.integers(0, 3, size=4)
        log_probs = F.log_softmax(Tensor(logits), axis=1)
        loss = L.nll_loss(log_probs, labels)
        np.testing.assert_allclose(loss.item(), manual_ce(logits, labels).mean())

    def test_nll_from_logits_equals_ce(self, rng):
        logits = rng.normal(size=(4, 3))
        labels = rng.integers(0, 3, size=4)
        a = L.nll_from_logits(Tensor(logits), labels).item()
        b = L.cross_entropy(Tensor(logits), labels).item()
        np.testing.assert_allclose(a, b)


class TestFocal:
    def test_gamma_zero_equals_ce(self, rng):
        logits = rng.normal(size=(5, 4))
        labels = rng.integers(0, 4, size=5)
        focal = L.focal_loss(Tensor(logits), labels, gamma=0.0).item()
        ce = L.cross_entropy(Tensor(logits), labels).item()
        np.testing.assert_allclose(focal, ce)

    def test_downweights_easy_examples(self):
        easy = np.array([[10.0, 0.0]])
        hard = np.array([[0.5, 0.0]])
        labels = np.array([0])
        ratio_focal = (
            L.focal_loss(Tensor(hard), labels).item()
            / max(L.focal_loss(Tensor(easy), labels).item(), 1e-30)
        )
        ratio_ce = (
            L.cross_entropy(Tensor(hard), labels).item()
            / L.cross_entropy(Tensor(easy), labels).item()
        )
        assert ratio_focal > ratio_ce

    def test_negative_gamma_raises(self, rng):
        with pytest.raises(ValueError):
            L.focal_loss(Tensor(rng.normal(size=(2, 3))), np.array([0, 1]), gamma=-1)

    def test_gradients_flow(self, rng):
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        L.focal_loss(x, np.array([0, 1, 2])).backward()
        assert x.grad is not None and np.isfinite(x.grad).all()


class TestDistillation:
    def test_zero_when_identical(self, rng):
        logits = rng.normal(size=(4, 5))
        loss = L.distillation_loss(Tensor(logits), Tensor(logits.copy()), temperature=3.0)
        # Ld = cross-entropy of identical distributions = entropy > 0; check
        # it equals the teacher entropy exactly.
        probs = F.softmax(Tensor(logits), axis=1, temperature=3.0).data
        entropy = -(probs * np.log(probs)).sum(axis=1).mean()
        np.testing.assert_allclose(loss.item(), entropy, atol=1e-10)

    def test_increases_with_disagreement(self, rng):
        teacher = rng.normal(size=(4, 5))
        near = teacher + rng.normal(scale=0.01, size=(4, 5))
        far = teacher + rng.normal(scale=5.0, size=(4, 5))
        loss_near = L.distillation_loss(Tensor(teacher), Tensor(near)).item()
        loss_far = L.distillation_loss(Tensor(teacher), Tensor(far)).item()
        assert loss_far > loss_near

    def test_no_gradient_into_teacher(self, rng):
        teacher = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        student = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        L.distillation_loss(teacher, student).backward()
        assert teacher.grad is None
        assert student.grad is not None

    def test_shape_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            L.distillation_loss(Tensor(rng.normal(size=(2, 3))),
                                Tensor(rng.normal(size=(2, 4))))

    def test_gradcheck(self, rng):
        teacher = rng.normal(size=(2, 3))
        student_val = rng.normal(size=(2, 3))
        s = Tensor(student_val.copy(), requires_grad=True)
        L.distillation_loss(Tensor(teacher), s, temperature=2.0).backward()

        def f(v):
            def logsm(z):
                sh = z - z.max(axis=1, keepdims=True)
                return sh - np.log(np.exp(sh).sum(axis=1, keepdims=True))
            t_probs = np.exp(logsm(teacher / 2.0))
            return -(t_probs * logsm(v / 2.0)).sum(axis=1).mean()

        expected = numeric_grad(f, student_val.copy())
        np.testing.assert_allclose(s.grad, expected, atol=1e-5)


class TestMSE:
    def test_value(self, rng):
        a = rng.normal(size=(3, 4))
        b = rng.normal(size=(3, 4))
        loss = L.mse_loss(Tensor(a), Tensor(b))
        np.testing.assert_allclose(loss.item(), ((a - b) ** 2).mean())

    def test_zero_for_identical(self, rng):
        a = rng.normal(size=(3, 4))
        assert L.mse_loss(Tensor(a), Tensor(a.copy())).item() == 0.0


class TestLabelSmoothing:
    def test_zero_smoothing_equals_cross_entropy(self, rng):
        logits = Tensor(rng.normal(size=(6, 4)))
        labels = rng.integers(0, 4, size=6)
        smoothed = L.label_smoothing_loss(logits, labels, smoothing=0.0)
        plain = L.cross_entropy(Tensor(logits.data.copy()), labels)
        assert smoothed.item() == pytest.approx(plain.item(), rel=1e-10)

    def test_smoothing_penalises_overconfidence(self):
        """On a correctly-classified sample, a saturated prediction costs
        MORE than a moderately confident one once smoothing is on."""
        labels = np.array([0])
        saturated = Tensor(np.array([[30.0, 0.0, 0.0]]))
        moderate = Tensor(np.array([[3.0, 0.0, 0.0]]))
        loss_saturated = L.label_smoothing_loss(saturated, labels, smoothing=0.2)
        loss_moderate = L.label_smoothing_loss(moderate, labels, smoothing=0.2)
        assert loss_saturated.item() > loss_moderate.item()

    def test_gradient_matches_numeric(self, rng):
        logits_data = rng.normal(size=(3, 4))
        labels = np.array([0, 2, 1])

        def fn(x):
            return L.label_smoothing_loss(Tensor(x.copy()), labels, 0.1).item()

        logits = Tensor(logits_data.copy(), requires_grad=True)
        L.label_smoothing_loss(logits, labels, 0.1).backward()
        from ..conftest import numeric_grad

        numeric = numeric_grad(fn, logits_data)
        np.testing.assert_allclose(logits.grad, numeric, atol=1e-6)

    def test_invalid_smoothing(self, rng):
        logits = Tensor(rng.normal(size=(2, 3)))
        labels = np.array([0, 1])
        with pytest.raises(ValueError):
            L.label_smoothing_loss(logits, labels, smoothing=1.0)
        with pytest.raises(ValueError):
            L.label_smoothing_loss(logits, labels, smoothing=-0.1)


class TestHardLossRegistry:
    def test_contains_paper_variants_plus_delta(self):
        assert set(L.HARD_LOSSES) == {
            "cross_entropy", "focal", "nll", "label_smoothing"
        }

    def test_lookup(self):
        assert L.get_hard_loss("cross_entropy") is L.cross_entropy
        assert L.get_hard_loss("label_smoothing") is L.label_smoothing_loss

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            L.get_hard_loss("hinge")

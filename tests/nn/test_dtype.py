"""float32 end-to-end: model and optimizer state follow the dataset dtype.

``ArrayDataset(dtype=np.float32)`` has been opt-in since the runtime PR,
but parameters were pinned to float64, so the im2col hot path upcast at
the first parameter contraction.  Now :func:`repro.training.trainer.train`
moves the model to the dataset's floating dtype (``Module.astype``), the
optimizer state follows through ``zeros_like``, and state loads preserve
the cast.  The float64 default is a no-op cast — bit-identical to the
historical path.
"""

import numpy as np

from repro.data import FederatedDataset
from repro.federated import FedAvgAggregator, FederatedSimulation
from repro.nn.models import MLP, RegistryModelFactory
from repro.nn.optim import Adam
from repro.training import TrainConfig
from repro.training.trainer import make_optimizer, train

from ..conftest import make_blob_federation, make_blobs

CONFIG = TrainConfig(epochs=2, batch_size=10, learning_rate=0.1, momentum=0.9)


def fresh_model(seed=42):
    return MLP(16, 3, np.random.default_rng(seed))


def dataset(dtype=None, seed=0):
    data = make_blobs(num_samples=80, num_classes=3, shape=(1, 4, 4), seed=seed)
    if dtype is None:
        return data
    return type(data)(
        images=data.images, labels=data.labels,
        num_classes=data.num_classes, dtype=dtype,
    )


class TestModuleAstype:
    def test_parameters_and_buffers_cast(self):
        model = fresh_model()
        model.astype(np.float32)
        assert model.dtype == np.float32
        for _, param in model.named_parameters():
            assert param.data.dtype == np.float32
        for _, buf in model.named_buffers():
            if np.issubdtype(buf.dtype, np.floating):
                assert buf.dtype == np.float32

    def test_load_state_dict_preserves_module_dtype(self):
        float64_state = fresh_model().state_dict()
        model = fresh_model().astype(np.float32)
        model.load_state_dict(float64_state)  # float64 payload
        assert all(
            param.data.dtype == np.float32 for param in model.parameters()
        )
        # And the float64 default still loads float32 payloads as float64.
        reference = fresh_model()
        reference.load_state_dict(
            {k: v.astype(np.float32) for k, v in float64_state.items()}
        )
        assert all(
            param.data.dtype == np.float64 for param in reference.parameters()
        )

    def test_non_floating_dtype_rejected(self):
        import pytest

        with pytest.raises(ValueError, match="floating"):
            fresh_model().astype(np.int64)


class TestTrainingFollowsDatasetDtype:
    def test_float64_default_bit_identical(self):
        first, second = fresh_model(), fresh_model()
        train(first, dataset(), CONFIG, np.random.default_rng(0))
        train(second, dataset(), CONFIG, np.random.default_rng(0))
        state = first.state_dict()
        assert all(v.dtype == np.float64 for v in state.values())
        for key, value in second.state_dict().items():
            np.testing.assert_array_equal(state[key], value)

    def test_float32_dataset_trains_float32_model(self):
        model = fresh_model()
        optimizer = make_optimizer(model, CONFIG)
        history = train(
            model, dataset(np.float32), CONFIG, np.random.default_rng(0),
            optimizer=optimizer,
        )
        assert all(v.dtype == np.float32 for v in model.state_dict().values())
        # Optimizer state followed (momentum buffers built lazily).
        assert any(v is not None for v in optimizer._velocity)
        assert all(
            v is None or v.dtype == np.float32 for v in optimizer._velocity
        )
        assert np.isfinite(history.epochs[-1].mean_loss)

    def test_adam_state_follows_dtype(self):
        model = fresh_model()
        optimizer = Adam(model.parameters(), lr=1e-2)
        train(
            model, dataset(np.float32), CONFIG, np.random.default_rng(0),
            optimizer=optimizer,
        )
        assert all(m is None or m.dtype == np.float32 for m in optimizer._m)
        assert all(v is None or v.dtype == np.float32 for v in optimizer._v)

    def test_float32_close_to_float64(self):
        """Same run at both precisions: small numerical drift only."""
        reference, low = fresh_model(), fresh_model()
        train(reference, dataset(), CONFIG, np.random.default_rng(0))
        train(low, dataset(np.float32), CONFIG, np.random.default_rng(0))
        for key, value in reference.state_dict().items():
            np.testing.assert_allclose(
                value, low.state_dict()[key], rtol=5e-2, atol=5e-3
            )

    def test_forward_hot_path_stays_float32(self):
        """No op in the forward graph silently upcasts activations."""
        from repro.nn import Tensor

        model = fresh_model()
        model.astype(np.float32)
        images = dataset(np.float32).images[:8]
        logits = model(Tensor(images))
        assert logits.dtype == np.float32


class TestFederatedFloat32:
    def test_round_runs_and_aggregates(self):
        clients, test = make_blob_federation(
            3, per_client=24, test_size=30, seed=0
        )
        to32 = lambda d: type(d)(
            images=d.images, labels=d.labels, num_classes=d.num_classes,
            dtype=np.float32,
        )
        fed = FederatedDataset(
            client_datasets=[to32(c) for c in clients], test_set=to32(test)
        )
        factory = RegistryModelFactory(
            name="mlp", num_classes=3, in_channels=1, image_size=4
        )
        sim = FederatedSimulation(
            factory, fed,
            FedAvgAggregator(),
            TrainConfig(epochs=1, batch_size=8, learning_rate=0.1),
            seed=0,
        )
        history = sim.run(2)
        assert np.isfinite(history.rounds[-1].global_loss)
        assert 0.0 <= history.final_accuracy <= 1.0

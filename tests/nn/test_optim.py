"""Optimizer step math, clipping, scheduling."""

import numpy as np
import pytest

from repro.nn import SGD, Adam, StepLR, clip_grad_norm
from repro.nn.module import Parameter
from repro.unlearning.baselines import DiagonalFIMSGD


def param_with_grad(value, grad):
    p = Parameter(np.array(value, dtype=np.float64))
    p.grad = np.array(grad, dtype=np.float64)
    return p


class TestSGD:
    def test_vanilla_step(self):
        p = param_with_grad([1.0], [0.5])
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [1.0 - 0.1 * 0.5])

    def test_momentum_accumulates(self):
        p = param_with_grad([0.0], [1.0])
        opt = SGD([p], lr=1.0, momentum=0.9)
        opt.step()  # v = 1, p = -1
        p.grad = np.array([1.0])
        opt.step()  # v = 1.9, p = -2.9
        np.testing.assert_allclose(p.data, [-2.9])

    def test_weight_decay(self):
        p = param_with_grad([2.0], [0.0])
        SGD([p], lr=0.1, weight_decay=0.5).step()
        np.testing.assert_allclose(p.data, [2.0 - 0.1 * 0.5 * 2.0])

    def test_skips_none_grads(self):
        p = Parameter(np.array([1.0]))
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [1.0])

    def test_zero_grad(self):
        p = param_with_grad([1.0], [1.0])
        opt = SGD([p], lr=0.1)
        opt.zero_grad()
        assert p.grad is None

    def test_validation(self):
        p = Parameter(np.ones(1))
        with pytest.raises(ValueError):
            SGD([], lr=0.1)
        with pytest.raises(ValueError):
            SGD([p], lr=0.0)
        with pytest.raises(ValueError):
            SGD([p], lr=0.1, momentum=1.0)
        with pytest.raises(ValueError):
            SGD([p], lr=0.1, weight_decay=-1)


class TestAdam:
    def test_first_step_size_is_lr(self):
        # With bias correction, the first Adam step ≈ lr * sign(grad).
        p = param_with_grad([0.0], [3.0])
        Adam([p], lr=0.01).step()
        np.testing.assert_allclose(p.data, [-0.01], atol=1e-6)

    def test_converges_on_quadratic(self):
        p = Parameter(np.array([5.0]))
        opt = Adam([p], lr=0.1)
        for _ in range(300):
            p.grad = 2 * p.data  # d/dx x^2
            opt.step()
        assert abs(p.data[0]) < 1e-2

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.ones(1))], betas=(1.0, 0.9))


class TestDiagonalFIMSGD:
    def test_preconditions_toward_sign_step(self):
        # With constant gradient, FIM ≈ grad², so step ≈ lr * sign(grad).
        p = param_with_grad([0.0, 0.0], [4.0, 0.25])
        opt = DiagonalFIMSGD([p], lr=0.1, rho=0.0, damping=1e-8)
        opt.step()
        np.testing.assert_allclose(p.data, [-0.1, -0.1], atol=1e-6)

    def test_faster_than_sgd_on_ill_conditioned(self):
        # Quadratic with condition number 1e4.
        scales = np.array([1.0, 1e-2])

        def loss_grad(x):
            return 2 * scales * x

        start = np.array([1.0, 1.0])
        p1 = Parameter(start.copy())
        sgd = SGD([p1], lr=0.1)
        p2 = Parameter(start.copy())
        fim = DiagonalFIMSGD([p2], lr=0.1, rho=0.9)
        for _ in range(50):
            p1.grad = loss_grad(p1.data)
            sgd.step()
            p2.grad = loss_grad(p2.data)
            fim.step()
        loss1 = (scales * p1.data ** 2).sum()
        loss2 = (scales * p2.data ** 2).sum()
        assert loss2 < loss1

    def test_validation(self):
        p = Parameter(np.ones(1))
        with pytest.raises(ValueError):
            DiagonalFIMSGD([p], lr=0.1, rho=1.0)
        with pytest.raises(ValueError):
            DiagonalFIMSGD([p], lr=0.1, damping=0.0)


class TestClipGradNorm:
    def test_no_clip_below_threshold(self):
        p = param_with_grad([0.0], [0.5])
        norm = clip_grad_norm([p], max_norm=10.0)
        np.testing.assert_allclose(norm, 0.5)
        np.testing.assert_allclose(p.grad, [0.5])

    def test_clips_above_threshold(self):
        p = param_with_grad([0.0, 0.0], [3.0, 4.0])
        norm = clip_grad_norm([p], max_norm=1.0)
        np.testing.assert_allclose(norm, 5.0)
        np.testing.assert_allclose(np.sqrt((p.grad ** 2).sum()), 1.0)

    def test_global_norm_across_params(self):
        p1 = param_with_grad([0.0], [3.0])
        p2 = param_with_grad([0.0], [4.0])
        clip_grad_norm([p1, p2], max_norm=1.0)
        total = np.sqrt((p1.grad ** 2).sum() + (p2.grad ** 2).sum())
        np.testing.assert_allclose(total, 1.0)

    def test_invalid_max_norm(self):
        with pytest.raises(ValueError):
            clip_grad_norm([], max_norm=0.0)


class TestStepLR:
    def test_decays_on_schedule(self):
        p = Parameter(np.ones(1))
        opt = SGD([p], lr=1.0)
        sched = StepLR(opt, step_size=2, gamma=0.1)
        sched.step()
        assert opt.lr == 1.0
        sched.step()
        np.testing.assert_allclose(opt.lr, 0.1)
        sched.step()
        np.testing.assert_allclose(opt.lr, 0.1)
        sched.step()
        np.testing.assert_allclose(opt.lr, 0.01)

    def test_invalid_step_size(self):
        opt = SGD([Parameter(np.ones(1))], lr=1.0)
        with pytest.raises(ValueError):
            StepLR(opt, step_size=0)

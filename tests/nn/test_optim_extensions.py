"""AdamW, RMSprop and cosine-annealing schedule."""

import numpy as np
import pytest

from repro.nn import AdamW, Adam, CosineAnnealingLR, RMSprop, SGD, Parameter


def param(value, grad=None):
    p = Parameter(np.asarray(value, dtype=np.float64))
    if grad is not None:
        p.grad = np.asarray(grad, dtype=np.float64)
    return p


def quadratic_descend(optimizer_factory, steps=200):
    """Minimise ||x - 3||^2 and return the final x."""
    p = param([0.0, 0.0])
    optimizer = optimizer_factory([p])
    for _ in range(steps):
        p.grad = 2.0 * (p.data - 3.0)
        optimizer.step()
    return p.data


class TestAdamW:
    def test_converges_on_quadratic(self):
        final = quadratic_descend(lambda ps: AdamW(ps, lr=0.1))
        np.testing.assert_allclose(final, 3.0, atol=0.05)

    def test_decay_is_decoupled_from_adaptive_scaling(self):
        """With zero gradient, AdamW still shrinks weights (pure decay);
        Adam's coupled L2 feeds the decay through the moment estimates."""
        p_adamw = param([10.0], grad=[0.0])
        adamw = AdamW([p_adamw], lr=0.1, weight_decay=0.5)
        adamw.step()
        # Decoupled: exactly w -= lr * wd * w, then a (near-)zero Adam step.
        assert p_adamw.data[0] == pytest.approx(10.0 * (1 - 0.1 * 0.5), rel=1e-6)

    def test_weight_decay_restored_after_step(self):
        p = param([1.0], grad=[0.1])
        optimizer = AdamW([p], lr=0.01, weight_decay=0.3)
        optimizer.step()
        assert optimizer.weight_decay == 0.3

    def test_skips_parameters_without_grad(self):
        p = param([5.0])  # no grad
        optimizer = AdamW([p], lr=0.1, weight_decay=0.5)
        optimizer.step()
        assert p.data[0] == 5.0


class TestRMSprop:
    def test_converges_on_quadratic(self):
        final = quadratic_descend(lambda ps: RMSprop(ps, lr=0.05))
        np.testing.assert_allclose(final, 3.0, atol=0.05)

    def test_adapts_to_gradient_scale(self):
        """Per-coordinate normalisation: wildly different gradient scales
        produce comparable first-step sizes."""
        p = param([0.0, 0.0], grad=[100.0, 0.01])
        optimizer = RMSprop([p], lr=0.1, alpha=0.9)
        optimizer.step()
        steps = np.abs(p.data)
        assert steps[0] == pytest.approx(steps[1], rel=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            RMSprop([param([1.0])], lr=0.1, alpha=1.0)
        with pytest.raises(ValueError):
            RMSprop([param([1.0])], lr=0.1, weight_decay=-1.0)


class TestCosineAnnealing:
    def test_schedule_shape(self):
        p = param([0.0])
        optimizer = SGD([p], lr=1.0)
        scheduler = CosineAnnealingLR(optimizer, t_max=10, eta_min=0.1)
        rates = []
        for _ in range(10):
            scheduler.step()
            rates.append(optimizer.lr)
        # Monotone decreasing from below 1.0 down to eta_min.
        assert all(a > b for a, b in zip(rates, rates[1:]))
        assert rates[0] < 1.0
        assert rates[-1] == pytest.approx(0.1, abs=1e-12)

    def test_halfway_point(self):
        optimizer = SGD([param([0.0])], lr=2.0)
        scheduler = CosineAnnealingLR(optimizer, t_max=10)
        for _ in range(5):
            scheduler.step()
        assert optimizer.lr == pytest.approx(1.0)

    def test_clamps_beyond_t_max(self):
        optimizer = SGD([param([0.0])], lr=1.0)
        scheduler = CosineAnnealingLR(optimizer, t_max=4, eta_min=0.2)
        for _ in range(10):
            scheduler.step()
        assert optimizer.lr == pytest.approx(0.2, abs=1e-12)

    def test_validation(self):
        optimizer = SGD([param([0.0])], lr=1.0)
        with pytest.raises(ValueError):
            CosineAnnealingLR(optimizer, t_max=0)
        with pytest.raises(ValueError):
            CosineAnnealingLR(optimizer, t_max=5, eta_min=-0.1)


class TestCrossOptimizerBehaviour:
    @pytest.mark.parametrize("factory", [
        lambda ps: SGD(ps, lr=0.1, momentum=0.9),
        lambda ps: Adam(ps, lr=0.1),
        lambda ps: AdamW(ps, lr=0.1, weight_decay=0.01),
        lambda ps: RMSprop(ps, lr=0.05),
    ])
    def test_all_optimizers_reduce_quadratic_loss(self, factory):
        p = param([8.0])
        optimizer = factory([p])
        initial_loss = (p.data[0] - 3.0) ** 2
        for _ in range(50):
            p.grad = 2.0 * (p.data - 3.0)
            optimizer.step()
        assert (p.data[0] - 3.0) ** 2 < initial_loss * 0.1

"""Bitwise parity of the allocation-free optimizer hot paths.

The ``step`` implementations compute every temporary into reusable
scratch buffers (``out=`` ufuncs).  Only commutative operand swaps are
allowed — never re-associations — so each optimizer must reproduce a
straightforward reference implementation of the same update **bit for
bit**, for float64 and float32, with and without weight decay, across
many steps.
"""

import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.nn.optim import SGD, Adam, AdamW, RMSprop


# ----------------------------------------------------------------------
# Reference implementations: the historical expression-per-line forms.
# ----------------------------------------------------------------------
class RefSGD:
    def __init__(self, params, lr, momentum=0.0, weight_decay=0.0):
        self.params, self.lr = params, lr
        self.momentum, self.weight_decay = momentum, weight_decay
        self.velocity = [None] * len(params)

    def step(self):
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                if self.velocity[i] is None:
                    self.velocity[i] = np.zeros_like(p.data)
                v = self.velocity[i]
                v *= self.momentum
                v += grad
                grad = v
            p.data -= self.lr * grad


class RefAdam:
    def __init__(self, params, lr, betas=(0.9, 0.999), eps=1e-8, weight_decay=0.0):
        self.params, self.lr = params, lr
        self.beta1, self.beta2 = betas
        self.eps, self.weight_decay = eps, weight_decay
        self.t = 0
        self.m = [None] * len(params)
        self.v = [None] * len(params)

    def step(self):
        self.t += 1
        bias1 = 1.0 - self.beta1 ** self.t
        bias2 = 1.0 - self.beta2 ** self.t
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.m[i] is None:
                self.m[i] = np.zeros_like(p.data)
                self.v[i] = np.zeros_like(p.data)
            m, v = self.m[i], self.v[i]
            m *= self.beta1
            m += (1 - self.beta1) * grad
            v *= self.beta2
            v += (1 - self.beta2) * grad * grad
            p.data -= self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)


class RefAdamW(RefAdam):
    def step(self):
        if self.weight_decay:
            for p in self.params:
                if p.grad is not None:
                    p.data -= self.lr * self.weight_decay * p.data
        decay, self.weight_decay = self.weight_decay, 0.0
        try:
            super().step()
        finally:
            self.weight_decay = decay


class RefRMSprop:
    def __init__(self, params, lr, alpha=0.99, eps=1e-8, weight_decay=0.0):
        self.params, self.lr = params, lr
        self.alpha, self.eps, self.weight_decay = alpha, eps, weight_decay
        self.avg = [None] * len(params)

    def step(self):
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.avg[i] is None:
                self.avg[i] = np.zeros_like(p.data)
            a = self.avg[i]
            a *= self.alpha
            a += (1 - self.alpha) * grad * grad
            p.data -= self.lr * grad / (np.sqrt(a) + self.eps)


def _make_params(dtype, seed=0):
    rng = np.random.default_rng(seed)
    shapes = [(7, 5), (5,), (3, 7), (1,)]
    params = []
    for shape in shapes:
        param = Parameter(rng.normal(0.0, 0.5, size=shape))
        param.data = param.data.astype(dtype)
        params.append(param)
    return params


def _set_grads(params, rng, skip_one=False):
    for i, param in enumerate(params):
        if skip_one and i == 1:
            param.grad = None
            continue
        param.grad = rng.normal(0.0, 0.3, size=param.data.shape).astype(
            param.data.dtype
        )


CASES = [
    (SGD, RefSGD, {"lr": 0.05}),
    (SGD, RefSGD, {"lr": 0.05, "momentum": 0.9}),
    (SGD, RefSGD, {"lr": 0.05, "momentum": 0.9, "weight_decay": 1e-3}),
    (Adam, RefAdam, {"lr": 0.01}),
    (Adam, RefAdam, {"lr": 0.01, "weight_decay": 1e-3}),
    (AdamW, RefAdamW, {"lr": 0.01, "weight_decay": 1e-2}),
    (RMSprop, RefRMSprop, {"lr": 0.01}),
    (RMSprop, RefRMSprop, {"lr": 0.01, "weight_decay": 1e-3}),
]


class TestInPlaceParity:
    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    @pytest.mark.parametrize("cls,ref_cls,kwargs", CASES)
    def test_bitwise_parity_over_many_steps(self, cls, ref_cls, kwargs, dtype):
        fast_params = _make_params(dtype, seed=3)
        ref_params = _make_params(dtype, seed=3)
        fast = cls(fast_params, **kwargs)
        ref = ref_cls(ref_params, **kwargs)
        for step in range(25):
            grad_rng = np.random.default_rng(100 + step)
            _set_grads(fast_params, grad_rng, skip_one=(step % 5 == 0))
            grad_rng = np.random.default_rng(100 + step)
            _set_grads(ref_params, grad_rng, skip_one=(step % 5 == 0))
            fast.step()
            ref.step()
            for fast_param, ref_param in zip(fast_params, ref_params):
                np.testing.assert_array_equal(fast_param.data, ref_param.data)
                assert fast_param.data.dtype == np.dtype(dtype)

    def test_step_allocates_no_new_scratch_after_warmup(self):
        params = _make_params(np.float64, seed=1)
        opt = SGD(params, lr=0.05, momentum=0.9, weight_decay=1e-3)
        _set_grads(params, np.random.default_rng(0))
        opt.step()
        buffers = {key: id(buf) for key, buf in opt._scratch.items()}
        for step in range(5):
            _set_grads(params, np.random.default_rng(step))
            opt.step()
        assert {key: id(buf) for key, buf in opt._scratch.items()} == buffers

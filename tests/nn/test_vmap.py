"""Stacked-vs-looped parity for the vmap layer (:mod:`repro.nn.vmap`).

The vectorized client path's whole correctness story rests on one claim:
slice ``k`` of a stacked forward/backward/step is **bit-identical** to
client ``k``'s standalone run.  These tests pin that claim layer by
layer — values, gradients, optimizer trajectories and RNG streams — with
exact equality, not tolerances.
"""

import numpy as np
import pytest

from repro.nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    GroupNorm,
    Identity,
    LayerNorm,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
)
from repro.nn.losses import (
    cross_entropy,
    focal_loss,
    label_smoothing_loss,
    nll_from_logits,
)
from repro.nn.models import MLP, LeNet5, ModifiedLeNet5
from repro.nn.optim import SGD, StackedSGD
from repro.nn.tensor import Tensor
from repro.nn.vmap import (
    STACKED_LOSSES,
    VmapUnsupported,
    get_stacked_loss,
    stack_modules,
    stackable_reason,
    stacked_cross_entropy,
    stacked_focal_loss,
    stacked_label_smoothing_loss,
)

K = 3  # stack size used throughout
N = 4  # per-client batch size


def rngs(seed=0, count=K):
    return [np.random.default_rng(seed + i) for i in range(count)]


def stacked_input(shape, seed=7, dtype=np.float64):
    rng = np.random.default_rng(seed)
    return rng.normal(0.0, 1.0, size=(K,) + shape).astype(dtype)


def assert_exact(a, b):
    a = np.asarray(a)
    b = np.asarray(b)
    assert a.dtype == b.dtype
    np.testing.assert_array_equal(a, b)


def forward_backward_parity(members, stacked, x):
    """Run stacked vs per-member forward+backward; compare bit for bit.

    ``x`` is a ``(K, N, ...)`` array.  The backward seeds both paths with
    the same upstream gradient of ones (sum loss); input gradients are
    compared too, covering parameterless layers (pooling, ReLU).
    """
    stacked_in = Tensor(x, requires_grad=True)
    out = stacked(stacked_in)
    out.sum().backward()
    for k, member in enumerate(members):
        ref_in = Tensor(x[k].copy(), requires_grad=True)
        ref = member(ref_in)
        ref.sum().backward()
        assert_exact(out.data[k], ref.data)
        assert_exact(stacked_in.grad[k], ref_in.grad)
        stacked_params = list(stacked.parameters())
        member_params = list(member.parameters())
        assert len(stacked_params) == len(member_params)
        for sp, mp in zip(stacked_params, member_params):
            assert_exact(sp.grad[k], mp.grad)


class TestStackedLinear:
    def test_forward_backward_bit_exact(self):
        members = [Linear(5, 3, rng) for rng in rngs()]
        stacked = stack_modules(members)
        forward_backward_parity(members, stacked, stacked_input((N, 5)))

    def test_no_bias_variant(self):
        members = [Linear(5, 3, rng, bias=False) for rng in rngs()]
        stacked = stack_modules(members)
        forward_backward_parity(members, stacked, stacked_input((N, 5)))

    def test_float32_stays_float32(self):
        members = [Linear(5, 3, rng).astype(np.float32) for rng in rngs()]
        stacked = stack_modules(members)
        x = stacked_input((N, 5), dtype=np.float32)
        out = stacked(Tensor(x))
        assert out.data.dtype == np.float32
        forward_backward_parity(members, stacked, x)


class TestStackedConv2d:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (2, 1)])
    def test_forward_backward_bit_exact(self, stride, padding):
        members = [
            Conv2d(2, 4, 3, rng, stride=stride, padding=padding) for rng in rngs()
        ]
        stacked = stack_modules(members)
        forward_backward_parity(members, stacked, stacked_input((N, 2, 8, 8)))


class TestStackedPooling:
    @pytest.mark.parametrize("pool_cls", [MaxPool2d, AvgPool2d])
    def test_merged_batch_is_bit_exact(self, pool_cls):
        members = [pool_cls(2) for _ in range(K)]
        stacked = stack_modules(members)
        forward_backward_parity(members, stacked, stacked_input((N, 2, 6, 6)))


class TestStackedNorms:
    def test_layernorm_bit_exact(self):
        members = [LayerNorm(6) for _ in range(K)]
        # Give each member distinct affine parameters so parity is not
        # trivially satisfied by identical gammas.
        for i, member in enumerate(members):
            member.gamma.data = member.gamma.data * (1.0 + 0.1 * i)
            member.beta.data = member.beta.data + 0.05 * i
        stacked = stack_modules(members)
        forward_backward_parity(members, stacked, stacked_input((N, 6)))

    def test_groupnorm_bit_exact(self):
        members = [GroupNorm(2, 4) for _ in range(K)]
        for i, member in enumerate(members):
            member.gamma.data = member.gamma.data * (1.0 + 0.1 * i)
        stacked = stack_modules(members)
        forward_backward_parity(members, stacked, stacked_input((N, 4, 5, 5)))


class TestStackedDropout:
    def test_per_client_rng_streams_preserved(self):
        """Each slice's mask comes from its own generator, advancing it
        exactly as the standalone layer would."""
        generators = rngs(seed=100)
        members = [Dropout(0.4, rng) for rng in generators]
        stacked = stack_modules(members)
        stacked.train()
        x = stacked_input((N, 6))
        out = stacked(Tensor(x))

        reference = rngs(seed=100)
        for k, rng in enumerate(reference):
            ref_layer = Dropout(0.4, rng)
            ref_layer.train()
            ref_out = ref_layer(Tensor(x[k].copy()))
            assert_exact(out.data[k], ref_out.data)
            # The stacked pass left generator k exactly where the
            # standalone pass leaves its generator.
            assert generators[k].bit_generator.state == rng.bit_generator.state

    def test_eval_mode_is_identity(self):
        members = [Dropout(0.5, rng) for rng in rngs()]
        stacked = stack_modules(members)
        stacked.eval()
        x = stacked_input((N, 6))
        assert_exact(stacked(Tensor(x)).data, x)


class TestStackedSGD:
    def test_momentum_trajectory_bit_exact(self):
        """Three optimizer steps with momentum + weight decay: every
        slice's parameters track its standalone twin exactly."""
        members = [Linear(5, 3, rng) for rng in rngs()]
        twins = [Linear(5, 3, rng) for rng in rngs()]  # same init (same seeds)
        stacked = stack_modules(members)
        opt = StackedSGD(
            stacked.parameters(), lr=0.1, momentum=0.9, weight_decay=1e-3
        )
        twin_opts = [
            SGD(t.parameters(), lr=0.1, momentum=0.9, weight_decay=1e-3)
            for t in twins
        ]
        for step in range(3):
            x = stacked_input((N, 5), seed=50 + step)
            opt.zero_grad()
            stacked(Tensor(x)).sum().backward()
            opt.step()
            for k, (twin, twin_opt) in enumerate(zip(twins, twin_opts)):
                twin_opt.zero_grad()
                twin(Tensor(x[k].copy())).sum().backward()
                twin_opt.step()
        stacked.sync_back()
        for member, twin in zip(members, twins):
            for (name, got), (_, want) in zip(
                member.state_dict().items(), twin.state_dict().items()
            ):
                assert_exact(got, want)


class TestStackedModels:
    @pytest.mark.parametrize(
        "build,shape",
        [
            (lambda rng: MLP(16, 3, rng), (N, 1, 4, 4)),
            (lambda rng: MLP(16, 3, rng), (N, 16)),  # pre-flattened input
            (lambda rng: LeNet5(3, rng, in_channels=1, image_size=16), (N, 1, 16, 16)),
            (
                lambda rng: ModifiedLeNet5(3, rng, in_channels=2, image_size=16),
                (N, 2, 16, 16),
            ),
        ],
    )
    def test_model_zoo_forward_backward_bit_exact(self, build, shape):
        members = [build(rng) for rng in rngs()]
        stacked = stack_modules(members)
        forward_backward_parity(members, stacked, stacked_input(shape))

    def test_sequential_of_supported_layers(self):
        def build(rng):
            return Sequential(
                Flatten(), Linear(18, 8, rng), ReLU(), Identity(), Linear(8, 3, rng)
            )

        members = [build(rng) for rng in rngs()]
        stacked = stack_modules(members)
        forward_backward_parity(members, stacked, stacked_input((N, 2, 3, 3)))

    def test_sync_back_restores_slice_states(self):
        members = [MLP(8, 3, rng) for rng in rngs()]
        originals = [m.state_dict() for m in members]
        stacked = stack_modules(members)
        states = stacked.slice_states()
        for state, original in zip(states, originals):
            assert set(state) == set(original)
            for key in state:
                assert_exact(state[key], original[key])


class TestStackedLosses:
    @pytest.mark.parametrize(
        "stacked_fn,ref_fn",
        [
            (stacked_cross_entropy, cross_entropy),
            (stacked_cross_entropy, nll_from_logits),  # same composed ops
            (stacked_focal_loss, focal_loss),
            (stacked_label_smoothing_loss, label_smoothing_loss),
        ],
    )
    def test_per_slice_value_and_grad_bit_exact(self, stacked_fn, ref_fn):
        logits = stacked_input((N, 5), seed=3)
        labels = np.random.default_rng(4).integers(0, 5, size=(K, N))
        stacked_in = Tensor(logits.copy(), requires_grad=True)
        loss_vec = stacked_fn(stacked_in, labels)
        assert loss_vec.shape == (K,)
        loss_vec.sum().backward()
        for k in range(K):
            ref_in = Tensor(logits[k].copy(), requires_grad=True)
            ref_loss = ref_fn(ref_in, labels[k])
            ref_loss.backward()
            assert_exact(loss_vec.data[k], ref_loss.data)
            assert_exact(stacked_in.grad[k], ref_in.grad)

    def test_registry_covers_every_stacked_name(self):
        for name in STACKED_LOSSES:
            assert callable(get_stacked_loss(name))
        with pytest.raises(ValueError, match="no stacked implementation"):
            get_stacked_loss("mse")


class TestRejection:
    def test_batchnorm_buffers_rejected_with_reason(self):
        def build(rng):
            return Sequential(Conv2d(1, 2, 3, rng), BatchNorm2d(2))

        members = [build(rng) for rng in rngs()]
        with pytest.raises(VmapUnsupported, match="buffer"):
            stack_modules(members)
        assert "buffer" in stackable_reason(members[0])

    def test_structural_mismatch_rejected(self):
        a = Sequential(Linear(4, 3, np.random.default_rng(0)))
        b = Sequential(ReLU())
        with pytest.raises(VmapUnsupported, match="structure"):
            stack_modules([a, b])

    def test_shape_mismatch_rejected(self):
        a = Linear(4, 3, np.random.default_rng(0))
        b = Linear(5, 3, np.random.default_rng(1))
        with pytest.raises(VmapUnsupported, match="in_features"):
            stack_modules([a, b])

    def test_dtype_mismatch_rejected(self):
        a = Linear(4, 3, np.random.default_rng(0))
        b = Linear(4, 3, np.random.default_rng(1)).astype(np.float32)
        with pytest.raises(VmapUnsupported, match="dtype"):
            stack_modules([a, b])

    def test_stackable_reason_none_for_supported_model(self):
        assert stackable_reason(MLP(8, 3, np.random.default_rng(0))) is None


class TestRaggedRows:
    """Ragged (zero-padded) stacks: slice ``k`` restricted to its true
    ``row_counts[k]`` rows must be bit-identical to the member running
    its true-size batch alone — each member's GEMMs are issued at the
    member's true row count, so padding never perturbs the reduction."""

    ROWS = [4, 2, 3]

    def ragged_input(self, shape, seed=7):
        x = stacked_input(shape, seed=seed)
        for k, rows in enumerate(self.ROWS):
            x[k, rows:] = 0.0
        return x

    def ragged_parity(self, members, stacked, x):
        stacked_in = Tensor(x, requires_grad=True)
        out = stacked(stacked_in)
        out.sum().backward()
        for k, (member, rows) in enumerate(zip(members, self.ROWS)):
            ref_in = Tensor(x[k, :rows].copy(), requires_grad=True)
            ref = member(ref_in)
            ref.sum().backward()
            assert_exact(out.data[k, :rows], ref.data)
            assert_exact(stacked_in.grad[k, :rows], ref_in.grad)
            for sp, mp in zip(stacked.parameters(), member.parameters()):
                assert_exact(sp.grad[k], mp.grad)
        # Padded rows contribute exactly nothing, not merely "almost".
        for k, rows in enumerate(self.ROWS):
            assert np.all(out.data[k, rows:] == 0.0)
            assert np.all(stacked_in.grad[k, rows:] == 0.0)

    def test_ragged_linear_bit_exact(self):
        members = [Linear(5, 3, rng) for rng in rngs()]
        stacked = stack_modules(members)
        stacked.set_row_counts(self.ROWS)
        self.ragged_parity(members, stacked, self.ragged_input((N, 5)))

    def test_ragged_linear_no_bias(self):
        members = [Linear(5, 3, rng, bias=False) for rng in rngs()]
        stacked = stack_modules(members)
        stacked.set_row_counts(self.ROWS)
        self.ragged_parity(members, stacked, self.ragged_input((N, 5)))

    def test_ragged_mlp_bit_exact(self):
        members = [MLP(16, 3, np.random.default_rng(40 + i)) for i in range(K)]
        stacked = stack_modules(members)
        stacked.set_row_counts(self.ROWS)
        self.ragged_parity(members, stacked, self.ragged_input((N, 1, 4, 4)))

    def test_clearing_row_counts_restores_rectangular_path(self):
        members = [Linear(5, 3, rng) for rng in rngs()]
        stacked = stack_modules(members)
        stacked.set_row_counts(self.ROWS)
        stacked.set_row_counts(None)
        forward_backward_parity(members, stacked, stacked_input((N, 5)))

    def test_ragged_support_reason(self):
        from repro.nn.vmap import ragged_support_reason

        assert ragged_support_reason(
            MLP(16, 3, np.random.default_rng(0))
        ) is None
        conv_model = Sequential(
            Conv2d(1, 2, 3, np.random.default_rng(0)), Flatten(),
            Linear(8, 3, np.random.default_rng(1)),
        )
        reason = ragged_support_reason(conv_model)
        assert reason is not None and "Conv2d" in reason

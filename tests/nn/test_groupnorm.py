"""GroupNorm layer."""

import numpy as np
import pytest

from repro.nn import GroupNorm, Tensor


class TestGroupNorm:
    def test_normalises_within_groups(self, rng):
        gn = GroupNorm(2, 4)
        x = rng.normal(loc=7.0, scale=3.0, size=(8, 4, 5, 5))
        out = gn(Tensor(x)).data
        # Each (sample, group) block should be ~standardised.
        grouped = out.reshape(8, 2, 2, 5, 5)
        np.testing.assert_allclose(grouped.mean(axis=(2, 3, 4)), 0.0, atol=1e-7)
        np.testing.assert_allclose(grouped.std(axis=(2, 3, 4)), 1.0, atol=1e-2)

    def test_batch_independence(self, rng):
        """Unlike batch norm, a sample's output must not depend on the rest
        of the batch — the property that makes GroupNorm FL-safe."""
        gn = GroupNorm(2, 4)
        x = rng.normal(size=(4, 4, 3, 3))
        alone = gn(Tensor(x[:1])).data
        together = gn(Tensor(x)).data[:1]
        np.testing.assert_allclose(alone, together, atol=1e-12)

    def test_train_eval_identical(self, rng):
        gn = GroupNorm(1, 2)
        x = rng.normal(size=(2, 2, 4, 4))
        train_out = gn(Tensor(x)).data
        gn.eval()
        eval_out = gn(Tensor(x)).data
        np.testing.assert_allclose(train_out, eval_out)

    def test_affine_params_trainable(self, rng):
        gn = GroupNorm(2, 4)
        x = Tensor(rng.normal(size=(2, 4, 3, 3)), requires_grad=True)
        gn(x).sum().backward()
        assert gn.gamma.grad is not None
        assert gn.beta.grad is not None
        assert x.grad is not None

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            GroupNorm(3, 4)  # 4 not divisible by 3
        with pytest.raises(ValueError):
            GroupNorm(0, 4)
        gn = GroupNorm(2, 4)
        with pytest.raises(ValueError):
            gn(Tensor(rng.normal(size=(2, 6, 3, 3))))  # wrong channel count
        with pytest.raises(ValueError):
            gn(Tensor(rng.normal(size=(2, 4))))  # not 4-D

    def test_single_group_is_layernorm_like(self, rng):
        gn = GroupNorm(1, 3)
        x = rng.normal(loc=-2.0, size=(4, 3, 4, 4))
        out = gn(Tensor(x)).data
        np.testing.assert_allclose(out.reshape(4, -1).mean(axis=1), 0.0, atol=1e-7)

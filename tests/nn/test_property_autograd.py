"""Hypothesis property tests over the autograd engine."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn import Tensor
from repro.nn import functional as F
from repro.nn.tensor import _unbroadcast

finite_arrays = hnp.arrays(
    dtype=np.float64,
    shape=hnp.array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=4),
    elements=st.floats(-10, 10, allow_nan=False),
)


@settings(max_examples=50, deadline=None)
@given(finite_arrays)
def test_sum_gradient_is_ones(data):
    x = Tensor(data.copy(), requires_grad=True)
    x.sum().backward()
    np.testing.assert_allclose(x.grad, np.ones_like(data))


@settings(max_examples=50, deadline=None)
@given(finite_arrays)
def test_mean_gradient_is_uniform(data):
    x = Tensor(data.copy(), requires_grad=True)
    x.mean().backward()
    np.testing.assert_allclose(x.grad, np.full_like(data, 1.0 / data.size))


@settings(max_examples=50, deadline=None)
@given(finite_arrays)
def test_add_commutes_with_grad_accumulation(data):
    x = Tensor(data.copy(), requires_grad=True)
    (x + x).sum().backward()
    np.testing.assert_allclose(x.grad, np.full_like(data, 2.0))


@settings(max_examples=50, deadline=None)
@given(finite_arrays)
def test_relu_grad_is_indicator(data):
    x = Tensor(data.copy(), requires_grad=True)
    x.relu().sum().backward()
    np.testing.assert_allclose(x.grad, (data > 0).astype(float))


@settings(max_examples=50, deadline=None)
@given(finite_arrays)
def test_detach_never_requires_grad(data):
    x = Tensor(data, requires_grad=True)
    assert not x.detach().requires_grad


@settings(max_examples=50, deadline=None)
@given(
    hnp.arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(1, 5), st.integers(2, 6)),
        elements=st.floats(-30, 30, allow_nan=False),
    )
)
def test_softmax_is_distribution(logits):
    probs = F.softmax(Tensor(logits), axis=1).data
    np.testing.assert_allclose(probs.sum(axis=1), np.ones(len(logits)), atol=1e-9)
    assert (probs >= 0).all()


@settings(max_examples=50, deadline=None)
@given(
    hnp.arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(1, 4), st.integers(2, 5)),
        elements=st.floats(-20, 20, allow_nan=False),
    ),
    st.floats(1.0, 10.0),
)
def test_higher_temperature_never_sharpens(logits, temperature):
    base = F.softmax(Tensor(logits), axis=1).data
    smooth = F.softmax(Tensor(logits), axis=1, temperature=temperature).data
    assert smooth.max() <= base.max() + 1e-9


@settings(max_examples=100, deadline=None)
@given(
    hnp.arrays(
        dtype=np.float64,
        shape=hnp.array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=4),
        elements=st.floats(-5, 5, allow_nan=False),
    ),
    st.data(),
)
def test_unbroadcast_inverts_broadcasting(original, data):
    """For any broadcastable target shape, unbroadcast(sum-grad) conserves mass."""
    # Build a shape that original broadcasts to: prepend dims and/or expand 1s.
    extra = data.draw(st.integers(0, 2))
    lead = tuple(data.draw(st.integers(1, 3)) for _ in range(extra))
    target_shape = lead + original.shape
    grad = np.ones(target_shape)
    reduced = _unbroadcast(grad, original.shape)
    assert reduced.shape == original.shape
    # Total gradient mass is conserved.
    np.testing.assert_allclose(reduced.sum(), grad.sum())


@settings(max_examples=30, deadline=None)
@given(
    hnp.arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(1, 3), st.integers(1, 3), st.integers(2, 4).map(lambda k: k * 2), st.integers(2, 4).map(lambda k: k * 2)),
        elements=st.floats(-10, 10, allow_nan=False, allow_infinity=False),
    )
)
def test_maxpool_output_bounded_by_input(images):
    out = F.max_pool2d(Tensor(images), 2).data
    assert out.max() <= images.max() + 1e-12
    assert out.min() >= images.min() - 1e-12

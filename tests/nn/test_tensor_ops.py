"""Forward-value semantics of tensor ops, concat/stack/where helpers."""

import numpy as np
import pytest

from repro.nn import Tensor, concatenate, ensure_tensor, stack, where

from ..conftest import numeric_grad


class TestArithmeticValues:
    def test_add_values(self):
        out = Tensor([1.0, 2.0]) + Tensor([3.0, 4.0])
        np.testing.assert_allclose(out.data, [4.0, 6.0])

    def test_radd_scalar(self):
        np.testing.assert_allclose((5 + Tensor([1.0])).data, [6.0])

    def test_rsub_scalar(self):
        np.testing.assert_allclose((5 - Tensor([1.0])).data, [4.0])

    def test_rmul_scalar(self):
        np.testing.assert_allclose((3 * Tensor([2.0])).data, [6.0])

    def test_rtruediv_scalar(self):
        np.testing.assert_allclose((6 / Tensor([2.0])).data, [3.0])

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([2.0]) ** Tensor([2.0])

    def test_matmul_values(self):
        a = Tensor([[1.0, 2.0], [3.0, 4.0]])
        b = Tensor([[5.0, 6.0], [7.0, 8.0]])
        np.testing.assert_allclose((a @ b).data, np.array([[19, 22], [43, 50]], dtype=float))

    def test_min_value(self):
        assert Tensor([[3.0, -1.0], [2.0, 5.0]]).min().item() == -1.0

    def test_var_matches_numpy(self):
        data = np.random.default_rng(0).normal(size=(4, 5))
        np.testing.assert_allclose(Tensor(data).var(axis=1).data, data.var(axis=1))

    def test_mean_matches_numpy(self):
        data = np.random.default_rng(0).normal(size=(4, 5))
        np.testing.assert_allclose(Tensor(data).mean(axis=0).data, data.mean(axis=0))


class TestEnsureTensor:
    def test_passthrough(self):
        t = Tensor([1.0])
        assert ensure_tensor(t) is t

    def test_from_list(self):
        t = ensure_tensor([1, 2, 3])
        assert isinstance(t, Tensor)
        assert t.dtype == np.float64

    def test_from_scalar(self):
        assert ensure_tensor(2.5).item() == 2.5


class TestConcatenate:
    def test_values(self):
        out = concatenate([Tensor([[1.0]]), Tensor([[2.0]])], axis=0)
        np.testing.assert_allclose(out.data, [[1.0], [2.0]])

    def test_axis1(self):
        out = concatenate([Tensor([[1.0], [2.0]]), Tensor([[3.0], [4.0]])], axis=1)
        np.testing.assert_allclose(out.data, [[1.0, 3.0], [2.0, 4.0]])

    def test_gradient_routes_to_each_part(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((3, 2)), requires_grad=True)
        out = concatenate([a, b], axis=0)
        (out * Tensor(np.arange(10, dtype=float).reshape(5, 2))).sum().backward()
        np.testing.assert_allclose(a.grad, [[0, 1], [2, 3]])
        np.testing.assert_allclose(b.grad, [[4, 5], [6, 7], [8, 9]])

    def test_gradcheck(self):
        fixed = np.array([[1.0, -1.0]])

        def build(x):
            return (concatenate([Tensor(fixed), x], axis=0) ** 2).sum()

        x_val = np.array([[2.0, 3.0], [0.5, -0.5]])
        x = Tensor(x_val, requires_grad=True)
        build(x).backward()
        expected = numeric_grad(lambda v: (np.concatenate([fixed, v]) ** 2).sum(), x_val.copy())
        np.testing.assert_allclose(x.grad, expected, atol=1e-5)


class TestStack:
    def test_values(self):
        out = stack([Tensor([1.0, 2.0]), Tensor([3.0, 4.0])], axis=0)
        np.testing.assert_allclose(out.data, [[1.0, 2.0], [3.0, 4.0]])

    def test_gradient(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        out = stack([a, b], axis=0)
        (out * out).sum().backward()
        np.testing.assert_allclose(a.grad, [2.0, 4.0])
        np.testing.assert_allclose(b.grad, [6.0, 8.0])


class TestWhere:
    def test_values(self):
        out = where(np.array([True, False]), Tensor([1.0, 1.0]), Tensor([2.0, 2.0]))
        np.testing.assert_allclose(out.data, [1.0, 2.0])

    def test_gradients_masked(self):
        a = Tensor([1.0, 1.0], requires_grad=True)
        b = Tensor([2.0, 2.0], requires_grad=True)
        where(np.array([True, False]), a, b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 0.0])
        np.testing.assert_allclose(b.grad, [0.0, 1.0])

    def test_broadcast_condition(self):
        out = where(np.array([[True], [False]]), Tensor(np.ones((2, 3))),
                    Tensor(np.zeros((2, 3))))
        np.testing.assert_allclose(out.data, [[1, 1, 1], [0, 0, 0]])

"""Checkpoint save/load roundtrips."""

import numpy as np

from repro.nn import load_model, load_state_dict, save_model, save_state_dict
from repro.nn.models import MLP


class TestStateDictPersistence:
    def test_roundtrip(self, tmp_path, rng):
        state = {"a": rng.normal(size=(3, 3)), "b.c": rng.normal(size=(2,))}
        path = str(tmp_path / "ckpt")
        save_state_dict(state, path)
        loaded = load_state_dict(path)
        assert set(loaded) == set(state)
        for key in state:
            np.testing.assert_allclose(loaded[key], state[key])

    def test_npz_suffix_optional(self, tmp_path, rng):
        state = {"x": rng.normal(size=(2,))}
        save_state_dict(state, str(tmp_path / "with.npz"))
        loaded = load_state_dict(str(tmp_path / "with"))
        np.testing.assert_allclose(loaded["x"], state["x"])

    def test_creates_directories(self, tmp_path, rng):
        path = str(tmp_path / "deep" / "nested" / "ckpt")
        save_state_dict({"x": rng.normal(size=(2,))}, path)
        assert load_state_dict(path)


class TestModelPersistence:
    def test_model_roundtrip(self, tmp_path, rng):
        model = MLP(8, 3, rng)
        path = str(tmp_path / "model")
        save_model(model, path)
        other = MLP(8, 3, np.random.default_rng(999))
        load_model(other, path)
        for (_, pa), (_, pb) in zip(model.named_parameters(), other.named_parameters()):
            np.testing.assert_allclose(pa.data, pb.data)

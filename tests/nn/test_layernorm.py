"""LayerNorm: statistics, gradients, and FedAvg-friendliness."""

import numpy as np
import pytest

from repro.nn import LayerNorm, Tensor

from ..conftest import numeric_grad


class TestForward:
    def test_normalises_each_sample(self, rng):
        layer = LayerNorm(8)
        x = Tensor(rng.normal(2.0, 5.0, size=(4, 8)))
        out = layer(x).data
        np.testing.assert_allclose(out.mean(axis=1), 0.0, atol=1e-7)
        np.testing.assert_allclose(out.std(axis=1), 1.0, atol=1e-3)

    def test_affine_parameters_applied(self, rng):
        layer = LayerNorm(4)
        layer.gamma.data[:] = 2.0
        layer.beta.data[:] = 1.0
        x = Tensor(rng.normal(size=(3, 4)))
        out = layer(x).data
        np.testing.assert_allclose(out.mean(axis=1), 1.0, atol=1e-7)

    def test_independent_of_batch_composition(self, rng):
        """The FedAvg-friendliness property: a sample's output does not
        depend on which other samples share its batch."""
        layer = LayerNorm(6)
        a = rng.normal(size=(1, 6))
        batch1 = np.concatenate([a, rng.normal(size=(3, 6))])
        batch2 = np.concatenate([a, rng.normal(10.0, 3.0, size=(7, 6))])
        out1 = layer(Tensor(batch1)).data[0]
        out2 = layer(Tensor(batch2)).data[0]
        np.testing.assert_allclose(out1, out2, atol=1e-12)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            LayerNorm(0)
        layer = LayerNorm(4)
        with pytest.raises(ValueError, match="2-D"):
            layer(Tensor(rng.normal(size=(2, 4, 1, 1))))
        with pytest.raises(ValueError, match="features"):
            layer(Tensor(rng.normal(size=(2, 5))))

    def test_repr(self):
        assert repr(LayerNorm(16)) == "LayerNorm(16)"


class TestGradients:
    def test_input_gradient_matches_numeric(self, rng):
        layer = LayerNorm(5)
        layer.gamma.data[:] = rng.normal(1.0, 0.1, size=5)
        layer.beta.data[:] = rng.normal(0.0, 0.1, size=5)
        x_data = rng.normal(size=(3, 5))

        def fn(x):
            return layer(Tensor(x.copy())).sum().item()

        x = Tensor(x_data.copy(), requires_grad=True)
        layer(x).sum().backward()
        np.testing.assert_allclose(
            x.grad, numeric_grad(fn, x_data), atol=1e-5
        )

    def test_parameter_gradients_flow(self, rng):
        layer = LayerNorm(5)
        x = Tensor(rng.normal(size=(3, 5)))
        (layer(x) ** 2).sum().backward()
        assert layer.gamma.grad is not None
        assert layer.beta.grad is not None
        assert np.abs(layer.gamma.grad).sum() > 0

    def test_trains_inside_an_mlp(self, rng):
        """A LayerNorm-equipped classifier fits a small blob problem."""
        from repro.nn import Linear, ReLU, SGD, Sequential, losses
        from ..conftest import make_blobs

        dataset = make_blobs(num_samples=45, num_classes=3, shape=(1, 4, 4))
        model = Sequential(
            Linear(16, 24, rng=np.random.default_rng(0)),
            LayerNorm(24),
            ReLU(),
            Linear(24, 3, rng=np.random.default_rng(1)),
        )
        optimizer = SGD(model.parameters(), lr=0.3, momentum=0.9)
        images = dataset.images.reshape(len(dataset), -1)
        for _ in range(60):
            optimizer.zero_grad()
            logits = model(Tensor(images))
            loss = losses.cross_entropy(logits, dataset.labels)
            loss.backward()
            optimizer.step()
        predictions = model(Tensor(images)).data.argmax(axis=1)
        assert (predictions == dataset.labels).mean() > 0.9

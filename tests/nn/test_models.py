"""Model zoo: shapes, registry, architecture contracts."""

import numpy as np
import pytest

from repro.nn import Tensor, losses
from repro.nn.models import (
    MODEL_BUILDERS,
    LeNet5,
    ModifiedLeNet5,
    MLP,
    build_model,
    resnet,
    resnet8,
)


class TestLeNet5:
    def test_mnist_shape(self, rng):
        model = LeNet5(10, rng)
        out = model(Tensor(rng.normal(size=(3, 1, 28, 28))))
        assert out.shape == (3, 10)

    def test_two_fc_layers(self, rng):
        model = LeNet5(10, rng)
        linears = [m for m in model.modules() if type(m).__name__ == "Linear"]
        assert len(linears) == 2

    def test_too_small_image_raises(self, rng):
        with pytest.raises(ValueError):
            LeNet5(10, rng, image_size=8)

    def test_trains_end_to_end(self, rng):
        model = LeNet5(3, rng)
        x = Tensor(rng.normal(size=(4, 1, 28, 28)))
        losses.cross_entropy(model(x), np.array([0, 1, 2, 0])).backward()
        assert all(p.grad is not None for p in model.parameters())


class TestModifiedLeNet5:
    def test_cifar_shape(self, rng):
        model = ModifiedLeNet5(10, rng)
        out = model(Tensor(rng.normal(size=(2, 3, 32, 32))))
        assert out.shape == (2, 10)

    def test_three_fc_layers(self, rng):
        model = ModifiedLeNet5(10, rng)
        linears = [m for m in model.modules() if type(m).__name__ == "Linear"]
        assert len(linears) == 3


class TestResNet:
    def test_depth_validation(self, rng):
        with pytest.raises(ValueError):
            resnet(10, 10, rng)  # 10 is not 6n+2

    @pytest.mark.parametrize("depth,blocks", [(8, 1), (20, 3), (32, 5)])
    def test_block_counts(self, rng, depth, blocks):
        model = resnet(depth, 10, rng, base_width=4)
        assert len(model.stage1) == blocks
        assert len(model.stage2) == blocks
        assert len(model.stage3) == blocks

    def test_output_shape(self, rng):
        model = resnet8(10, rng, base_width=4)
        out = model(Tensor(rng.normal(size=(2, 3, 32, 32))))
        assert out.shape == (2, 10)

    def test_any_input_size(self, rng):
        model = resnet8(5, rng, base_width=4, in_channels=1)
        out = model(Tensor(rng.normal(size=(2, 1, 28, 28))))
        assert out.shape == (2, 5)

    def test_projection_shortcut_present_on_downsample(self, rng):
        model = resnet8(10, rng, base_width=4)
        assert not model.stage1[0].has_projection
        assert model.stage2[0].has_projection
        assert model.stage3[0].has_projection

    def test_gradients_reach_stem(self, rng):
        model = resnet8(10, rng, base_width=4)
        out = model(Tensor(rng.normal(size=(2, 3, 16, 16))))
        losses.cross_entropy(out, np.array([0, 1])).backward()
        assert model.stem_conv.weight.grad is not None


class TestMLP:
    def test_flattens_images(self, rng):
        model = MLP(48, 4, rng)
        out = model(Tensor(rng.normal(size=(2, 3, 4, 4))))
        assert out.shape == (2, 4)

    def test_hidden_config(self, rng):
        model = MLP(10, 2, rng, hidden=(16, 8))
        linears = [m for m in model.modules() if type(m).__name__ == "Linear"]
        assert [l.out_features for l in linears] == [16, 8, 2]


class TestRegistry:
    def test_contains_paper_models(self):
        for name in ("lenet5", "modified_lenet5", "resnet32", "resnet56"):
            assert name in MODEL_BUILDERS

    @pytest.mark.parametrize("name", ["lenet5", "mlp", "resnet8_slim"])
    def test_build_and_forward(self, rng, name):
        model = build_model(name, 10, rng, in_channels=1, image_size=28)
        out = model(Tensor(rng.normal(size=(2, 1, 28, 28))))
        assert out.shape == (2, 10)

    def test_modified_lenet_needs_32(self, rng):
        model = build_model("modified_lenet5", 10, rng, in_channels=3, image_size=32)
        assert model(Tensor(rng.normal(size=(1, 3, 32, 32)))).shape == (1, 10)

    def test_unknown_model_raises(self, rng):
        with pytest.raises(ValueError):
            build_model("alexnet", 10, rng)

    def test_identical_seeds_give_identical_models(self):
        a = build_model("lenet5", 10, np.random.default_rng(5))
        b = build_model("lenet5", 10, np.random.default_rng(5))
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            np.testing.assert_allclose(pa.data, pb.data)

"""Gradient correctness of the autograd engine against finite differences."""

import numpy as np
import pytest

from repro.nn import Tensor, no_grad, is_grad_enabled
from repro.nn import functional as F

from ..conftest import numeric_grad

ATOL = 1e-5


def check_grad(build_loss, x_value, atol=ATOL):
    """Compare analytic grad of scalar build_loss(Tensor) vs numeric."""
    x = Tensor(np.array(x_value, dtype=np.float64), requires_grad=True)
    loss = build_loss(x)
    loss.backward()

    def f(value):
        return build_loss(Tensor(np.array(value, dtype=np.float64))).item()

    expected = numeric_grad(f, np.array(x_value, dtype=np.float64))
    np.testing.assert_allclose(x.grad, expected, atol=atol)


class TestElementwiseGrads:
    def test_add(self):
        check_grad(lambda x: (x + 2.0).sum(), [[1.0, -2.0], [3.0, 0.5]])

    def test_mul(self):
        check_grad(lambda x: (x * x).sum(), [[1.0, -2.0], [3.0, 0.5]])

    def test_div(self):
        check_grad(lambda x: (1.0 / x).sum(), [[1.0, -2.0], [3.0, 0.5]])

    def test_sub(self):
        check_grad(lambda x: (5.0 - x).sum(), [1.0, 2.0, 3.0])

    def test_pow(self):
        check_grad(lambda x: (x ** 3).sum(), [1.0, 2.0, -1.5])

    def test_exp(self):
        check_grad(lambda x: x.exp().sum(), [0.0, 1.0, -1.0])

    def test_log(self):
        check_grad(lambda x: x.log().sum(), [0.5, 1.0, 3.0])

    def test_sqrt(self):
        check_grad(lambda x: x.sqrt().sum(), [0.5, 1.0, 4.0])

    def test_relu(self):
        check_grad(lambda x: x.relu().sum(), [0.5, -1.0, 2.0, -0.1])

    def test_sigmoid(self):
        check_grad(lambda x: x.sigmoid().sum(), [0.0, 2.0, -2.0])

    def test_tanh(self):
        check_grad(lambda x: x.tanh().sum(), [0.0, 1.0, -1.0])

    def test_abs(self):
        check_grad(lambda x: x.abs().sum(), [0.5, -1.0, 2.0])

    def test_clip(self):
        check_grad(lambda x: x.clip(-1.0, 1.0).sum(), [0.5, -2.0, 2.0, 0.9])

    def test_neg(self):
        check_grad(lambda x: (-x).sum(), [1.0, -2.0])

    def test_chained_composition(self):
        check_grad(lambda x: ((x * 2 + 1).relu() * x.exp()).sum(), [0.3, -0.7, 1.2])


class TestMatmulGrads:
    def test_matmul_square(self):
        w = np.array([[1.0, 2.0], [3.0, 4.0]])
        check_grad(lambda x: (x @ Tensor(w)).sum(), [[1.0, 0.5], [2.0, -1.0]])

    def test_matmul_right_operand(self):
        a = np.array([[1.0, 2.0], [3.0, 4.0]])
        check_grad(lambda x: (Tensor(a) @ x).sum(), [[1.0, 0.5], [2.0, -1.0]])

    def test_matvec(self):
        v = np.array([1.0, -2.0])
        check_grad(lambda x: (x @ Tensor(v)).sum(), [[1.0, 0.5], [2.0, -1.0]])

    def test_vecmat(self):
        a = np.array([[1.0, 2.0], [3.0, 4.0]])
        check_grad(lambda x: (x @ Tensor(a)).sum(), [1.0, 0.5])

    def test_both_operands_get_grads(self):
        a = Tensor(np.random.default_rng(0).normal(size=(3, 4)), requires_grad=True)
        b = Tensor(np.random.default_rng(1).normal(size=(4, 2)), requires_grad=True)
        (a @ b).sum().backward()
        assert a.grad is not None and a.grad.shape == (3, 4)
        assert b.grad is not None and b.grad.shape == (4, 2)


class TestReductionGrads:
    def test_sum_all(self):
        check_grad(lambda x: x.sum() * 2.0, [[1.0, 2.0], [3.0, 4.0]])

    def test_sum_axis(self):
        check_grad(lambda x: (x.sum(axis=0) ** 2).sum(), [[1.0, 2.0], [3.0, 4.0]])

    def test_sum_keepdims(self):
        check_grad(lambda x: (x.sum(axis=1, keepdims=True) * x).sum(),
                   [[1.0, 2.0], [3.0, 4.0]])

    def test_mean(self):
        check_grad(lambda x: (x.mean() ** 2), [[1.0, 2.0], [3.0, 4.0]])

    def test_mean_axis(self):
        check_grad(lambda x: (x.mean(axis=1) ** 2).sum(), [[1.0, 2.0], [3.0, 4.0]])

    def test_var(self):
        check_grad(lambda x: x.var(), [[1.0, 2.0], [3.0, 4.0]])

    def test_var_axis(self):
        check_grad(lambda x: x.var(axis=1).sum(), [[1.0, 2.0, -1.0], [3.0, 4.0, 0.0]])

    def test_max_all(self):
        check_grad(lambda x: x.max() * 3.0, [[1.0, 2.0], [3.0, -4.0]])

    def test_max_axis(self):
        check_grad(lambda x: (x.max(axis=1) ** 2).sum(), [[1.0, 2.0], [3.0, -4.0]])

    def test_min(self):
        check_grad(lambda x: x.min() * 2.0, [[1.0, 2.0], [3.0, -4.0]])

    def test_max_tie_splits_gradient(self):
        x = Tensor(np.array([2.0, 2.0, 1.0]), requires_grad=True)
        x.max().backward()
        np.testing.assert_allclose(x.grad, [0.5, 0.5, 0.0])


class TestBroadcastingGrads:
    def test_add_broadcast_row(self):
        b = np.array([1.0, 2.0, 3.0])
        check_grad(lambda x: ((x + Tensor(b)) ** 2).sum(), [[1.0, 0.0, -1.0], [2.0, 2.0, 2.0]])

    def test_add_broadcast_to_smaller_operand(self):
        a = np.random.default_rng(0).normal(size=(4, 3))
        check_grad(lambda x: ((Tensor(a) + x) ** 2).sum(), [1.0, -1.0, 0.5])

    def test_mul_broadcast_column(self):
        b = np.array([[2.0], [3.0]])
        check_grad(lambda x: (x * Tensor(b)).sum(), [[1.0, 0.0, -1.0], [2.0, 2.0, 2.0]])

    def test_scalar_broadcast(self):
        x = Tensor(np.zeros(()), requires_grad=True)
        big = Tensor(np.ones((3, 4)))
        (x + big).sum().backward()
        np.testing.assert_allclose(x.grad, 12.0)

    def test_broadcast_keepdim_axis(self):
        b = np.random.default_rng(0).normal(size=(2, 1, 3))
        check_grad(lambda x: ((Tensor(b) * x) ** 2).sum(),
                   np.random.default_rng(1).normal(size=(2, 4, 3)))


class TestShapeGrads:
    def test_reshape(self):
        check_grad(lambda x: (x.reshape(4) ** 2).sum(), [[1.0, 2.0], [3.0, 4.0]])

    def test_flatten(self):
        check_grad(lambda x: (x.flatten() ** 2).sum(),
                   np.arange(8, dtype=float).reshape(2, 2, 2))

    def test_transpose(self):
        a = np.array([[1.0, 0.0], [0.0, 2.0]])
        check_grad(lambda x: (x.T @ Tensor(a)).sum(), [[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]])

    def test_transpose_axes(self):
        check_grad(
            lambda x: (x.transpose(2, 0, 1) ** 2).sum(),
            np.arange(24, dtype=float).reshape(2, 3, 4),
        )

    def test_getitem_int_rows(self):
        check_grad(lambda x: (x[np.array([0, 2, 0])] ** 2).sum(),
                   [[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]])

    def test_getitem_pair_indexing(self):
        idx = (np.array([0, 1]), np.array([1, 0]))
        check_grad(lambda x: (x[idx] ** 2).sum(), [[1.0, 2.0], [3.0, 4.0]])

    def test_getitem_duplicate_index_accumulates(self):
        x = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        x[np.array([0, 0, 1])].sum().backward()
        np.testing.assert_allclose(x.grad, [2.0, 1.0])

    def test_pad2d(self):
        check_grad(
            lambda x: (x.pad2d(1) ** 2).sum(),
            np.arange(16, dtype=float).reshape(1, 1, 4, 4),
        )


class TestGraphSemantics:
    def test_reused_tensor_accumulates(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * x + x * 3.0
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [2 * 2.0 + 3.0])

    def test_diamond_graph(self):
        x = Tensor(np.array([1.5]), requires_grad=True)
        a = x * 2.0
        b = x + 1.0
        (a * b).sum().backward()
        # d/dx (2x (x+1)) = 4x + 2
        np.testing.assert_allclose(x.grad, [4 * 1.5 + 2.0])

    def test_deep_chain(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        y = x
        for _ in range(50):
            y = y + 1.0
        y.backward()
        np.testing.assert_allclose(x.grad, [1.0])

    def test_backward_requires_scalar_without_grad_arg(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2).backward()

    def test_backward_with_explicit_grad(self):
        x = Tensor(np.ones(3), requires_grad=True)
        (x * 2).backward(np.array([1.0, 2.0, 3.0]))
        np.testing.assert_allclose(x.grad, [2.0, 4.0, 6.0])

    def test_backward_grad_shape_mismatch(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(ValueError):
            (x * 2).backward(np.ones(4))

    def test_backward_on_non_grad_tensor_raises(self):
        x = Tensor(np.ones(3))
        with pytest.raises(RuntimeError):
            x.backward()

    def test_zero_grad(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        (x * 2).sum().backward()
        assert x.grad is not None
        x.zero_grad()
        assert x.grad is None

    def test_detach_cuts_graph(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = (x * 3).detach()
        assert not y.requires_grad
        z = y * 2
        assert not z.requires_grad

    def test_no_grad_context(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
            y = x * 2
        assert not y.requires_grad
        assert is_grad_enabled()

    def test_no_grad_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with no_grad():
                raise RuntimeError("boom")
        assert is_grad_enabled()

    def test_second_backward_accumulates(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        y = x * 2
        y.sum().backward()
        z = x * 3
        z.sum().backward()
        np.testing.assert_allclose(x.grad, [5.0])

    def test_copy_is_detached_deep(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        c = x.copy()
        c.data[0] = 99.0
        assert x.data[0] == 1.0
        assert not c.requires_grad


class TestConstructors:
    def test_object_array_rejected(self):
        with pytest.raises(TypeError):
            Tensor(np.array([object()]))

    def test_shape_properties(self):
        x = Tensor(np.zeros((2, 3, 4)))
        assert x.shape == (2, 3, 4)
        assert x.ndim == 3
        assert x.size == 24
        assert len(x) == 2

    def test_item_scalar(self):
        assert Tensor(np.array(3.5)).item() == 3.5

    def test_repr_shows_requires_grad(self):
        assert "requires_grad" in repr(Tensor(np.ones(1), requires_grad=True))
        assert "requires_grad" not in repr(Tensor(np.ones(1)))

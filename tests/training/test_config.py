"""TrainConfig / TrainHistory validation and helpers."""

import pytest

from repro.training import EpochStats, TrainConfig, TrainHistory


class TestTrainConfig:
    def test_paper_defaults(self):
        config = TrainConfig()
        assert config.batch_size == 100
        assert config.learning_rate == 0.001
        assert config.momentum == 0.9

    def test_with_overrides(self):
        config = TrainConfig().with_overrides(epochs=7, learning_rate=0.5)
        assert config.epochs == 7
        assert config.learning_rate == 0.5
        assert config.batch_size == 100  # untouched

    def test_frozen(self):
        with pytest.raises(Exception):
            TrainConfig().epochs = 3

    @pytest.mark.parametrize("kwargs", [
        {"epochs": -1},
        {"batch_size": 0},
        {"learning_rate": 0.0},
        {"momentum": 1.0},
        {"momentum": -0.1},
        {"weight_decay": -1.0},
        {"grad_clip": -1.0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            TrainConfig(**kwargs)


class TestTrainHistory:
    def test_records_and_reads(self):
        history = TrainHistory()
        history.record(EpochStats(epoch=0, mean_loss=1.0, num_batches=3))
        history.record(EpochStats(epoch=1, mean_loss=0.5, num_batches=3))
        assert history.losses == [1.0, 0.5]
        assert history.final_loss == 0.5
        assert len(history) == 2

    def test_empty_final_loss_raises(self):
        with pytest.raises(ValueError):
            TrainHistory().final_loss

"""The supervised training loop."""

import numpy as np
import pytest

from repro.nn.models import MLP
from repro.training import TrainConfig, accuracy, train
from repro.unlearning.baselines import DiagonalFIMSGD

from ..conftest import make_blobs


def fresh_model(seed=0):
    return MLP(16, 3, np.random.default_rng(seed))


class TestTrain:
    def test_loss_decreases(self, rng):
        ds = make_blobs(num_samples=60, num_classes=3, shape=(1, 4, 4))
        history = train(fresh_model(), ds, TrainConfig(epochs=8, batch_size=20,
                                                       learning_rate=0.1), rng)
        assert history.losses[-1] < history.losses[0]

    def test_reaches_high_accuracy_on_easy_data(self, rng):
        ds = make_blobs(num_samples=60, num_classes=3, shape=(1, 4, 4))
        model = fresh_model()
        train(model, ds, TrainConfig(epochs=15, batch_size=20, learning_rate=0.2), rng)
        assert accuracy(model, ds) > 0.9

    def test_history_length_matches_epochs(self, rng):
        ds = make_blobs(num_samples=30, shape=(1, 4, 4))
        history = train(fresh_model(), ds, TrainConfig(epochs=4, batch_size=10,
                                                       learning_rate=0.1), rng)
        assert len(history) == 4

    def test_empty_dataset_rejected(self, rng):
        from repro.data import ArrayDataset
        empty = ArrayDataset(np.zeros((0, 1, 4, 4)), np.zeros(0, dtype=int), 3)
        with pytest.raises(ValueError):
            train(fresh_model(), empty, TrainConfig(epochs=1), rng)

    def test_epoch_callback_stops_early(self, rng):
        ds = make_blobs(num_samples=30, shape=(1, 4, 4))
        history = train(
            fresh_model(), ds,
            TrainConfig(epochs=10, batch_size=10, learning_rate=0.1), rng,
            epoch_callback=lambda epoch, loss: epoch >= 2,
        )
        assert len(history) == 3

    def test_custom_optimizer_used(self, rng):
        ds = make_blobs(num_samples=30, shape=(1, 4, 4))
        model = fresh_model()
        optimizer = DiagonalFIMSGD(model.parameters(), lr=0.01)
        history = train(model, ds, TrainConfig(epochs=3, batch_size=10,
                                               learning_rate=0.1), rng,
                        optimizer=optimizer)
        assert optimizer._steps > 0
        assert len(history) == 3

    def test_focal_loss_choice(self, rng):
        ds = make_blobs(num_samples=30, shape=(1, 4, 4))
        history = train(fresh_model(), ds,
                        TrainConfig(epochs=2, batch_size=10, learning_rate=0.1,
                                    loss="focal"), rng)
        assert len(history) == 2

    def test_grad_clip_path(self, rng):
        ds = make_blobs(num_samples=30, shape=(1, 4, 4))
        history = train(fresh_model(), ds,
                        TrainConfig(epochs=2, batch_size=10, learning_rate=0.1,
                                    grad_clip=0.5), rng)
        assert len(history) == 2

    def test_deterministic_given_seed(self):
        ds = make_blobs(num_samples=40, shape=(1, 4, 4))
        results = []
        for _ in range(2):
            model = fresh_model(3)
            train(model, ds, TrainConfig(epochs=3, batch_size=10, learning_rate=0.1),
                  np.random.default_rng(11))
            results.append(model.state_dict())
        for key in results[0]:
            np.testing.assert_allclose(results[0][key], results[1][key])

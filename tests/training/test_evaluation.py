"""Evaluation helpers: logits, probabilities, accuracy, MSE score."""

import numpy as np
import pytest

from repro.nn import Tensor
from repro.nn.models import MLP
from repro.training import (
    accuracy,
    evaluate,
    mean_loss,
    predict_logits,
    predict_proba,
    prediction_mse,
)

from ..conftest import make_blobs


def model_and_data(seed=0):
    ds = make_blobs(num_samples=40, num_classes=3, shape=(1, 4, 4), seed=seed)
    model = MLP(16, 3, np.random.default_rng(seed))
    return model, ds


class TestPredict:
    def test_logits_shape(self):
        model, ds = model_and_data()
        logits = predict_logits(model, ds.images)
        assert logits.shape == (40, 3)

    def test_batching_consistent(self):
        model, ds = model_and_data()
        full = predict_logits(model, ds.images, batch_size=1000)
        batched = predict_logits(model, ds.images, batch_size=7)
        np.testing.assert_allclose(full, batched)

    def test_proba_is_distribution(self):
        model, ds = model_and_data()
        probs = predict_proba(model, ds.images)
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(40), atol=1e-9)
        assert (probs >= 0).all()

    def test_proba_temperature_smooths(self):
        model, ds = model_and_data()
        sharp = predict_proba(model, ds.images, temperature=1.0)
        smooth = predict_proba(model, ds.images, temperature=5.0)
        assert smooth.max() <= sharp.max() + 1e-12

    def test_training_mode_restored(self):
        model, ds = model_and_data()
        model.train()
        predict_logits(model, ds.images)
        assert model.training
        model.eval()
        predict_logits(model, ds.images)
        assert not model.training


class TestEvaluate:
    def test_returns_loss_and_accuracy(self):
        model, ds = model_and_data()
        loss, acc = evaluate(model, ds)
        assert loss > 0
        assert 0.0 <= acc <= 1.0

    def test_accuracy_and_mean_loss_consistent(self):
        model, ds = model_and_data()
        loss, acc = evaluate(model, ds)
        assert accuracy(model, ds) == acc
        assert mean_loss(model, ds) == loss

    def test_empty_dataset_rejected(self):
        from repro.data import ArrayDataset
        model, _ = model_and_data()
        empty = ArrayDataset(np.zeros((0, 1, 4, 4)), np.zeros(0, dtype=int), 3)
        with pytest.raises(ValueError):
            evaluate(model, empty)


class TestPredictionMSE:
    def test_perfect_model_scores_near_zero(self):
        """A model with one-hot-like outputs on correct labels has tiny MSE."""
        model, ds = model_and_data()

        class Oracle(type(model)):
            pass

        from repro.nn.module import Module

        class Perfect(Module):
            def forward(self, x):
                logits = np.full((len(x), 3), -100.0)
                # look up true labels by matching images
                for i in range(len(x)):
                    idx = np.where(
                        np.isclose(ds.images, x.data[i]).all(axis=(1, 2, 3))
                    )[0][0]
                    logits[i, ds.labels[idx]] = 100.0
                return Tensor(logits)

        assert prediction_mse(Perfect(), ds) < 1e-6

    def test_worse_model_scores_higher(self):
        model, ds = model_and_data()
        from repro.training import TrainConfig, train
        trained = MLP(16, 3, np.random.default_rng(0))
        train(trained, ds, TrainConfig(epochs=15, batch_size=10, learning_rate=0.2),
              np.random.default_rng(1))
        assert prediction_mse(trained, ds) < prediction_mse(model, ds)


class TestPerClassMetrics:
    def test_confusion_matrix_rows_sum_to_support(self):
        from repro.training import confusion_matrix
        from ..conftest import make_blobs
        from repro.nn.models import MLP
        import numpy as np

        dataset = make_blobs(num_samples=30, num_classes=3, shape=(1, 4, 4))
        model = MLP(16, 3, np.random.default_rng(0))
        matrix = confusion_matrix(model, dataset)
        assert matrix.shape == (3, 3)
        np.testing.assert_array_equal(matrix.sum(axis=1), dataset.class_counts())
        assert matrix.sum() == len(dataset)

    def test_perfect_model_is_diagonal(self):
        from repro.training import TrainConfig, confusion_matrix, per_class_accuracy, train
        from ..conftest import make_blobs
        from repro.nn.models import MLP
        import numpy as np

        dataset = make_blobs(num_samples=30, num_classes=3, shape=(1, 4, 4),
                             separation=4.0, noise=0.2)
        model = MLP(16, 3, np.random.default_rng(0))
        train(model, dataset, TrainConfig(epochs=30, batch_size=10,
                                          learning_rate=0.2),
              np.random.default_rng(1))
        matrix = confusion_matrix(model, dataset)
        assert np.trace(matrix) == len(dataset)
        np.testing.assert_allclose(per_class_accuracy(model, dataset), 1.0)

    def test_absent_class_is_nan(self):
        from repro.training import per_class_accuracy
        from ..conftest import make_blobs
        from repro.nn.models import MLP
        import numpy as np

        dataset = make_blobs(num_samples=20, num_classes=3, shape=(1, 4, 4))
        only_two = dataset.subset(np.flatnonzero(dataset.labels != 2))
        model = MLP(16, 3, np.random.default_rng(0))
        per_class = per_class_accuracy(model, only_two)
        assert np.isnan(per_class[2])
        assert not np.isnan(per_class[0])

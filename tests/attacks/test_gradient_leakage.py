"""Gradient-leakage attack: exact single-sample leak, and its defences."""

import numpy as np
import pytest

from repro.attacks import (
    gradients_from_sgd_update,
    leak_input_from_linear_gradients,
    reconstruction_similarity,
    run_leakage_attack,
)
from repro.data.dataset import ArrayDataset
from repro.federated import SecureAggregationRound
from repro.nn.models import MLP
from repro.training.config import TrainConfig
from repro.training.trainer import train


def one_sample_victim(seed=0, num_samples=1):
    """A client whose whole dataset is ``num_samples`` image(s)."""
    rng = np.random.default_rng(seed)
    images = rng.normal(size=(num_samples, 1, 4, 4))
    labels = rng.integers(0, 3, size=num_samples)
    dataset = ArrayDataset(images, labels, num_classes=3)
    model = MLP(16, 3, np.random.default_rng(42), hidden=(8,))
    return dataset, model


def single_step(model, dataset, lr=0.05):
    """One vanilla-SGD step (the attack's standard observability)."""
    before = model.state_dict()
    config = TrainConfig(epochs=1, batch_size=len(dataset),
                         learning_rate=lr, momentum=0.0)
    train(model, dataset, config, np.random.default_rng(0))
    return before, model.state_dict()


class TestGradientRecovery:
    def test_sgd_inversion_recovers_exact_gradients(self):
        before = {"w": np.array([1.0, 2.0])}
        after = {"w": np.array([0.9, 2.2])}
        gradients = gradients_from_sgd_update(before, after, learning_rate=0.1)
        np.testing.assert_allclose(gradients["w"], [1.0, -2.0])

    def test_validation(self):
        with pytest.raises(ValueError):
            gradients_from_sgd_update({}, {}, learning_rate=0.0)
        with pytest.raises(KeyError):
            gradients_from_sgd_update(
                {"a": np.zeros(1)}, {"b": np.zeros(1)}, 0.1
            )


class TestAnalyticLeak:
    def test_factored_gradient_reconstructs_input(self, rng):
        x = rng.normal(size=10)
        delta = rng.normal(size=5)
        grad_weight = np.outer(delta, x)
        reconstructed = leak_input_from_linear_gradients(grad_weight, delta)
        assert reconstruction_similarity(x, reconstructed) > 0.999999

    def test_zero_bias_gradient_returns_none(self):
        assert leak_input_from_linear_gradients(
            np.zeros((3, 4)), np.zeros(3)
        ) is None

    def test_validation(self):
        with pytest.raises(ValueError, match="2-D"):
            leak_input_from_linear_gradients(np.zeros(3), np.zeros(3))
        with pytest.raises(ValueError, match="does not match"):
            leak_input_from_linear_gradients(np.zeros((3, 4)), np.zeros(2))
        with pytest.raises(ValueError, match="shape mismatch"):
            reconstruction_similarity(np.zeros(3), np.zeros(4))

    def test_similarity_bounds(self, rng):
        a = rng.normal(size=8)
        assert reconstruction_similarity(a, a) == pytest.approx(1.0)
        assert reconstruction_similarity(a, -2.0 * a) == pytest.approx(1.0)
        assert reconstruction_similarity(a, np.zeros(8)) == 0.0


class TestEndToEndAttack:
    def test_single_sample_update_leaks_the_image_exactly(self):
        dataset, model = one_sample_victim()
        before, after = single_step(model, dataset)
        report = run_leakage_attack(
            before, after, learning_rate=0.05,
            true_input=dataset.images[0],
        )
        assert report.leaked
        assert report.similarity > 0.999
        assert report.weight_key == "net.layer0.weight"

    def test_batched_update_degrades_the_leak(self):
        dataset, model = one_sample_victim(seed=3, num_samples=16)
        before, after = single_step(model, dataset)
        report = run_leakage_attack(
            before, after, learning_rate=0.05,
            true_input=dataset.images[0],
        )
        # A 16-sample batch mixes the inputs: no longer pixel-exact.
        assert report.similarity < 0.99

    def test_masked_update_defeats_the_attack(self):
        """The defence the paper's threat model calls for: the server only
        sees a pairwise-masked upload, and the reconstruction collapses."""
        dataset, model = one_sample_victim()
        before, after = single_step(model, dataset)

        secure_round = SecureAggregationRound([0, 1], round_index=0,
                                              mask_scale=10.0)
        masked = secure_round.masked_update(0, after, num_samples=1).masked_state
        report = run_leakage_attack(
            before, masked, learning_rate=0.05,
            true_input=dataset.images[0],
        )
        assert not report.leaked
        assert report.similarity < 0.5

    def test_no_linear_layer_rejected(self):
        with pytest.raises(KeyError, match="no linear"):
            run_leakage_attack(
                {"conv.weight": np.zeros((2, 1, 3, 3))},
                {"conv.weight": np.zeros((2, 1, 3, 3))},
                0.1, np.zeros(4),
            )

"""Data augmentation transforms and pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    AugmentationPipeline,
    DataLoader,
    gaussian_noise,
    random_crop,
    random_horizontal_flip,
)

from ..conftest import make_blobs


def images(seed=0, n=6, shape=(3, 8, 8)):
    return np.random.default_rng(seed).normal(size=(n,) + shape)


class TestHorizontalFlip:
    def test_probability_one_flips_everything(self, rng):
        x = images()
        flipped = random_horizontal_flip(x, rng, probability=1.0)
        np.testing.assert_array_equal(flipped, x[:, :, :, ::-1])

    def test_probability_zero_is_identity_copy(self, rng):
        x = images()
        out = random_horizontal_flip(x, rng, probability=0.0)
        np.testing.assert_array_equal(out, x)
        out[0, 0, 0, 0] = 99.0
        assert x[0, 0, 0, 0] != 99.0

    def test_flip_is_involution(self):
        x = images()
        rng = np.random.default_rng(0)
        double = random_horizontal_flip(
            random_horizontal_flip(x, rng, 1.0), rng, 1.0
        )
        np.testing.assert_array_equal(double, x)

    def test_validation(self, rng):
        with pytest.raises(ValueError, match="probability"):
            random_horizontal_flip(images(), rng, probability=1.5)
        with pytest.raises(ValueError, match="N, C, H, W"):
            random_horizontal_flip(np.zeros((3, 8, 8)), rng)


class TestRandomCrop:
    def test_shape_preserved(self, rng):
        x = images()
        out = random_crop(x, rng, padding=2)
        assert out.shape == x.shape

    def test_pixel_values_come_from_source(self, rng):
        """Reflect padding introduces no new values — every output pixel
        exists somewhere in the input image."""
        x = images(n=3)
        out = random_crop(x, rng, padding=3)
        for i in range(len(x)):
            assert np.isin(out[i].ravel(), x[i].ravel()).all()

    def test_offsets_vary_between_images(self):
        # With 9 possible offsets and 40 images, at least two distinct
        # crops must occur (probability of all-equal is (1/81)^39).
        x = np.tile(np.arange(64, dtype=np.float64).reshape(1, 1, 8, 8), (40, 1, 1, 1))
        out = random_crop(x, np.random.default_rng(5), padding=4)
        assert len({out[i].tobytes() for i in range(len(out))}) > 1

    def test_validation(self, rng):
        with pytest.raises(ValueError, match="padding"):
            random_crop(images(), rng, padding=0)


class TestGaussianNoise:
    def test_zero_sigma_identity(self, rng):
        x = images()
        np.testing.assert_array_equal(gaussian_noise(x, rng, sigma=0.0), x)

    def test_noise_magnitude(self):
        x = np.zeros((4, 1, 32, 32))
        noisy = gaussian_noise(x, np.random.default_rng(0), sigma=0.5)
        assert noisy.std() == pytest.approx(0.5, rel=0.1)

    def test_validation(self, rng):
        with pytest.raises(ValueError, match="sigma"):
            gaussian_noise(images(), rng, sigma=-0.1)


class TestPipeline:
    def test_cifar_recipe_composes(self, rng):
        pipeline = AugmentationPipeline.cifar()
        assert len(pipeline) == 2
        x = images()
        out = pipeline(x, rng)
        assert out.shape == x.shape
        assert not np.array_equal(out, x)

    def test_noisy_recipe(self, rng):
        pipeline = AugmentationPipeline.noisy(sigma=0.1)
        x = images()
        out = pipeline(x, rng)
        assert np.abs(out - x).mean() > 0.01

    def test_empty_pipeline_is_identity(self, rng):
        x = images()
        np.testing.assert_array_equal(AugmentationPipeline()(x, rng), x)

    @given(seed=st.integers(0, 50))
    @settings(max_examples=15, deadline=None)
    def test_property_deterministic_given_generator_state(self, seed):
        x = images(seed)
        pipeline = AugmentationPipeline.cifar()
        a = pipeline(x, np.random.default_rng(seed))
        b = pipeline(x, np.random.default_rng(seed))
        np.testing.assert_array_equal(a, b)


class TestLoaderIntegration:
    def test_loader_applies_augmentation(self):
        dataset = make_blobs(num_samples=20, shape=(1, 8, 8))
        pipeline = AugmentationPipeline.noisy(sigma=0.2)
        loader = DataLoader(dataset, batch_size=10,
                            rng=np.random.default_rng(0), augment=pipeline)
        for batch_images, batch_labels in loader:
            source = dataset.images[: len(batch_images)]
            assert batch_images.shape[0] == batch_labels.shape[0]
            assert not np.array_equal(batch_images, source)
            break

    def test_augment_without_rng_rejected(self):
        dataset = make_blobs(num_samples=10)
        with pytest.raises(ValueError, match="augment requires"):
            DataLoader(dataset, batch_size=5,
                       augment=AugmentationPipeline.noisy())

    def test_augmentation_does_not_mutate_dataset(self):
        dataset = make_blobs(num_samples=10, shape=(1, 8, 8))
        original = dataset.images.copy()
        loader = DataLoader(dataset, batch_size=5,
                            rng=np.random.default_rng(0),
                            augment=AugmentationPipeline.cifar(padding=2))
        list(loader)
        np.testing.assert_array_equal(dataset.images, original)

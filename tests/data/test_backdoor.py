"""Backdoor trigger, poisoning and success-rate measurement."""

import numpy as np
import pytest

from repro.data import (
    BackdoorAttack,
    TriggerPattern,
    select_attack_target,
    select_poison_indices,
)
from repro.data.dataset import ArrayDataset as _ArrayDataset
from repro.nn import Tensor
from repro.nn.module import Module

from ..conftest import make_blobs


class ConstantModel(Module):
    """Always predicts a fixed class — for deterministic ASR checks."""

    def __init__(self, num_classes, winner):
        super().__init__()
        self.num_classes = num_classes
        self.winner = winner

    def forward(self, x):
        logits = np.zeros((len(x), self.num_classes))
        logits[:, self.winner] = 10.0
        return Tensor(logits)


class TestTriggerPattern:
    def test_stamps_bottom_right_by_default(self):
        trigger = TriggerPattern(size=2, value=9.0)
        images = np.zeros((1, 1, 6, 6))
        out = trigger.stamp(images)
        assert (out[0, 0, 4:, 4:] == 9.0).all()
        assert out[0, 0, :4, :].sum() == 0

    @pytest.mark.parametrize("corner,rows,cols", [
        ("tl", slice(0, 2), slice(0, 2)),
        ("tr", slice(0, 2), slice(4, 6)),
        ("bl", slice(4, 6), slice(0, 2)),
        ("br", slice(4, 6), slice(4, 6)),
    ])
    def test_all_corners(self, corner, rows, cols):
        trigger = TriggerPattern(size=2, value=1.0, corner=corner)
        out = trigger.stamp(np.zeros((1, 1, 6, 6)))
        assert (out[0, 0, rows, cols] == 1.0).all()
        assert out.sum() == 4.0

    def test_does_not_mutate_input(self):
        trigger = TriggerPattern(size=2)
        images = np.zeros((1, 1, 8, 8))
        trigger.stamp(images)
        assert images.sum() == 0

    def test_all_channels_stamped(self):
        trigger = TriggerPattern(size=2, value=5.0)
        out = trigger.stamp(np.zeros((1, 3, 8, 8)))
        assert (out[0, :, 6:, 6:] == 5.0).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            TriggerPattern(size=0)
        with pytest.raises(ValueError):
            TriggerPattern(corner="xx")
        with pytest.raises(ValueError):
            TriggerPattern(size=10).stamp(np.zeros((1, 1, 8, 8)))


class TestPoisoning:
    def test_poison_flips_labels_and_stamps(self):
        ds = make_blobs(num_samples=20, num_classes=4)
        attack = BackdoorAttack(TriggerPattern(size=2, value=7.0), target_label=0)
        poisoned = attack.poison(ds, np.array([3, 5]))
        assert poisoned.labels[3] == 0 and poisoned.labels[5] == 0
        assert (poisoned.images[3, :, -2:, -2:] == 7.0).all()
        # untouched samples unchanged
        np.testing.assert_allclose(poisoned.images[0], ds.images[0])
        assert poisoned.labels[0] == ds.labels[0]

    def test_original_dataset_untouched(self):
        ds = make_blobs(num_samples=10, num_classes=3)
        original = ds.images.copy()
        BackdoorAttack(TriggerPattern(), target_label=1).poison(ds, np.array([0]))
        np.testing.assert_allclose(ds.images, original)

    def test_target_out_of_range(self):
        ds = make_blobs(num_samples=10, num_classes=3)
        with pytest.raises(ValueError):
            BackdoorAttack(TriggerPattern(), target_label=5).poison(ds, np.array([0]))


class TestTriggeredTestSet:
    def test_excludes_target_class(self):
        ds = make_blobs(num_samples=30, num_classes=3)
        attack = BackdoorAttack(TriggerPattern(size=2), target_label=1)
        triggered = attack.triggered_test_set(ds)
        assert (triggered.labels != 1).all()
        assert len(triggered) == (ds.labels != 1).sum()

    def test_only_target_class_raises(self):
        images = np.zeros((5, 1, 8, 8))
        labels = np.ones(5, dtype=int)
        from repro.data import ArrayDataset
        ds = ArrayDataset(images, labels, 2)
        with pytest.raises(ValueError):
            BackdoorAttack(TriggerPattern(size=2), target_label=1).triggered_test_set(ds)


class TestSuccessRate:
    def test_always_target_model_scores_one(self):
        ds = make_blobs(num_samples=30, num_classes=3)
        attack = BackdoorAttack(TriggerPattern(size=2), target_label=2)
        model = ConstantModel(3, winner=2)
        assert attack.success_rate(model, ds) == 1.0

    def test_never_target_model_scores_zero(self):
        ds = make_blobs(num_samples=30, num_classes=3)
        attack = BackdoorAttack(TriggerPattern(size=2), target_label=2)
        model = ConstantModel(3, winner=0)
        assert attack.success_rate(model, ds) == 0.0


class TestSelectAttackTarget:
    def test_picks_darkest_corner_class(self):
        images = np.zeros((30, 1, 8, 8))
        labels = np.arange(30) % 3
        images[labels == 0, :, -3:, -3:] = 5.0   # bright corner
        images[labels == 1, :, -3:, -3:] = 1.0
        images[labels == 2, :, -3:, -3:] = -4.0  # darkest corner
        ds = _ArrayDataset(images, labels, 3)
        assert select_attack_target(ds, TriggerPattern(size=3)) == 2

    def test_respects_trigger_corner(self):
        images = np.zeros((20, 1, 8, 8))
        labels = np.arange(20) % 2
        images[labels == 0, :, :3, :3] = 9.0  # class 0 bright top-left
        ds = _ArrayDataset(images, labels, 2)
        assert select_attack_target(ds, TriggerPattern(size=3, corner="tl")) == 1

    def test_ignores_absent_classes(self):
        images = np.zeros((10, 1, 8, 8))
        labels = np.zeros(10, dtype=int)  # only class 0 present of 3
        ds = _ArrayDataset(images, labels, 3)
        assert select_attack_target(ds, TriggerPattern(size=2)) == 0


class TestSelectPoisonIndices:
    def test_count_matches_rate(self, rng):
        ds = make_blobs(num_samples=100)
        idx = select_poison_indices(ds, 0.1, rng)
        assert len(idx) == 10
        assert len(np.unique(idx)) == 10

    def test_at_least_one(self, rng):
        ds = make_blobs(num_samples=20)
        assert len(select_poison_indices(ds, 0.001, rng)) == 1

    def test_invalid_rate(self, rng):
        with pytest.raises(ValueError):
            select_poison_indices(make_blobs(), 0.0, rng)
        with pytest.raises(ValueError):
            select_poison_indices(make_blobs(), 1.0, rng)

"""Synthetic dataset generators: shapes, determinism, learnability hooks."""

import numpy as np
import pytest

from repro.data import PAPER_SPLITS, SPECS, make_dataset
from repro.data.synthetic import SyntheticSpec, _make_prototypes, generate


class TestSpecs:
    def test_paper_dimensions(self):
        # Table II of the paper.
        assert SPECS["mnist"].in_channels * SPECS["mnist"].image_size ** 2 == 784
        assert SPECS["cifar10"].in_channels * SPECS["cifar10"].image_size ** 2 == 3072
        assert SPECS["mnist"].num_classes == 10
        assert SPECS["cifar100"].num_classes == 100

    def test_paper_split_sizes(self):
        assert PAPER_SPLITS["mnist"] == (60_000, 10_000)
        assert PAPER_SPLITS["cifar10"] == (50_000, 10_000)

    def test_grid_factor_validation(self):
        bad = SyntheticSpec("x", 1, 28, 10, 0.5, 2, 2, coarse_cells=5)
        with pytest.raises(ValueError):
            bad.grid_factor()

    def test_effective_test_noise_defaults_to_train(self):
        spec = SyntheticSpec("x", 1, 28, 10, 0.5, 2, 2, 7)
        assert spec.effective_test_noise() == 0.5

    def test_effective_test_noise_override(self):
        spec = SyntheticSpec("x", 1, 28, 10, 0.5, 2, 2, 7, test_noise_std=1.5)
        assert spec.effective_test_noise() == 1.5


class TestMakeDataset:
    @pytest.mark.parametrize("name", ["mnist", "fmnist", "cifar10", "cifar100"])
    def test_shapes(self, name):
        train, test = make_dataset(name, train_size=50, test_size=20, seed=0)
        spec = SPECS[name]
        assert train.images.shape == (50, spec.in_channels, spec.image_size, spec.image_size)
        assert test.images.shape == (20, spec.in_channels, spec.image_size, spec.image_size)
        assert train.num_classes == spec.num_classes

    def test_deterministic_given_seed(self):
        a_train, a_test = make_dataset("mnist", 30, 10, seed=7)
        b_train, b_test = make_dataset("mnist", 30, 10, seed=7)
        np.testing.assert_allclose(a_train.images, b_train.images)
        np.testing.assert_array_equal(a_train.labels, b_train.labels)
        np.testing.assert_allclose(a_test.images, b_test.images)

    def test_different_seeds_differ(self):
        a, _ = make_dataset("mnist", 30, 10, seed=1)
        b, _ = make_dataset("mnist", 30, 10, seed=2)
        assert not np.allclose(a.images, b.images)

    def test_different_datasets_differ(self):
        a, _ = make_dataset("mnist", 30, 10, seed=0)
        b, _ = make_dataset("fmnist", 30, 10, seed=0)
        assert not np.allclose(a.images, b.images)

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            make_dataset("imagenet", 10, 10)

    def test_default_sizes_match_paper(self):
        # Don't actually build 60k samples; just verify the lookup is wired.
        assert PAPER_SPLITS["fmnist"] == (60_000, 10_000)

    def test_labels_cover_multiple_classes(self):
        train, _ = make_dataset("mnist", 200, 10, seed=0)
        assert len(np.unique(train.labels)) >= 8


class TestGenerate:
    def test_zero_samples_rejected(self, rng):
        with pytest.raises(ValueError):
            generate(SPECS["mnist"], 0, rng)

    def test_noise_override_changes_images(self, rng):
        spec = SPECS["mnist"]
        protos = _make_prototypes(spec, np.random.default_rng(0))
        clean = generate(spec, 20, np.random.default_rng(1), protos, noise_std=1e-9)
        noisy = generate(spec, 20, np.random.default_rng(1), protos, noise_std=2.0)
        assert noisy.images.std() > clean.images.std()

    def test_same_class_samples_correlate(self):
        """Samples of one class should be closer to each other than across
        classes (the signal the classifier learns)."""
        spec = SPECS["mnist"]
        protos = _make_prototypes(spec, np.random.default_rng(3))
        ds = generate(spec, 400, np.random.default_rng(4), protos, noise_std=0.2)
        per_class_mean = np.stack([
            ds.images[ds.labels == c].mean(axis=0) for c in range(10)
            if (ds.labels == c).any()
        ])
        flat = per_class_mean.reshape(len(per_class_mean), -1)
        # Class means should be mutually distant relative to their norms.
        dists = np.linalg.norm(flat[:, None] - flat[None, :], axis=-1)
        off_diag = dists[~np.eye(len(flat), dtype=bool)]
        assert off_diag.min() > 1.0


class TestLearnability:
    def test_linear_probe_beats_chance(self):
        """A ridge-regression probe should already separate the classes —
        the datasets must be learnable for every experiment to work."""
        train, test = make_dataset("mnist", 400, 200, seed=0)
        x = train.images.reshape(len(train), -1)
        y = np.eye(10)[train.labels]
        w = np.linalg.solve(x.T @ x + 10.0 * np.eye(x.shape[1]), x.T @ y)
        preds = (test.images.reshape(len(test), -1) @ w).argmax(axis=1)
        accuracy = (preds == test.labels).mean()
        assert accuracy > 0.5  # chance is 0.1

"""ArrayDataset / FederatedDataset container semantics."""

import numpy as np
import pytest

from repro.data import ArrayDataset, FederatedDataset

from ..conftest import make_blobs


class TestValidation:
    def test_rejects_3d_images(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((4, 8, 8)), np.zeros(4, dtype=int), 2)

    def test_rejects_count_mismatch(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((4, 1, 8, 8)), np.zeros(3, dtype=int), 2)

    def test_rejects_out_of_range_labels(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((2, 1, 4, 4)), np.array([0, 5]), 2)

    def test_rejects_negative_labels(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((2, 1, 4, 4)), np.array([0, -1]), 2)

    def test_rejects_2d_labels(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((2, 1, 4, 4)), np.zeros((2, 1), dtype=int), 2)

    def test_rejects_nonpositive_classes(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((2, 1, 4, 4)), np.zeros(2, dtype=int), 0)


class TestProperties:
    def test_basic_properties(self):
        ds = make_blobs(num_samples=30, num_classes=3, shape=(1, 8, 8))
        assert len(ds) == 30
        assert ds.in_channels == 1
        assert ds.image_size == 8
        assert ds.input_dim == 64

    def test_class_counts(self):
        ds = make_blobs(num_samples=30, num_classes=3)
        np.testing.assert_array_equal(ds.class_counts(), [10, 10, 10])


class TestSubsetRemoveSplit:
    def test_subset_selects(self):
        ds = make_blobs(num_samples=10)
        sub = ds.subset([0, 5, 9])
        assert len(sub) == 3
        np.testing.assert_allclose(sub.images[1], ds.images[5])

    def test_subset_is_a_copy(self):
        ds = make_blobs(num_samples=10)
        sub = ds.subset([0])
        sub.images[0] = 0.0
        assert not np.allclose(ds.images[0], 0.0)

    def test_remove_drops(self):
        ds = make_blobs(num_samples=10)
        rest = ds.remove([0, 1, 2])
        assert len(rest) == 7
        np.testing.assert_allclose(rest.images[0], ds.images[3])

    def test_split_partitions_exactly(self):
        ds = make_blobs(num_samples=12)
        forget, retain = ds.split([1, 4, 7])
        assert len(forget) == 3
        assert len(retain) == 9
        total = np.concatenate([forget.labels, retain.labels])
        assert sorted(total.tolist()) == sorted(ds.labels.tolist())

    def test_concat_roundtrip_count(self):
        ds = make_blobs(num_samples=10)
        forget, retain = ds.split([0, 1])
        merged = forget.concat(retain)
        assert len(merged) == len(ds)

    def test_concat_class_mismatch_raises(self):
        a = make_blobs(num_samples=6, num_classes=2)
        b = make_blobs(num_samples=6, num_classes=3)
        with pytest.raises(ValueError):
            a.concat(b)

    def test_shuffled_preserves_pairs(self, rng):
        ds = make_blobs(num_samples=20, num_classes=4)
        shuffled = ds.shuffled(rng)
        # every (image, label) pair must still exist
        for i in range(len(shuffled)):
            matches = np.where(
                np.isclose(ds.images, shuffled.images[i]).all(axis=(1, 2, 3))
            )[0]
            assert any(ds.labels[m] == shuffled.labels[i] for m in matches)


class TestFederatedDataset:
    def test_sizes_and_variance(self):
        clients = [make_blobs(num_samples=n) for n in (10, 20, 30)]
        fed = FederatedDataset(client_datasets=clients, test_set=make_blobs())
        np.testing.assert_array_equal(fed.sizes(), [10, 20, 30])
        np.testing.assert_allclose(fed.size_variance(), np.var([10, 20, 30]))

    def test_iteration_and_access(self):
        clients = [make_blobs(num_samples=6), make_blobs(num_samples=9)]
        fed = FederatedDataset(client_datasets=clients, test_set=make_blobs())
        assert fed.num_clients == 2
        assert len(fed.client(1)) == 9
        assert [len(c) for c in fed] == [6, 9]

"""DataLoader batching semantics."""

import numpy as np
import pytest

from repro.data import DataLoader

from ..conftest import make_blobs


class TestBatching:
    def test_batch_count(self):
        ds = make_blobs(num_samples=25)
        loader = DataLoader(ds, batch_size=10)
        assert len(loader) == 3
        sizes = [len(y) for _, y in loader]
        assert sizes == [10, 10, 5]

    def test_drop_last(self):
        ds = make_blobs(num_samples=25)
        loader = DataLoader(ds, batch_size=10, drop_last=True)
        assert len(loader) == 2
        assert [len(y) for _, y in loader] == [10, 10]

    def test_covers_all_samples_in_order(self):
        ds = make_blobs(num_samples=12)
        loader = DataLoader(ds, batch_size=5)
        labels = np.concatenate([y for _, y in loader])
        np.testing.assert_array_equal(labels, ds.labels)

    def test_images_align_with_labels(self):
        ds = make_blobs(num_samples=9)
        loader = DataLoader(ds, batch_size=4)
        for images, labels in loader:
            for img, lbl in zip(images, labels):
                idx = np.where(np.isclose(ds.images, img).all(axis=(1, 2, 3)))[0]
                assert any(ds.labels[i] == lbl for i in idx)


class TestShuffling:
    def test_shuffle_requires_rng(self):
        with pytest.raises(ValueError):
            DataLoader(make_blobs(), batch_size=4, shuffle=True)

    def test_shuffle_changes_order(self):
        ds = make_blobs(num_samples=50, num_classes=5)
        loader = DataLoader(ds, batch_size=50, shuffle=True,
                            rng=np.random.default_rng(0))
        (_, labels), = list(loader)
        assert not np.array_equal(labels, ds.labels)
        assert sorted(labels.tolist()) == sorted(ds.labels.tolist())

    def test_epochs_reshuffle(self):
        ds = make_blobs(num_samples=40, num_classes=4)
        loader = DataLoader(ds, batch_size=40, shuffle=True,
                            rng=np.random.default_rng(1))
        (_, first), = list(loader)
        (_, second), = list(loader)
        assert not np.array_equal(first, second)

    def test_deterministic_given_seed(self):
        ds = make_blobs(num_samples=30)
        orders = []
        for _ in range(2):
            loader = DataLoader(ds, batch_size=30, shuffle=True,
                                rng=np.random.default_rng(9))
            (_, labels), = list(loader)
            orders.append(labels)
        np.testing.assert_array_equal(orders[0], orders[1])


class TestValidation:
    def test_rejects_zero_batch(self):
        with pytest.raises(ValueError):
            DataLoader(make_blobs(), batch_size=0)

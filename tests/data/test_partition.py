"""Partitioning invariants: coverage, disjointness, skew properties."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data import (
    make_federated,
    partition_heterogeneous,
    partition_iid,
    partition_label_skewed,
    partition_shards,
    partition_size_skewed,
)

from ..conftest import make_blobs


def assert_exact_partition(parts, total):
    """Parts must be disjoint and jointly cover range(total)."""
    merged = np.concatenate(parts)
    assert len(merged) == total
    assert len(np.unique(merged)) == total
    assert merged.min() == 0 and merged.max() == total - 1


PARTITIONERS = [
    partition_iid,
    partition_size_skewed,
    partition_label_skewed,
    partition_heterogeneous,
]


class TestPartitionInvariants:
    @pytest.mark.parametrize("partitioner", PARTITIONERS)
    @pytest.mark.parametrize("num_clients", [2, 5, 7])
    def test_exact_partition(self, rng, partitioner, num_clients):
        ds = make_blobs(num_samples=101, num_classes=5)
        parts = partitioner(ds, num_clients, rng)
        assert len(parts) == num_clients
        assert_exact_partition(parts, len(ds))

    @pytest.mark.parametrize("partitioner", PARTITIONERS)
    def test_no_empty_clients(self, rng, partitioner):
        ds = make_blobs(num_samples=60, num_classes=3)
        parts = partitioner(ds, 6, rng)
        assert all(len(p) > 0 for p in parts)

    @pytest.mark.parametrize("partitioner", PARTITIONERS)
    def test_too_many_clients_raises(self, rng, partitioner):
        ds = make_blobs(num_samples=4)
        with pytest.raises(ValueError):
            partitioner(ds, 10, rng)


class TestIID:
    def test_near_equal_sizes(self, rng):
        ds = make_blobs(num_samples=100)
        parts = partition_iid(ds, 3, rng)
        sizes = [len(p) for p in parts]
        assert max(sizes) - min(sizes) <= 1


class TestSizeSkew:
    def test_sizes_vary_more_than_iid(self, rng):
        ds = make_blobs(num_samples=300, num_classes=3)
        skew = partition_size_skewed(ds, 5, rng)
        sizes = np.array([len(p) for p in skew])
        assert sizes.std() > 5  # IID would be ~0

    def test_min_per_client_respected(self, rng):
        ds = make_blobs(num_samples=100)
        parts = partition_size_skewed(ds, 5, rng, min_per_client=3)
        assert all(len(p) >= 3 for p in parts)

    def test_min_per_client_too_large(self, rng):
        ds = make_blobs(num_samples=10)
        with pytest.raises(ValueError):
            partition_size_skewed(ds, 5, rng, min_per_client=100)


class TestLabelSkew:
    def test_alpha_controls_concentration(self):
        ds = make_blobs(num_samples=500, num_classes=5)

        def concentration(alpha, seed):
            rng = np.random.default_rng(seed)
            parts = partition_label_skewed(ds, 5, rng, alpha=alpha)
            # Mean per-client entropy of label distribution (low = skewed)
            entropies = []
            for p in parts:
                counts = np.bincount(ds.labels[p], minlength=5) + 1e-12
                probs = counts / counts.sum()
                entropies.append(-(probs * np.log(probs)).sum())
            return np.mean(entropies)

        skewed = np.mean([concentration(0.1, s) for s in range(3)])
        uniform = np.mean([concentration(100.0, s) for s in range(3)])
        assert skewed < uniform

    def test_invalid_alpha(self, rng):
        with pytest.raises(ValueError):
            partition_label_skewed(make_blobs(), 2, rng, alpha=0.0)


class TestHeterogeneous:
    def test_produces_size_variance(self):
        ds = make_blobs(num_samples=400, num_classes=4)
        variances = []
        for seed in range(5):
            parts = partition_heterogeneous(ds, 5, np.random.default_rng(seed))
            variances.append(np.var([len(p) for p in parts]))
        assert np.mean(variances) > 100

    def test_invalid_params(self, rng):
        with pytest.raises(ValueError):
            partition_heterogeneous(make_blobs(), 2, rng, label_alpha=0)


class TestShards:
    @pytest.mark.parametrize("tau", [1, 3, 6])
    def test_exact_partition(self, rng, tau):
        parts = partition_shards(60, tau, rng)
        assert_exact_partition(parts, 60)
        assert len(parts) == tau

    def test_more_shards_than_samples_raises(self, rng):
        with pytest.raises(ValueError):
            partition_shards(3, 10, rng)


class TestMakeFederated:
    def test_builds_clients(self, rng):
        train = make_blobs(num_samples=60)
        test = make_blobs(num_samples=20, seed=1)
        fed = make_federated(train, test, 4, rng)
        assert fed.num_clients == 4
        assert sum(fed.sizes()) == 60
        assert fed.test_set is test

    def test_unknown_strategy(self, rng):
        with pytest.raises(ValueError):
            make_federated(make_blobs(), make_blobs(), 2, rng, strategy="magic")

    def test_strategy_kwargs_forwarded(self, rng):
        train = make_blobs(num_samples=100)
        fed = make_federated(train, make_blobs(), 4, rng,
                             strategy="label_skewed", alpha=0.2)
        assert fed.num_clients == 4


@settings(max_examples=30, deadline=None)
@given(
    num_samples=st.integers(10, 200),
    num_clients=st.integers(1, 8),
    seed=st.integers(0, 1000),
)
def test_property_iid_partition_is_exact(num_samples, num_clients, seed):
    if num_samples < num_clients:
        return
    ds = make_blobs(num_samples=num_samples, num_classes=2, seed=seed)
    parts = partition_iid(ds, num_clients, np.random.default_rng(seed))
    assert_exact_partition(parts, num_samples)


@settings(max_examples=30, deadline=None)
@given(
    num_samples=st.integers(10, 150),
    tau=st.integers(1, 9),
    seed=st.integers(0, 1000),
)
def test_property_shard_partition_is_exact(num_samples, tau, seed):
    if num_samples < tau:
        return
    parts = partition_shards(num_samples, tau, np.random.default_rng(seed))
    assert_exact_partition(parts, num_samples)

"""Shared-memory datasets and the opt-in dtype.

The contract of :meth:`ArrayDataset.share`: in-process behaviour is
indistinguishable from the plain dataset (training is bit-identical),
but pickling transports a by-reference handle whose size is independent
of the data — the property the pooling backend's zero-copy fan-out rests
on.  The ``dtype`` option must default to float64 (legacy-exact) and
survive every derivation.
"""

import pickle

import numpy as np
import pytest

from repro.data.dataset import ArrayDataset, FederatedDataset, SharedArrayDataset
from repro.nn.models import RegistryModelFactory
from repro.runtime import SerialBackend, TrainTask, capture_rng
from repro.training import TrainConfig
from repro.training.trainer import train

from ..conftest import make_blobs

FACTORY = RegistryModelFactory(name="mlp", num_classes=3, in_channels=1, image_size=4)
CONFIG = TrainConfig(epochs=2, batch_size=8, learning_rate=0.05)


class TestDtypeOption:
    def test_default_stays_float64(self):
        dataset = make_blobs(num_samples=12, shape=(1, 4, 4))
        assert dataset.images.dtype == np.float64

    def test_float32_opt_in(self):
        rng = np.random.default_rng(0)
        dataset = ArrayDataset(
            images=rng.normal(size=(12, 1, 4, 4)),
            labels=np.arange(12) % 3,
            num_classes=3,
            dtype=np.float32,
        )
        assert dataset.images.dtype == np.float32

    def test_dtype_survives_derivations(self):
        rng = np.random.default_rng(0)
        dataset = ArrayDataset(
            images=rng.normal(size=(12, 1, 4, 4)),
            labels=np.arange(12) % 3,
            num_classes=3,
            dtype=np.float32,
        )
        assert dataset.subset(range(6)).images.dtype == np.float32
        assert dataset.remove(range(6)).images.dtype == np.float32
        assert dataset.concat(dataset).images.dtype == np.float32
        assert dataset.shuffled(rng).images.dtype == np.float32
        selected, remainder = dataset.split(range(3))
        assert selected.images.dtype == np.float32
        assert remainder.images.dtype == np.float32

    def test_non_float_dtype_rejected(self):
        with pytest.raises(ValueError, match="floating"):
            ArrayDataset(
                images=np.zeros((3, 1, 2, 2)),
                labels=np.zeros(3, dtype=np.int64),
                num_classes=1,
                dtype=np.int32,
            )

    def test_float32_trains(self):
        dataset = ArrayDataset(
            images=make_blobs(num_samples=24, shape=(1, 4, 4)).images,
            labels=np.arange(24) % 3,
            num_classes=3,
            dtype=np.float32,
        )
        model = FACTORY()
        history = train(model, dataset, CONFIG, np.random.default_rng(0))
        assert len(history) == CONFIG.epochs


class TestKeepIndices:
    def test_subset_of_keep_indices_equals_remove(self):
        dataset = make_blobs(num_samples=20, shape=(1, 4, 4))
        removed = [0, 3, 7, 19]
        via_indices = dataset.subset(dataset.keep_indices(removed))
        via_remove = dataset.remove(removed)
        np.testing.assert_array_equal(via_indices.images, via_remove.images)
        np.testing.assert_array_equal(via_indices.labels, via_remove.labels)


class TestSharedArrayDataset:
    def test_share_preserves_values_and_behaviour(self):
        dataset = make_blobs(num_samples=30, shape=(1, 4, 4))
        shared = dataset.share()
        try:
            assert isinstance(shared, SharedArrayDataset)
            assert shared.is_owner
            np.testing.assert_array_equal(shared.images, dataset.images)
            np.testing.assert_array_equal(shared.labels, dataset.labels)
            assert len(shared) == len(dataset)
            np.testing.assert_array_equal(
                shared.class_counts(), dataset.class_counts()
            )
        finally:
            shared.close()

    def test_pickle_is_by_reference(self):
        dataset = make_blobs(num_samples=200, shape=(1, 8, 8))
        shared = dataset.share()
        try:
            payload = pickle.dumps(shared)
            # The whole point: a handle, not the (N*C*H*W)*8-byte array.
            assert len(payload) < 1024 < dataset.images.nbytes
            restored = pickle.loads(payload)
            try:
                assert isinstance(restored, SharedArrayDataset)
                assert not restored.is_owner
                np.testing.assert_array_equal(restored.images, dataset.images)
                np.testing.assert_array_equal(restored.labels, dataset.labels)
            finally:
                restored.close()
        finally:
            shared.close()

    def test_deepcopy_is_independent(self):
        import copy

        shared = make_blobs(num_samples=12, shape=(1, 4, 4)).share()
        clone = copy.deepcopy(shared)
        try:
            assert clone.is_owner  # its own block, not an attachment
            clone.images[...] = 123.0
            assert not (shared.images == 123.0).any()
        finally:
            clone.close()
            shared.close()

    def test_share_of_shared_is_identity(self):
        shared = make_blobs(num_samples=12, shape=(1, 4, 4)).share()
        try:
            assert shared.share() is shared
        finally:
            shared.close()

    def test_subset_returns_private_copy(self):
        shared = make_blobs(num_samples=12, shape=(1, 4, 4)).share()
        try:
            subset = shared.subset(range(6))
            assert type(subset) is ArrayDataset
            # A private copy: mutating it leaves the shared block alone.
            subset.images[...] = 0.0
            assert shared.images.any()
        finally:
            shared.close()

    def test_dtype_preserved_through_share(self):
        rng = np.random.default_rng(0)
        dataset = ArrayDataset(
            images=rng.normal(size=(12, 1, 4, 4)),
            labels=np.arange(12) % 3,
            num_classes=3,
            dtype=np.float32,
        )
        shared = dataset.share()
        try:
            assert shared.images.dtype == np.float32
            restored = pickle.loads(pickle.dumps(shared))
            try:
                assert restored.images.dtype == np.float32
            finally:
                restored.close()
        finally:
            shared.close()

    def test_training_is_bit_identical_on_shared_data(self):
        dataset = make_blobs(num_samples=24, shape=(1, 4, 4))
        shared = dataset.share()
        try:
            plain_task = TrainTask(
                task_id=0,
                model_factory=FACTORY,
                dataset=dataset,
                config=CONFIG,
                rng_state=capture_rng(np.random.default_rng(5)),
            )
            shared_task = TrainTask(
                task_id=0,
                model_factory=FACTORY,
                dataset=shared,
                config=CONFIG,
                rng_state=capture_rng(np.random.default_rng(5)),
            )
            a, b = SerialBackend().run_tasks([plain_task, shared_task])
            assert a.rng_state == b.rng_state
            for key in a.state:
                np.testing.assert_array_equal(a.state[key], b.state[key])
        finally:
            shared.close()

    def test_task_with_indices_defers_the_subset(self):
        dataset = make_blobs(num_samples=24, shape=(1, 4, 4))
        keep = dataset.keep_indices([0, 1, 2, 3])
        via_indices = TrainTask(
            task_id=0,
            model_factory=FACTORY,
            dataset=dataset,
            config=CONFIG,
            rng_state=capture_rng(np.random.default_rng(5)),
            indices=keep,
        ).run()
        via_subset = TrainTask(
            task_id=0,
            model_factory=FACTORY,
            dataset=dataset.subset(keep),
            config=CONFIG,
            rng_state=capture_rng(np.random.default_rng(5)),
        ).run()
        assert via_indices.rng_state == via_subset.rng_state
        for key in via_indices.state:
            np.testing.assert_array_equal(
                via_indices.state[key], via_subset.state[key]
            )

    def test_federated_share(self):
        clients = [make_blobs(num_samples=12, shape=(1, 4, 4), seed=s) for s in range(3)]
        fed = FederatedDataset(
            client_datasets=clients,
            test_set=make_blobs(num_samples=12, shape=(1, 4, 4), seed=9),
        )
        shared = fed.share()
        try:
            assert shared.num_clients == 3
            for original, copy in zip(fed, shared):
                assert isinstance(copy, SharedArrayDataset)
                np.testing.assert_array_equal(original.images, copy.images)
            # The test set is evaluated parent-side only — it must NOT
            # pay for a shared-memory copy.
            assert type(shared.test_set) is ArrayDataset
        finally:
            for dataset in shared.client_datasets:
                dataset.close()

    def test_close_unlinks_block(self):
        shared = make_blobs(num_samples=12, shape=(1, 4, 4)).share()
        names = [block.name for block in shared._blocks]
        shared.close()
        from multiprocessing import shared_memory

        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)
